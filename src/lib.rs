//! # windowtm — window-based contention managers for transactional memory
//!
//! A complete Rust reproduction of *"On the Performance of Window-Based
//! Contention Managers for Transactional Memory"* (Gokarna Sharma & Costas
//! Busch, IEEE IPDPS Workshops 2011).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`stm`] — the eager object-based STM engine (the DSTM2 substitute),
//! * [`managers`] — classic contention managers (Polka, Greedy, Priority, …),
//! * [`window`] — the paper's window-based contention managers,
//! * [`workloads`] — List, RBTree, SkipList, and Vacation benchmarks,
//! * [`sim`] — the discrete-time scheduling simulator (Offline algorithm,
//!   makespan/theory experiments),
//! * [`harness`] — experiment drivers that regenerate every figure.
//!
//! See the `examples/` directory for runnable entry points and
//! `EXPERIMENTS.md` for paper-vs-measured results.

pub use wtm_harness as harness;
pub use wtm_managers as managers;
pub use wtm_sim as sim;
pub use wtm_stm as stm;
pub use wtm_window as window;
pub use wtm_workloads as workloads;

pub use wtm_stm::{Stm, TVar, TxError, TxResult, Txn};
