//! Quickstart: a shared counter under a window-based contention manager.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Demonstrates the three core pieces: build a contention manager, build
//! an [`Stm`] engine around it, and run transactions from several threads
//! with `ctx.atomic`.

use std::sync::Arc;

use windowtm::stm::{Stm, TVar};
use windowtm::window::{WindowConfig, WindowManager, WindowVariant};

fn main() {
    const THREADS: usize = 4;
    const TXNS_PER_THREAD: usize = 200;

    // The paper's best-performing manager: Online-Dynamic, over an
    // M × N = 4 × 50 execution window.
    let wm = Arc::new(WindowManager::new(
        WindowVariant::OnlineDynamic,
        WindowConfig::new(THREADS, 50),
    ));
    let stm = Stm::new(wm.clone(), THREADS);

    let counter: TVar<u64> = TVar::new(0);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let ctx = stm.thread(t);
            let counter = counter.clone();
            s.spawn(move || {
                for _ in 0..TXNS_PER_THREAD {
                    ctx.atomic(|tx| {
                        let v = *tx.read(&counter)?;
                        tx.write(&counter, v + 1)
                    });
                }
            });
        }
    });
    wm.cancel(); // release window barriers before dropping the engine

    let stats = stm.aggregate();
    println!("final counter     : {}", counter.sample());
    println!("commits           : {}", stats.commits);
    println!("aborts            : {}", stats.aborts);
    println!("aborts per commit : {:.3}", stats.aborts_per_commit());
    println!("wasted work       : {:.1}%", stats.wasted_work() * 100.0);
    assert_eq!(*counter.sample(), (THREADS * TXNS_PER_THREAD) as u64);
    println!("OK: no lost updates under {} threads", THREADS);
}
