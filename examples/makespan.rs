//! Makespan shoot-out in the discrete-time simulator: the paper's window
//! algorithms vs the one-shot decomposition and Greedy, on the conflict
//! regime that motivates the window model (§I-B — dense conflicts inside
//! columns, none across).
//!
//! ```text
//! cargo run --example makespan
//! ```

use windowtm::sim::engine::{simulate, SimConfig};
use windowtm::sim::graph::ConflictGraph;
use windowtm::sim::sched::{
    FreeRandomizedScheduler, GreedyTimestampScheduler, OfflineWindowScheduler, OneShotScheduler,
    OnlineWindowScheduler, SimScheduler, WindowMode,
};

fn main() {
    let (m, n, tau) = (16, 24, 4);
    println!("window: M={m} threads × N={n} txns, τ={tau} steps");
    println!("graph : every column a clique (C = M−1 = {})\n", m - 1);

    let g = ConflictGraph::complete_columns(m, n);
    let cfg = SimConfig::new(m, n, tau);
    let seed = 7;

    let mut scheds: Vec<Box<dyn SimScheduler>> = vec![
        Box::new(OneShotScheduler::new(&cfg, seed)),
        Box::new(FreeRandomizedScheduler::new(&cfg, seed)),
        Box::new(GreedyTimestampScheduler::new(&cfg)),
        Box::new(OfflineWindowScheduler::new(&cfg, &g, seed)),
        Box::new(OnlineWindowScheduler::new(
            &cfg,
            &g,
            WindowMode::Static,
            seed,
        )),
        Box::new(OnlineWindowScheduler::new(
            &cfg,
            &g,
            WindowMode::Dynamic,
            seed,
        )),
        Box::new(OnlineWindowScheduler::adaptive(
            &cfg,
            WindowMode::Dynamic,
            seed,
        )),
    ];

    println!(
        "{:<20} {:>9} {:>9} {:>14}",
        "scheduler", "makespan", "aborts", "avg response"
    );
    let mut oneshot_makespan = None;
    for s in scheds.iter_mut() {
        let name = s.name();
        let out = simulate(&g, &cfg, s.as_mut());
        assert!(out.all_committed, "{name} did not finish");
        if name == "OneShot" {
            oneshot_makespan = Some(out.makespan);
        }
        let rel = oneshot_makespan
            .map(|b| format!("({:.2}× one-shot)", out.makespan as f64 / b as f64))
            .unwrap_or_default();
        println!(
            "{name:<20} {:>9} {:>9} {:>10.1}  {rel}",
            out.makespan,
            out.aborts,
            out.avg_response(),
        );
    }

    println!(
        "\nlower bound N·τ = {} — the window schedulers approach it by\n\
         shifting threads into different columns; the one-shot baseline\n\
         must serialize each {m}-clique behind a barrier.",
        n * tau as usize
    );
}
