//! KMeans under different contention managers — the paper's §IV future
//! work ("we plan to continue our evaluation in other complex benchmarks
//! from the STAMP suite (such as kmeans …)"), implemented as an extension
//! of this reproduction.
//!
//! ```text
//! cargo run --release --example kmeans_demo
//! ```

use std::sync::Arc;
use std::time::Instant;

use windowtm::managers;
use windowtm::stm::Stm;
use windowtm::window::{WindowConfig, WindowManager, WindowVariant};
use windowtm::workloads::KMeans;

const K: usize = 8;
const POINTS: usize = 2_000;
const THREADS: usize = 4;
const ITERS: usize = 4;

fn main() {
    println!("kmeans: {POINTS} points, k={K}, {THREADS} threads, {ITERS} iterations\n");

    for name in ["Polka", "Greedy", "Priority"] {
        let km = KMeans::new(K, POINTS, 99);
        let cm = managers::make_manager(name, THREADS).unwrap();
        let stm = Stm::new(cm, THREADS);
        let t0 = Instant::now();
        let inertia = km.run(&stm, ITERS);
        let stats = stm.aggregate();
        println!(
            "{name:<26} {:>7.1} ms  aborts/commit {:>6.4}  inertia {:>10.1}",
            t0.elapsed().as_secs_f64() * 1e3,
            stats.aborts_per_commit(),
            inertia,
        );
    }

    let km = KMeans::new(K, POINTS, 99);
    let wm = Arc::new(WindowManager::new(
        WindowVariant::AdaptiveImprovedDynamic,
        WindowConfig::new(THREADS, 50),
    ));
    let stm = Stm::new(wm.clone(), THREADS);
    let t0 = Instant::now();
    let inertia = km.run(&stm, ITERS);
    wm.cancel();
    let stats = stm.aggregate();
    println!(
        "{:<26} {:>7.1} ms  aborts/commit {:>6.4}  inertia {:>10.1}",
        "Adaptive-Improved-Dynamic",
        t0.elapsed().as_secs_f64() * 1e3,
        stats.aborts_per_commit(),
        inertia,
    );
    println!("\nall configurations converged ✓");
}
