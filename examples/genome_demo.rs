//! Genome assembly (simplified STAMP `genome`, another §IV future-work
//! benchmark): dedup segments, index prefixes, and verify that walking
//! the successor links reconstructs the original string — under several
//! contention managers.
//!
//! ```text
//! cargo run --release --example genome_demo
//! ```

use std::time::Instant;

use windowtm::managers;
use windowtm::stm::Stm;
use windowtm::workloads::Genome;

const LENGTH: usize = 4_000;
const DUPLICATION: usize = 4;
const THREADS: usize = 4;

fn main() {
    println!(
        "genome: {LENGTH} bases, k = {}, every k-mer duplicated {DUPLICATION}×, {THREADS} threads\n",
        windowtm::workloads::genome::K
    );
    for name in ["Greedy", "Polka", "RandomizedRounds", "ATS"] {
        let g = Genome::new(LENGTH, DUPLICATION, 77);
        let cm = managers::make_manager(name, THREADS).unwrap();
        let stm = Stm::new(cm, THREADS);
        let t0 = Instant::now();
        let uniques = g.run(&stm);
        let elapsed = t0.elapsed();
        g.verify_chain(&stm);
        let stats = stm.aggregate();
        println!(
            "{name:<18} {:>7.1} ms  unique {uniques:>5}  aborts/commit {:>6.4}  (chain verified ✓)",
            elapsed.as_secs_f64() * 1e3,
            stats.aborts_per_commit(),
        );
    }
    println!("\nall managers reconstructed the genome exactly ✓");
}
