//! Dining philosophers as transactions: each philosopher atomically grabs
//! both forks (two `TVar`s) and eats. A perfect livelock trap for naive
//! contention management — and a showcase for why priority-carrying
//! managers (Greedy) and the window managers make progress guarantees.
//!
//! ```text
//! cargo run --example dining
//! ```

use std::sync::Arc;
use std::time::Instant;

use windowtm::managers;
use windowtm::stm::{ContentionManager, Stm, TVar};
use windowtm::window::{WindowConfig, WindowManager, WindowVariant};

const PHILOSOPHERS: usize = 5;
const MEALS_EACH: usize = 200;

/// A fork is free (`None`) or held by philosopher `id` (`Some(id)`).
type Fork = TVar<Option<usize>>;

fn dine(cm: Arc<dyn ContentionManager>, window: Option<Arc<WindowManager>>) {
    let name = cm.name().to_string();
    let stm = Stm::new(cm, PHILOSOPHERS);
    let forks: Vec<Fork> = (0..PHILOSOPHERS).map(|_| TVar::new(None)).collect();
    let t0 = Instant::now();

    std::thread::scope(|s| {
        for p in 0..PHILOSOPHERS {
            let ctx = stm.thread(p);
            let forks = &forks;
            s.spawn(move || {
                let left = p;
                let right = (p + 1) % PHILOSOPHERS;
                for _ in 0..MEALS_EACH {
                    // Pick up both forks atomically…
                    ctx.atomic(|tx| {
                        let l = *tx.read(&forks[left])?;
                        let r = *tx.read(&forks[right])?;
                        if l.is_none() && r.is_none() {
                            tx.write(&forks[left], Some(p))?;
                            tx.write(&forks[right], Some(p))?;
                        }
                        Ok(l.is_none() && r.is_none())
                    });
                    // …eat (nothing to do)… and put them down atomically.
                    ctx.atomic(|tx| {
                        if *tx.read(&forks[left])? == Some(p) {
                            tx.write(&forks[left], None)?;
                        }
                        if *tx.read(&forks[right])? == Some(p) {
                            tx.write(&forks[right], None)?;
                        }
                        Ok(())
                    });
                }
            });
        }
    });
    if let Some(w) = window {
        w.cancel();
    }

    // All forks must be back on the table.
    for (i, f) in forks.iter().enumerate() {
        assert_eq!(*f.sample(), None, "fork {i} still held!");
    }
    let stats = stm.aggregate();
    println!(
        "{name:<28} {:>6.0} ms  commits {:>6}  aborts/commit {:>6.3}",
        t0.elapsed().as_secs_f64() * 1e3,
        stats.commits,
        stats.aborts_per_commit(),
    );
}

fn main() {
    println!(
        "dining philosophers: {PHILOSOPHERS} philosophers × {MEALS_EACH} meals, atomic two-fork pickup\n"
    );
    for name in ["Greedy", "Polka", "Priority", "Timestamp"] {
        dine(managers::make_manager(name, PHILOSOPHERS).unwrap(), None);
    }
    let wm = Arc::new(WindowManager::new(
        WindowVariant::OnlineDynamic,
        WindowConfig::new(PHILOSOPHERS, 50),
    ));
    dine(wm.clone(), Some(wm));
    println!("\nno deadlocks, all forks returned ✓");
}
