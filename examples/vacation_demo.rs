//! The STAMP-style Vacation workload end to end: populate a travel-booking
//! database, hammer it from several threads under two different
//! contention managers, and audit referential integrity (every booking a
//! customer holds is backed by a reserved unit in the right table).
//!
//! ```text
//! cargo run --example vacation_demo
//! ```

use std::sync::Arc;
use std::time::Instant;

use windowtm::managers::Polka;
use windowtm::stm::Stm;
use windowtm::window::{WindowConfig, WindowManager, WindowVariant};
use windowtm::workloads::{Vacation, VacationConfig, VacationOpGenerator};

const THREADS: usize = 4;
const TXNS_PER_THREAD: usize = 500;

fn drive(vacation: &Arc<Vacation>, stm: &Stm, label: &str, window: Option<&WindowManager>) {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let ctx = stm.thread(t);
            let v = Arc::clone(vacation);
            s.spawn(move || {
                let mut gen = VacationOpGenerator::new(v.config(), t);
                for _ in 0..TXNS_PER_THREAD {
                    let op = gen.next_op();
                    ctx.atomic(|tx| v.run_op(tx, &op).map(|_| ()));
                }
            });
        }
    });
    if let Some(w) = window {
        w.cancel();
    }
    let stats = stm.aggregate();
    vacation.check_consistency();
    println!(
        "{label:<18} {:>7.0} txn/s  aborts/commit {:>6.3}  bookings now {}",
        stats.commits as f64 / t0.elapsed().as_secs_f64(),
        stats.aborts_per_commit(),
        vacation.total_bookings(),
    );
}

fn main() {
    let cfg = VacationConfig {
        num_relations: 64,
        num_queries: 4,
        query_range_pct: 60,
        update_pct: 40,
        seed: 2024,
    };
    println!(
        "vacation: {} rows/table, {} queries/txn, {}% updates, {} threads\n",
        cfg.num_relations, cfg.num_queries, cfg.update_pct, THREADS
    );

    // Run 1: Polka.
    let vacation = Arc::new(Vacation::new(cfg.clone()));
    let stm = Stm::new(Arc::new(Polka::default()), THREADS);
    drive(&vacation, &stm, "Polka", None);

    // Run 2: the paper's Adaptive-Improved-Dynamic window manager.
    let vacation2 = Arc::new(Vacation::new(cfg));
    let wm = Arc::new(WindowManager::new(
        WindowVariant::AdaptiveImprovedDynamic,
        WindowConfig::new(THREADS, 50),
    ));
    let stm2 = Stm::new(wm.clone(), THREADS);
    drive(&vacation2, &stm2, "Adaptive-Imp-Dyn", Some(&wm));

    println!("\nconsistency audits passed for both runs ✓");
}
