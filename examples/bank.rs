//! Bank transfers: a classic STM correctness demo with a twist — the same
//! workload runs under several contention managers and reports how much
//! work each one wasted, while an invariant (total balance conservation)
//! is audited after every run.
//!
//! ```text
//! cargo run --example bank
//! ```

use std::sync::Arc;

use windowtm::managers;
use windowtm::stm::{ContentionManager, Stm, TVar};
use windowtm::window::{WindowConfig, WindowManager, WindowVariant};

const ACCOUNTS: usize = 16;
const THREADS: usize = 4;
const TRANSFERS_PER_THREAD: usize = 400;
const INITIAL_BALANCE: i64 = 1_000;

fn run(manager: Arc<dyn ContentionManager>, window: Option<Arc<WindowManager>>) {
    let name = manager.name().to_string();
    let stm = Stm::new(manager, THREADS);
    let accounts: Vec<TVar<i64>> = (0..ACCOUNTS).map(|_| TVar::new(INITIAL_BALANCE)).collect();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let ctx = stm.thread(t);
            let accounts = &accounts;
            s.spawn(move || {
                // Deterministic pseudo-random transfer pattern per thread.
                let mut state = 0x9E3779B97F4A7C15u64 ^ (t as u64) << 32;
                let mut next = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                for _ in 0..TRANSFERS_PER_THREAD {
                    let from = (next() as usize) % ACCOUNTS;
                    let mut to = (next() as usize) % ACCOUNTS;
                    if to == from {
                        to = (to + 1) % ACCOUNTS;
                    }
                    let amount = (next() % 50) as i64 + 1;
                    ctx.atomic(|tx| {
                        let a = *tx.read(&accounts[from])?;
                        let b = *tx.read(&accounts[to])?;
                        if a >= amount {
                            tx.write(&accounts[from], a - amount)?;
                            tx.write(&accounts[to], b + amount)?;
                        }
                        Ok(())
                    });
                }
            });
        }
    });
    if let Some(w) = window {
        w.cancel();
    }

    let total: i64 = accounts.iter().map(|a| *a.sample()).sum();
    let stats = stm.aggregate();
    assert_eq!(
        total,
        (ACCOUNTS as i64) * INITIAL_BALANCE,
        "balance must be conserved"
    );
    println!(
        "{name:<28} commits {:>6}  aborts {:>6}  aborts/commit {:>6.3}  wasted {:>5.1}%",
        stats.commits,
        stats.aborts,
        stats.aborts_per_commit(),
        stats.wasted_work() * 100.0,
    );
}

fn main() {
    println!(
        "bank: {ACCOUNTS} accounts, {THREADS} threads × {TRANSFERS_PER_THREAD} transfers, invariant = conservation\n"
    );
    // Classic managers.
    for name in ["Polka", "Greedy", "Priority", "Karma", "Aggressive"] {
        let cm = managers::make_manager(name, THREADS).expect("classic manager");
        run(cm, None);
    }
    // Window-based managers.
    for variant in [
        WindowVariant::OnlineDynamic,
        WindowVariant::AdaptiveImprovedDynamic,
    ] {
        let wm = Arc::new(WindowManager::new(variant, WindowConfig::new(THREADS, 50)));
        run(wm.clone(), Some(wm));
    }
    println!("\nall runs conserved the total balance ✓");
}
