//! Cross-crate correctness: every contention manager (classic and
//! window-based) must preserve atomicity and isolation on real
//! multi-threaded workloads. These tests exercise the full stack —
//! engine + manager + data structures — and audit invariants that only
//! hold if the STM is serializable.

use std::sync::Arc;

use windowtm::harness::managers::{all_manager_names, build_manager};
use windowtm::stm::{EngineKind, Stm, TVar};
use windowtm::workloads::{TxIntSet, TxList, TxRBTree, TxSkipList};

const THREADS: usize = 3;

/// Run `per_thread` counter increments under the named manager and check
/// no update is lost. The hot single `TVar` maximizes write-write
/// conflicts, so every manager's full decision logic fires.
fn counter_torture(manager: &str, engine: EngineKind, per_thread: u64) {
    let built = build_manager(manager, THREADS, 8, 7).expect(manager);
    let stm = Stm::with_engine(built.cm.clone(), THREADS, engine);
    let counter: TVar<u64> = TVar::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let ctx = stm.thread(t);
            let counter = counter.clone();
            s.spawn(move || {
                for _ in 0..per_thread {
                    ctx.atomic(|tx| {
                        let v = *tx.read(&counter)?;
                        tx.write(&counter, v + 1)
                    });
                }
            });
        }
    });
    built.cancel();
    assert_eq!(
        *counter.sample(),
        THREADS as u64 * per_thread,
        "lost updates under {manager}/{engine}"
    );
    let stats = stm.aggregate();
    assert_eq!(stats.commits, THREADS as u64 * per_thread);
}

#[test]
fn no_lost_updates_under_any_manager() {
    for manager in all_manager_names() {
        counter_torture(manager, EngineKind::Eager, 150);
    }
}

#[test]
fn no_lost_updates_under_any_manager_lazy_engine() {
    for manager in all_manager_names() {
        counter_torture(manager, EngineKind::Lazy, 150);
    }
}

/// Bank conservation: transfers between accounts must conserve the total
/// under concurrency, for every manager.
fn bank_conservation(manager: &str, engine: EngineKind) {
    const ACCOUNTS: usize = 8;
    const INITIAL: i64 = 100;
    let built = build_manager(manager, THREADS, 8, 13).expect(manager);
    let stm = Stm::with_engine(built.cm.clone(), THREADS, engine);
    let accounts: Arc<Vec<TVar<i64>>> =
        Arc::new((0..ACCOUNTS).map(|_| TVar::new(INITIAL)).collect());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let ctx = stm.thread(t);
            let accounts = Arc::clone(&accounts);
            s.spawn(move || {
                for i in 0..200usize {
                    let from = (i * 7 + t) % ACCOUNTS;
                    let to = (i * 13 + t * 3 + 1) % ACCOUNTS;
                    if from == to {
                        continue;
                    }
                    ctx.atomic(|tx| {
                        let a = *tx.read(&accounts[from])?;
                        let b = *tx.read(&accounts[to])?;
                        if a >= 5 {
                            tx.write(&accounts[from], a - 5)?;
                            tx.write(&accounts[to], b + 5)?;
                        }
                        Ok(())
                    });
                }
            });
        }
    });
    built.cancel();
    let total: i64 = accounts.iter().map(|a| *a.sample()).sum();
    assert_eq!(
        total,
        ACCOUNTS as i64 * INITIAL,
        "leak under {manager}/{engine}"
    );
    // No account may go negative (the guard reads both balances in the
    // same transaction — a dirty read would break this).
    for a in accounts.iter() {
        assert!(
            *a.sample() >= 0,
            "negative balance under {manager}/{engine}"
        );
    }
}

#[test]
fn bank_conserves_total_under_every_manager() {
    for manager in all_manager_names() {
        bank_conservation(manager, EngineKind::Eager);
    }
}

#[test]
fn bank_conserves_total_under_every_manager_lazy_engine() {
    for manager in all_manager_names() {
        bank_conservation(manager, EngineKind::Lazy);
    }
}

/// Concurrent set workload vs. a sequential oracle: replay the exact same
/// deterministic per-thread operation streams sequentially and compare
/// final contents. Because each per-thread stream is applied in order and
/// set operations commute across threads only when keys are disjoint, we
/// use disjoint per-thread key ranges — any divergence is an isolation
/// bug, not an ordering artifact.
fn disjoint_sets_match_oracle(set: &dyn TxIntSet, manager: &str, engine: EngineKind) {
    let built = build_manager(manager, THREADS, 8, 21).expect(manager);
    let stm = Stm::with_engine(built.cm.clone(), THREADS, engine);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let ctx = stm.thread(t);
            s.spawn(move || {
                let base = (t as i64) * 1000;
                // insert 0..60, remove every third.
                for k in 0..60 {
                    ctx.atomic(|tx| set.insert(tx, base + k).map(|_| ()));
                }
                for k in (0..60).step_by(3) {
                    ctx.atomic(|tx| set.remove(tx, base + k).map(|_| ()));
                }
            });
        }
    });
    built.cancel();
    let mut expect: Vec<i64> = Vec::new();
    for t in 0..THREADS as i64 {
        for k in 0..60 {
            if k % 3 != 0 {
                expect.push(t * 1000 + k);
            }
        }
    }
    expect.sort_unstable();
    assert_eq!(
        set.snapshot_keys(),
        expect,
        "{} diverged under {manager}/{engine}",
        set.name()
    );
}

#[test]
fn list_matches_oracle_under_comparison_managers() {
    for engine in EngineKind::ALL {
        for manager in ["Polka", "Greedy", "Priority", "Online-Dynamic"] {
            let list = TxList::new();
            disjoint_sets_match_oracle(&list, manager, engine);
        }
    }
}

#[test]
fn rbtree_matches_oracle_under_comparison_managers() {
    for engine in EngineKind::ALL {
        for manager in ["Polka", "Greedy", "Adaptive-Improved-Dynamic"] {
            let tree = TxRBTree::new(512);
            disjoint_sets_match_oracle(&tree, manager, engine);
            tree.map().check_invariants();
            tree.map().check_freelist();
        }
    }
}

#[test]
fn skiplist_matches_oracle_under_comparison_managers() {
    for engine in EngineKind::ALL {
        for manager in ["Greedy", "Online-Dynamic"] {
            let sl = TxSkipList::new();
            disjoint_sets_match_oracle(&sl, manager, engine);
        }
    }
}

/// Snapshot isolation sanity: a transaction reading two variables that
/// are always updated together must never observe them out of sync —
/// even while writers hammer them.
#[test]
fn readers_never_observe_torn_pairs() {
    for engine in EngineKind::ALL {
        readers_never_observe_torn_pairs_on(engine);
    }
}

fn readers_never_observe_torn_pairs_on(engine: EngineKind) {
    let built = build_manager("Greedy", 2, 8, 3).unwrap();
    let stm = Stm::with_engine(built.cm.clone(), 2, engine);
    let a: TVar<u64> = TVar::new(0);
    let b: TVar<u64> = TVar::new(0);
    std::thread::scope(|s| {
        {
            let ctx = stm.thread(0);
            let (a, b) = (a.clone(), b.clone());
            s.spawn(move || {
                for i in 1..=400u64 {
                    ctx.atomic(|tx| {
                        tx.write(&a, i)?;
                        tx.write(&b, i)
                    });
                }
            });
        }
        {
            let ctx = stm.thread(1);
            let (a, b) = (a.clone(), b.clone());
            s.spawn(move || {
                for _ in 0..400 {
                    let (va, vb) = ctx.atomic(|tx| {
                        let va = *tx.read(&a)?;
                        let vb = *tx.read(&b)?;
                        Ok((va, vb))
                    });
                    assert_eq!(va, vb, "torn read under {engine}: a={va} b={vb}");
                }
            });
        }
    });
    built.cancel();
}

/// Explicit failure injection: transactions that abort midway must leave
/// no trace, even after partially building a write set.
#[test]
fn aborted_transactions_leave_no_trace() {
    for engine in EngineKind::ALL {
        aborted_transactions_leave_no_trace_on(engine);
    }
}

fn aborted_transactions_leave_no_trace_on(engine: EngineKind) {
    let built = build_manager("Polka", 1, 8, 5).unwrap();
    let stm = Stm::with_engine(built.cm.clone(), 1, engine);
    let ctx = stm.thread(0);
    let v1: TVar<u64> = TVar::new(10);
    let v2: TVar<u64> = TVar::new(20);
    for _ in 0..50 {
        let out: Option<()> = ctx.atomic_with_budget(0, &mut |tx| {
            tx.write(&v1, 999)?;
            tx.write(&v2, 999)?;
            Err(tx.abort_self())
        });
        assert!(out.is_none());
    }
    assert_eq!(*v1.sample(), 10);
    assert_eq!(*v2.sample(), 20);
    // The variables remain writable afterwards.
    ctx.atomic(|tx| tx.write(&v1, 11));
    assert_eq!(*v1.sample(), 11);
}
