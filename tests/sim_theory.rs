//! Simulator-level validation of the paper's theory claims (§II-C):
//! completion under arbitrary graphs, the Offline algorithm's
//! conflict-freedom, makespan lower bounds, and — the headline — the
//! Theorem 2.1/2.3 scaling shapes.

use proptest::prelude::*;

use windowtm::sim::engine::{simulate, SimConfig, SimOutcome};
use windowtm::sim::graph::ConflictGraph;
use windowtm::sim::sched::{
    FreeRandomizedScheduler, GreedyTimestampScheduler, OfflineWindowScheduler, OneShotScheduler,
    OnlineWindowScheduler, SimScheduler, WindowMode,
};

fn run(graph: &ConflictGraph, cfg: &SimConfig, s: &mut dyn SimScheduler) -> SimOutcome {
    let out = simulate(graph, cfg, s);
    assert!(out.all_committed, "{} must finish", s.name());
    out
}

#[test]
fn offline_makespan_within_theorem_bound_constant() {
    // Theorem 2.1: makespan = O(τ·(C + N·log MN)) w.h.p. Check that the
    // ratio makespan / (τ·(C + N·ln MN)) stays below a small constant
    // across very different contention regimes.
    for (m, n, p) in [(8, 16, 1.0), (16, 24, 0.5), (32, 16, 0.25), (4, 40, 1.0)] {
        let graph = ConflictGraph::per_column_random(m, n, p, 42);
        let cfg = SimConfig::new(m, n, 3);
        let out = run(
            &graph,
            &cfg,
            &mut OfflineWindowScheduler::new(&cfg, &graph, 1),
        );
        let bound = cfg.tau as f64 * (graph.contention() as f64 + n as f64 * cfg.ln_mn());
        let ratio = out.makespan as f64 / bound;
        assert!(
            ratio < 3.0,
            "Offline ratio {ratio:.2} too large for M={m} N={n} p={p} (makespan {} bound {bound:.0})",
            out.makespan
        );
    }
}

#[test]
fn online_makespan_within_theorem_bound_constant() {
    // Theorem 2.3: makespan = O(τ·(C·log MN + N·log² MN)) w.h.p.
    for (m, n, p) in [(8, 16, 1.0), (16, 24, 0.5), (32, 16, 0.25)] {
        let graph = ConflictGraph::per_column_random(m, n, p, 42);
        let cfg = SimConfig::new(m, n, 3);
        let out = run(
            &graph,
            &cfg,
            &mut OnlineWindowScheduler::new(&cfg, &graph, WindowMode::Static, 1),
        );
        let l = cfg.ln_mn();
        let bound = cfg.tau as f64 * (graph.contention() as f64 * l + n as f64 * l * l);
        let ratio = out.makespan as f64 / bound;
        assert!(
            ratio < 3.0,
            "Online ratio {ratio:.2} too large for M={m} N={n} p={p}"
        );
    }
}

#[test]
fn makespan_never_beats_the_sequential_floor() {
    // N·τ is a hard lower bound: each thread's N transactions serialize.
    let graph = ConflictGraph::per_column_random(6, 12, 0.7, 9);
    let cfg = SimConfig::new(6, 12, 5);
    let floor = 12 * 5;
    let outs = [
        run(&graph, &cfg, &mut OneShotScheduler::new(&cfg, 4)),
        run(&graph, &cfg, &mut FreeRandomizedScheduler::new(&cfg, 4)),
        run(&graph, &cfg, &mut GreedyTimestampScheduler::new(&cfg)),
        run(
            &graph,
            &cfg,
            &mut OfflineWindowScheduler::new(&cfg, &graph, 4),
        ),
        run(
            &graph,
            &cfg,
            &mut OnlineWindowScheduler::new(&cfg, &graph, WindowMode::Dynamic, 4),
        ),
    ];
    for o in outs {
        assert!(o.makespan >= floor);
    }
}

#[test]
fn window_improves_on_oneshot_in_motivating_regime() {
    // §I-B: dense same-column conflicts, none across columns — the random
    // shifts should (on average over seeds) beat the one-shot baseline by
    // a wide margin.
    let mut win_total = 0.0;
    let mut one_total = 0.0;
    for seed in 0..6 {
        let graph = ConflictGraph::complete_columns(12, 16);
        let cfg = SimConfig::new(12, 16, 2);
        let one = run(&graph, &cfg, &mut OneShotScheduler::new(&cfg, seed));
        let win = run(
            &graph,
            &cfg,
            &mut OnlineWindowScheduler::new(&cfg, &graph, WindowMode::Dynamic, seed),
        );
        one_total += one.makespan as f64;
        win_total += win.makespan as f64;
    }
    assert!(
        win_total * 2.0 < one_total,
        "window should be at least 2× faster than one-shot here (window {win_total}, one-shot {one_total})"
    );
}

#[test]
fn offline_produces_zero_aborts_always() {
    for seed in 0..5 {
        let graph = ConflictGraph::clustered(10, 10, 0.8, 0.1, seed);
        let cfg = SimConfig::new(10, 10, 2);
        let out = run(
            &graph,
            &cfg,
            &mut OfflineWindowScheduler::new(&cfg, &graph, seed),
        );
        assert_eq!(out.aborts, 0, "coloring schedules cannot conflict");
    }
}

#[test]
fn dynamic_contraction_never_hurts_online() {
    // Contraction removes dead frame time; across seeds it should be at
    // least as good as the static frames on average.
    let mut stat_total = 0.0;
    let mut dyn_total = 0.0;
    for seed in 0..8 {
        let graph = ConflictGraph::per_column_random(10, 16, 0.6, 100 + seed);
        let cfg = SimConfig::new(10, 16, 3);
        stat_total += run(
            &graph,
            &cfg,
            &mut OnlineWindowScheduler::new(&cfg, &graph, WindowMode::Static, seed),
        )
        .makespan as f64;
        dyn_total += run(
            &graph,
            &cfg,
            &mut OnlineWindowScheduler::new(&cfg, &graph, WindowMode::Dynamic, seed),
        )
        .makespan as f64;
    }
    assert!(
        dyn_total <= stat_total * 1.05,
        "dynamic {dyn_total} should not lose to static {stat_total}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_schedulers_complete_arbitrary_graphs(
        m in 2usize..8,
        n in 2usize..10,
        p in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let graph = ConflictGraph::per_column_random(m, n, p, seed);
        let cfg = SimConfig::new(m, n, 2);
        let mut scheds: Vec<Box<dyn SimScheduler>> = vec![
            Box::new(FreeRandomizedScheduler::new(&cfg, seed)),
            Box::new(OneShotScheduler::new(&cfg, seed)),
            Box::new(GreedyTimestampScheduler::new(&cfg)),
            Box::new(OnlineWindowScheduler::new(&cfg, &graph, WindowMode::Static, seed)),
            Box::new(OnlineWindowScheduler::new(&cfg, &graph, WindowMode::Dynamic, seed)),
            Box::new(OnlineWindowScheduler::adaptive(&cfg, WindowMode::Dynamic, seed)),
            Box::new(OfflineWindowScheduler::new(&cfg, &graph, seed)),
        ];
        for s in scheds.iter_mut() {
            let out = simulate(&graph, &cfg, s.as_mut());
            prop_assert!(out.all_committed, "{} stuck on M={m} N={n} p={p}", s.name());
            prop_assert!(out.makespan >= (n as u64) * 2);
            prop_assert_eq!(out.commits, (m * n) as u64);
        }
    }

    #[test]
    fn simulation_is_deterministic(
        m in 2usize..6,
        n in 2usize..8,
        seed in 0u64..500,
    ) {
        let graph = ConflictGraph::clustered(m, n, 0.7, 0.1, seed);
        let cfg = SimConfig::new(m, n, 3);
        let a = simulate(&graph, &cfg, &mut OnlineWindowScheduler::new(&cfg, &graph, WindowMode::Dynamic, seed));
        let b = simulate(&graph, &cfg, &mut OnlineWindowScheduler::new(&cfg, &graph, WindowMode::Dynamic, seed));
        prop_assert_eq!(a, b);
    }
}
