//! Determinism gates for the event-core rewrite of `wtm-sim`.
//!
//! Three pins, per the refactor contract:
//!
//! 1. **Golden outcome vectors** — `(makespan, aborts, sum_response)` for
//!    every scheduler on five fixed windows, captured from the
//!    *pre-refactor* discrete-time simulator. The zero-latency event core
//!    must reproduce them bit-identically: same phase order, same RNG
//!    consumption, same duel/abort call order.
//! 2. **Same-seed ⇒ same event log** — a cross-scheduler property test:
//!    any `(scenario, scheduler, net, seed)` run twice yields the same
//!    byte log and outcome.
//! 3. **Golden replay log** — a committed recorded run
//!    (`tests/data/sim_golden.log`) must replay byte-identically forever;
//!    this is the regression pin CI runs.

use proptest::prelude::*;

use windowtm::sim::engine::{simulate, SimConfig};
use windowtm::sim::graph::ConflictGraph;
use windowtm::sim::scenario::{
    build_sim_scheduler, record_run, replay, run_sim, SimRunSpec, SIM_SCHEDULER_NAMES,
};
use windowtm::sim::SimError;

/// `((m, n, p, seed), scheduler, (makespan, aborts, sum_response))`,
/// captured from the pre-event-core simulator at `tau = 2`. `p > 1.5`
/// encodes the complete-columns (fig2-shape) graph; otherwise the graph
/// is `per_column_random(m, n, p, seed)`.
#[allow(clippy::type_complexity)]
const GOLDEN: &[((usize, usize, f64, u64), &str, (u64, u64, u64))] = &[
    ((6, 8, 0.5, 1), "OneShot", (82, 167, 455)),
    ((6, 8, 0.5, 1), "RandomizedRounds", (25, 28, 127)),
    ((6, 8, 0.5, 1), "Greedy", (26, 30, 126)),
    ((6, 8, 0.5, 1), "Polka", (26, 30, 126)),
    ((6, 8, 0.5, 1), "Online", (30, 33, 138)),
    ((6, 8, 0.5, 1), "Online-Dynamic", (30, 33, 138)),
    ((6, 8, 0.5, 1), "Adaptive-Dynamic", (30, 33, 138)),
    ((6, 8, 0.5, 1), "Offline", (26, 0, 126)),
    ((8, 12, 1.0, 7), "OneShot", (239, 876, 1847)),
    ((8, 12, 1.0, 7), "RandomizedRounds", (43, 76, 273)),
    ((8, 12, 1.0, 7), "Greedy", (38, 56, 248)),
    ((8, 12, 1.0, 7), "Polka", (38, 56, 248)),
    ((8, 12, 1.0, 7), "Online", (46, 80, 280)),
    ((8, 12, 1.0, 7), "Online-Dynamic", (46, 80, 280)),
    ((8, 12, 1.0, 7), "Adaptive-Dynamic", (44, 76, 274)),
    ((8, 12, 1.0, 7), "Offline", (38, 0, 248)),
    ((10, 16, 0.6, 23), "OneShot", (264, 1088, 2577)),
    ((10, 16, 0.6, 23), "RandomizedRounds", (52, 94, 427)),
    ((10, 16, 0.6, 23), "Greedy", (50, 90, 410)),
    ((10, 16, 0.6, 23), "Polka", (50, 90, 410)),
    ((10, 16, 0.6, 23), "Online", (56, 106, 437)),
    ((10, 16, 0.6, 23), "Online-Dynamic", (52, 95, 424)),
    ((10, 16, 0.6, 23), "Adaptive-Dynamic", (54, 101, 431)),
    ((10, 16, 0.6, 23), "Offline", (50, 0, 410)),
    ((4, 6, 0.3, 42), "OneShot", (25, 19, 94)),
    ((4, 6, 0.3, 42), "RandomizedRounds", (19, 14, 64)),
    ((4, 6, 0.3, 42), "Greedy", (16, 10, 58)),
    ((4, 6, 0.3, 42), "Polka", (18, 12, 60)),
    ((4, 6, 0.3, 42), "Online", (17, 10, 59)),
    ((4, 6, 0.3, 42), "Online-Dynamic", (17, 10, 59)),
    ((4, 6, 0.3, 42), "Adaptive-Dynamic", (17, 10, 59)),
    ((4, 6, 0.3, 42), "Offline", (16, 0, 58)),
    ((8, 10, 2.0, 11), "OneShot", (209, 777, 1603)),
    ((8, 10, 2.0, 11), "RandomizedRounds", (37, 62, 225)),
    ((8, 10, 2.0, 11), "Greedy", (34, 56, 216)),
    ((8, 10, 2.0, 11), "Polka", (34, 56, 216)),
    ((8, 10, 2.0, 11), "Online", (39, 74, 239)),
    ((8, 10, 2.0, 11), "Online-Dynamic", (38, 73, 237)),
    ((8, 10, 2.0, 11), "Adaptive-Dynamic", (39, 74, 239)),
    ((8, 10, 2.0, 11), "Offline", (34, 0, 216)),
];

fn golden_graph(m: usize, n: usize, p: f64, seed: u64) -> ConflictGraph {
    if p > 1.5 {
        ConflictGraph::complete_columns(m, n)
    } else {
        ConflictGraph::per_column_random(m, n, p, seed)
    }
}

#[test]
fn golden_vectors_pin_the_zero_latency_rewrite() {
    for &((m, n, p, seed), name, (makespan, aborts, sum_response)) in GOLDEN {
        let g = golden_graph(m, n, p, seed);
        let cfg = SimConfig::new(m, n, 2);
        let mut sched = build_sim_scheduler(name, &cfg, &g, seed).unwrap();
        let out = simulate(&g, &cfg, sched.as_mut());
        assert!(out.all_committed, "{name} on ({m},{n},{p},{seed})");
        assert_eq!(out.zombie_commits, 0);
        assert_eq!(
            (out.makespan, out.aborts, out.sum_response),
            (makespan, aborts, sum_response),
            "{name} on ({m},{n},{p},{seed}) diverged from the pre-refactor simulator"
        );
    }
}

#[test]
fn zero_net_matches_fixed_zero_and_plain_simulate() {
    for sched in SIM_SCHEDULER_NAMES {
        let spec = SimRunSpec {
            scenario: "per-column@p=60".into(),
            scheduler: sched.to_string(),
            m: 5,
            n: 6,
            tau: 2,
            net: "zero".into(),
            seed: 99,
        };
        let zero = run_sim(&spec, true).unwrap();
        let fixed0 = run_sim(
            &SimRunSpec {
                net: "fixed:0".into(),
                ..spec.clone()
            },
            true,
        )
        .unwrap();
        assert_eq!(zero.outcome, fixed0.outcome, "{sched}");
        assert_eq!(zero.log.as_bytes(), fixed0.log.as_bytes(), "{sched}");
    }
}

#[test]
fn replay_of_the_committed_golden_log_is_byte_identical() {
    let recorded = include_str!("data/sim_golden.log");
    let outcome = replay(recorded).expect("the committed golden log must replay byte-identically");
    assert!(outcome.all_committed);
    // The trailer in the file pins the same numbers; replay() verified
    // them. Re-record to prove serialization is stable too.
    let header: Vec<&str> = recorded.lines().take(8).collect();
    assert_eq!(header[0], "wtm-sim-log v1");
    let spec = SimRunSpec {
        scenario: header[1].strip_prefix("scenario=").unwrap().into(),
        scheduler: header[2].strip_prefix("scheduler=").unwrap().into(),
        m: header[3].strip_prefix("m=").unwrap().parse().unwrap(),
        n: header[4].strip_prefix("n=").unwrap().parse().unwrap(),
        tau: header[5].strip_prefix("tau=").unwrap().parse().unwrap(),
        net: header[6].strip_prefix("net=").unwrap().into(),
        seed: u64::from_str_radix(header[7].strip_prefix("seed=0x").unwrap(), 16).unwrap(),
    };
    assert_eq!(record_run(&spec).unwrap(), recorded);
}

#[test]
fn tampered_golden_log_is_rejected() {
    let recorded = include_str!("data/sim_golden.log");
    let tampered = recorded.replacen("outcome=", "outcome=9", 1);
    match replay(&tampered) {
        Err(SimError::ReplayMismatch { .. }) => {}
        other => panic!("expected ReplayMismatch, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cross-scheduler determinism: the same seed yields the same event
    /// log and outcome for every scheduler, scenario shape, and network
    /// model — including the jittery/lossy one.
    #[test]
    fn same_seed_runs_produce_identical_event_logs(
        m in 2usize..6,
        n in 2usize..5,
        seed in 0u64..1_000_000,
        scen_i in 0usize..4,
        net_i in 0usize..3,
    ) {
        let scenario = ["fig2-shape", "per-column@p=40", "distributed@nodes=2,skew=1",
                        "replicated@nodes=2"][scen_i];
        let net = ["zero", "fixed:2", "jitter:1,j=2,drop=100"][net_i];
        for sched in SIM_SCHEDULER_NAMES {
            let spec = SimRunSpec {
                scenario: scenario.into(),
                scheduler: sched.to_string(),
                m,
                n,
                tau: 2,
                net: net.into(),
                seed,
            };
            let a = run_sim(&spec, true).unwrap();
            let b = run_sim(&spec, true).unwrap();
            prop_assert_eq!(a.outcome, b.outcome, "{} / {} / {}", scenario, sched, net);
            prop_assert_eq!(
                a.log.as_bytes(),
                b.log.as_bytes(),
                "{} / {} / {}: event logs diverged",
                scenario, sched, net
            );
            prop_assert!(a.log.records() > 0);
        }
    }
}
