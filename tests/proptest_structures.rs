//! Property-based tests: the transactional data structures must behave
//! exactly like their `std` oracles on arbitrary operation sequences, and
//! their structural invariants must hold after every prefix.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use proptest::prelude::*;

use windowtm::stm::cm::AbortSelfManager;
use windowtm::stm::Stm;
use windowtm::workloads::skiplist::check_skiplist;
use windowtm::workloads::{TxIntSet, TxList, TxRBMap, TxRBTree, TxSkipList};

#[derive(Debug, Clone)]
enum Op {
    Insert(i64),
    Remove(i64),
    Contains(i64),
}

fn op_strategy(key_range: i64) -> impl Strategy<Value = Op> {
    (0..3u8, 0..key_range).prop_map(|(k, key)| match k {
        0 => Op::Insert(key),
        1 => Op::Remove(key),
        _ => Op::Contains(key),
    })
}

fn check_set_against_oracle(set: &dyn TxIntSet, ops: &[Op]) {
    let stm = Stm::new(Arc::new(AbortSelfManager), 1);
    let ctx = stm.thread(0);
    let mut oracle = BTreeSet::new();
    for op in ops {
        match *op {
            Op::Insert(k) => {
                let got = ctx.atomic(|tx| set.insert(tx, k));
                assert_eq!(got, oracle.insert(k), "insert({k})");
            }
            Op::Remove(k) => {
                let got = ctx.atomic(|tx| set.remove(tx, k));
                assert_eq!(got, oracle.remove(&k), "remove({k})");
            }
            Op::Contains(k) => {
                let got = ctx.atomic(|tx| set.contains(tx, k));
                assert_eq!(got, oracle.contains(&k), "contains({k})");
            }
        }
    }
    assert_eq!(
        set.snapshot_keys(),
        oracle.iter().copied().collect::<Vec<_>>()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn list_behaves_like_btreeset(ops in proptest::collection::vec(op_strategy(32), 1..120)) {
        let list = TxList::new();
        check_set_against_oracle(&list, &ops);
    }

    #[test]
    fn skiplist_behaves_like_btreeset(ops in proptest::collection::vec(op_strategy(48), 1..120)) {
        let sl = TxSkipList::new();
        check_set_against_oracle(&sl, &ops);
        check_skiplist(&sl);
    }

    #[test]
    fn rbtree_behaves_like_btreeset(ops in proptest::collection::vec(op_strategy(48), 1..150)) {
        let tree = TxRBTree::new(64);
        check_set_against_oracle(&tree, &ops);
        tree.map().check_invariants();
        tree.map().check_freelist();
    }

    #[test]
    fn rbtree_invariants_hold_after_every_prefix(
        ops in proptest::collection::vec(op_strategy(24), 1..60)
    ) {
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let ctx = stm.thread(0);
        let tree = TxRBTree::new(32);
        for op in &ops {
            match *op {
                Op::Insert(k) => { ctx.atomic(|tx| tree.insert(tx, k)); }
                Op::Remove(k) => { ctx.atomic(|tx| tree.remove(tx, k)); }
                Op::Contains(k) => { ctx.atomic(|tx| tree.contains(tx, k)); }
            }
            tree.map().check_invariants();
            tree.map().check_freelist();
        }
    }

    #[test]
    fn rbmap_behaves_like_btreemap(
        ops in proptest::collection::vec((0..3u8, 0..32i64, 0..1000u64), 1..120)
    ) {
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let ctx = stm.thread(0);
        let map: TxRBMap<u64> = TxRBMap::new(48);
        let mut oracle: BTreeMap<i64, u64> = BTreeMap::new();
        for (kind, k, v) in ops {
            match kind {
                0 => {
                    let newly = ctx.atomic(|tx| map.put(tx, k, v));
                    assert_eq!(newly, oracle.insert(k, v).is_none(), "put({k})");
                }
                1 => {
                    let got = ctx.atomic(|tx| map.remove_entry(tx, k));
                    assert_eq!(got, oracle.remove(&k), "remove({k})");
                }
                _ => {
                    let got = ctx.atomic(|tx| map.get(tx, k));
                    assert_eq!(got, oracle.get(&k).copied(), "get({k})");
                }
            }
        }
        let snap: Vec<(i64, u64)> = map.snapshot();
        let want: Vec<(i64, u64)> = oracle.into_iter().collect();
        assert_eq!(snap, want);
        map.check_invariants();
    }

    #[test]
    fn rbmap_floor_matches_btreemap_range(
        keys in proptest::collection::btree_set(0..64i64, 0..24),
        probe in 0..64i64
    ) {
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let ctx = stm.thread(0);
        let map: TxRBMap<u64> = TxRBMap::new(80);
        for &k in &keys {
            ctx.atomic(|tx| map.put(tx, k, k as u64 * 2));
        }
        let got = ctx.atomic(|tx| map.floor(tx, probe));
        let want = keys.range(..=probe).next_back().map(|&k| (k, k as u64 * 2));
        assert_eq!(got, want);
    }
}
