//! Liveness and window-mechanics tests for the window-based managers:
//! every transaction of every window commits, windows cycle, adaptive
//! estimates move, and the barrier protocol survives shutdown.

use std::sync::Arc;
use std::time::Duration;

use windowtm::stm::{Stm, TVar};
use windowtm::window::{WindowConfig, WindowManager, WindowVariant};
use windowtm::workloads::{TxIntSet, TxList};

/// Drive `windows` full windows on `m` threads over a hot list and check
/// every transaction committed.
fn drive_windows(variant: WindowVariant, m: usize, n: usize, windows: usize) -> Arc<WindowManager> {
    let cfg = WindowConfig::new(m, n).with_seed(0xA11CE);
    let wm = Arc::new(WindowManager::new(variant, cfg));
    let stm = Stm::new(wm.clone(), m);
    let list = Arc::new(TxList::new());
    std::thread::scope(|s| {
        for t in 0..m {
            let ctx = stm.thread(t);
            let list = Arc::clone(&list);
            s.spawn(move || {
                for i in 0..n * windows {
                    let k = ((t * 31 + i * 7) % 24) as i64;
                    ctx.atomic(|tx| {
                        if i % 2 == 0 {
                            list.insert(tx, k).map(|_| ())
                        } else {
                            list.remove(tx, k).map(|_| ())
                        }
                    });
                }
            });
        }
    });
    wm.cancel();
    let stats = stm.aggregate();
    assert_eq!(
        stats.commits,
        (m * n * windows) as u64,
        "{}: every issued transaction must commit",
        variant.name()
    );
    wm
}

#[test]
fn every_variant_completes_multiple_windows() {
    for &variant in WindowVariant::all() {
        let wm = drive_windows(variant, 3, 6, 3);
        for t in 0..3 {
            assert!(
                wm.windows_completed(t) >= 2,
                "{}: thread {t} should have cycled windows",
                variant.name()
            );
        }
    }
}

#[test]
fn single_thread_window_degenerates_gracefully() {
    // M = 1: no contention, barrier of one party, q drawn from α(C)≥1.
    drive_windows(WindowVariant::OnlineDynamic, 1, 10, 4);
}

#[test]
fn adaptive_improved_tracks_contention() {
    // Under a hot single counter the CI estimator must push C above its
    // floor on at least one thread... unless the host schedules threads so
    // apart that no aborts happen at all (possible on one core), in which
    // case the estimate legitimately stays at the floor. Accept either,
    // but require the runs to complete and the estimate to stay finite.
    let m = 3;
    let cfg = WindowConfig::new(m, 8).with_seed(99);
    let wm = Arc::new(WindowManager::new(
        WindowVariant::AdaptiveImprovedDynamic,
        cfg,
    ));
    let stm = Stm::new(wm.clone(), m);
    let counter: TVar<u64> = TVar::new(0);
    std::thread::scope(|s| {
        for t in 0..m {
            let ctx = stm.thread(t);
            let counter = counter.clone();
            s.spawn(move || {
                for _ in 0..32 {
                    ctx.atomic(|tx| {
                        let v = *tx.read(&counter)?;
                        // Lengthen the window of vulnerability a little.
                        std::hint::black_box(v);
                        tx.write(&counter, v + 1)
                    });
                }
            });
        }
    });
    wm.cancel();
    assert_eq!(*counter.sample(), (m * 32) as u64);
    for t in 0..m {
        let c = wm.contention_estimate(t);
        assert!(c.is_finite() && c >= 1.0, "estimate must stay sane: {c}");
    }
}

#[test]
fn cancel_before_any_transaction_is_safe() {
    let cfg = WindowConfig::new(2, 4);
    let wm = Arc::new(WindowManager::new(WindowVariant::Online, cfg));
    wm.cancel();
    let stm = Stm::new(wm.clone(), 2);
    // Free mode: transactions still run correctly.
    let v: TVar<u32> = TVar::new(0);
    std::thread::scope(|s| {
        for t in 0..2 {
            let ctx = stm.thread(t);
            let v = v.clone();
            s.spawn(move || {
                for _ in 0..20 {
                    ctx.atomic(|tx| {
                        let x = *tx.read(&v)?;
                        tx.write(&v, x + 1)
                    });
                }
            });
        }
    });
    assert_eq!(*v.sample(), 40);
}

#[test]
fn mid_run_cancel_releases_barrier_waiters() {
    // One thread runs fewer windows than the other; after it exits and
    // cancels, the slower thread's barrier waits must not deadlock.
    let m = 2;
    let cfg = WindowConfig::new(m, 4).with_seed(5);
    let wm = Arc::new(WindowManager::new(WindowVariant::OnlineDynamic, cfg));
    let stm = Stm::new(wm.clone(), m);
    let v: TVar<u64> = TVar::new(0);
    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        {
            let ctx = stm.thread(0);
            let v = v.clone();
            let wm = Arc::clone(&wm);
            let done = &done;
            s.spawn(move || {
                for _ in 0..4 {
                    ctx.atomic(|tx| {
                        let x = *tx.read(&v)?;
                        tx.write(&v, x + 1)
                    });
                }
                done.store(true, std::sync::atomic::Ordering::Release);
                wm.cancel(); // simulate early exit
            });
        }
        {
            let ctx = stm.thread(1);
            let v = v.clone();
            s.spawn(move || {
                for _ in 0..12 {
                    ctx.atomic(|tx| {
                        let x = *tx.read(&v)?;
                        tx.write(&v, x + 1)
                    });
                }
            });
        }
    });
    assert_eq!(*v.sample(), 16);
    assert!(done.load(std::sync::atomic::Ordering::Acquire));
}

#[test]
fn window_run_respects_fixed_tau_configuration() {
    // With calibration off and a fixed τ, the frame length is exactly
    // phi_factor · ln(MN) · τ.
    let cfg = WindowConfig::new(4, 16).with_fixed_tau(Duration::from_micros(100));
    let expect = cfg.frame_len_ns(100_000.0);
    assert_eq!(expect, cfg.frame_len_ns(cfg.tau_initial.as_nanos() as f64));
    assert!(expect > 0);
}
