//! Workload × manager matrix tests: the full benchmark suite stays
//! consistent under every contention-manager family, including the
//! paper's window variants, at every contention level.

use std::sync::Arc;

use windowtm::harness::managers::build_manager;
use windowtm::stm::Stm;
use windowtm::window::{WindowConfig, WindowManager, WindowVariant};
use windowtm::workloads::{ContentionLevel, KMeans, Vacation, VacationConfig, VacationOpGenerator};

/// Vacation under a given manager and contention level stays referentially
/// consistent (bookings ↔ reserved units).
fn vacation_consistent(manager: &str, level: ContentionLevel) {
    const THREADS: usize = 3;
    let cfg = VacationConfig {
        num_relations: 24,
        num_queries: 3,
        query_range_pct: 80,
        update_pct: level.update_pct(),
        seed: 7,
    };
    let built = build_manager(manager, THREADS, 8, 3).expect(manager);
    let stm = Stm::with_dispatch(built.cm.clone(), THREADS);
    let v = Arc::new(Vacation::new(cfg));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let ctx = stm.thread(t);
            let v = Arc::clone(&v);
            s.spawn(move || {
                let mut gen = VacationOpGenerator::new(v.config(), t);
                for _ in 0..120 {
                    let op = gen.next_op();
                    ctx.atomic(|tx| v.run_op(tx, &op).map(|_| ()));
                }
            });
        }
    });
    built.cancel();
    v.check_consistency();
}

#[test]
fn vacation_consistent_under_window_managers_all_levels() {
    for manager in ["Online-Dynamic", "Adaptive", "Adaptive-Improved-Dynamic"] {
        for level in ContentionLevel::all() {
            vacation_consistent(manager, *level);
        }
    }
}

#[test]
fn vacation_consistent_under_classic_managers() {
    for manager in [
        "Polka",
        "Greedy",
        "Priority",
        "ATS",
        "Kindergarten",
        "Eruption",
    ] {
        vacation_consistent(manager, ContentionLevel::High);
    }
}

#[test]
fn kmeans_under_window_manager_converges() {
    // Points (120) and clusters (4) divisible by the thread count (4), as
    // the window barrier requires.
    const THREADS: usize = 4;
    let km = KMeans::new(4, 120, 5);
    let wm = Arc::new(WindowManager::new(
        WindowVariant::OnlineDynamic,
        WindowConfig::new(THREADS, 31), // N = (120/4 + 4/4) per iteration
    ));
    let stm = Stm::new(wm.clone(), THREADS);
    let before = km.inertia();
    let after = km.run(&stm, 2);
    wm.cancel();
    assert!(after <= before + 1e-6, "{before} -> {after}");
    assert_eq!(stm.aggregate().commits, 2 * (120 + 4) as u64);
}

#[test]
fn kmeans_under_ats_converges() {
    let km = KMeans::new(4, 120, 5);
    let cm = windowtm::managers::make_manager("ATS", 3).unwrap();
    let stm = Stm::new(cm, 3);
    let before = km.inertia();
    let after = km.run(&stm, 2);
    assert!(after <= before + 1e-6);
}

#[test]
fn hashset_concurrent_oracle_under_several_managers() {
    use windowtm::workloads::{TxHashSet, TxIntSet};
    for manager in ["Polka", "Greedy", "Online-Dynamic", "ATS"] {
        const THREADS: usize = 3;
        let built = build_manager(manager, THREADS, 8, 9).expect(manager);
        let stm = Stm::with_dispatch(built.cm.clone(), THREADS);
        let set = Arc::new(TxHashSet::new(16));
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let ctx = stm.thread(t);
                let set = Arc::clone(&set);
                s.spawn(move || {
                    let base = (t as i64) * 500;
                    for k in 0..40 {
                        ctx.atomic(|tx| set.insert(tx, base + k).map(|_| ()));
                    }
                    for k in (0..40).step_by(4) {
                        ctx.atomic(|tx| set.remove(tx, base + k).map(|_| ()));
                    }
                });
            }
        });
        built.cancel();
        let mut expect = Vec::new();
        for t in 0..THREADS as i64 {
            for k in 0..40 {
                if k % 4 != 0 {
                    expect.push(t * 500 + k);
                }
            }
        }
        expect.sort_unstable();
        assert_eq!(set.snapshot_keys(), expect, "diverged under {manager}");
        set.map().check_invariants();
    }
}

#[test]
fn genome_assembly_under_comparison_managers() {
    use windowtm::workloads::Genome;
    for manager in ["Greedy", "Polka", "RandomizedRounds"] {
        let g = Genome::new(300, 2, 31);
        let cm = windowtm::managers::make_manager(manager, 3).unwrap();
        let stm = Stm::new(cm, 3);
        g.run(&stm);
        g.verify_chain(&stm);
    }
}
