//! Integration tests for the workload registry and the declarative
//! experiment engine: every registered workload runs end-to-end, the
//! engine's checkpoint file round-trips through its committed schema, and
//! named runs cover the workloads the harness used to orphan.

use std::time::Duration;

use windowtm::harness::experiment::{Executor, ExperimentSpec};
use windowtm::harness::json::{validate_results, Json};
use windowtm::harness::runner::{run_one, RunSpec, StopRule};
use windowtm::stm::{CmDispatch, Stm};
use windowtm::workloads::{build_workload, workload_names, WorkloadParams};

/// Every registered workload completes a two-thread smoke cell on a bare
/// `AbortSelf` engine: construction, prepopulation, and both worker
/// streams run without panicking or deadlocking, independent of any
/// contention manager's behaviour.
#[test]
fn every_registered_workload_survives_two_thread_abortself_smoke() {
    const THREADS: usize = 2;
    const STEPS: usize = 60;
    for name in workload_names() {
        let params = WorkloadParams {
            key_range: 0, // registry default
            update_pct: 100,
            seed: 0x51_0E,
            threads: THREADS,
        };
        let w = build_workload(name, &params).expect(name);
        let stm = Stm::with_dispatch(CmDispatch::AbortSelf, THREADS);
        {
            let prep = Stm::with_dispatch(CmDispatch::AbortSelf, 1);
            w.prepopulate(&prep.thread(0));
        }
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let ctx = stm.thread(t);
                let w = &w;
                s.spawn(move || {
                    let mut stream = w.stream(t);
                    for _ in 0..STEPS {
                        stream.step(&ctx);
                    }
                });
            }
        });
        let stats = stm.aggregate();
        assert!(
            stats.commits >= (THREADS * STEPS) as u64,
            "{name}: {} commits",
            stats.commits
        );
    }
}

/// The orphaned workloads are first-class now: a named run of each
/// produces a report table *and* a schema-valid `results.json`, through
/// the same engine the paper figures use.
#[test]
fn extension_workloads_complete_named_smoke_runs_with_results_json() {
    let dir = std::env::temp_dir().join(format!("wtm_named_run_test_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut exec = Executor::new(&dir);
    for workload in ["Genome", "KMeans", "HashMap"] {
        let mut spec = ExperimentSpec::new(
            &format!("run-{workload}"),
            StopRule::Timed(Duration::from_millis(50)),
        );
        spec.workloads = vec![workload.to_string()];
        spec.managers = vec!["Polka".into(), "Online-Dynamic".into()];
        spec.threads = vec![2];
        spec.window_n = 8;
        let results = exec.run(&spec);
        assert_eq!(results.len(), 2, "{workload}");
        for r in &results {
            assert!(
                r.metric("throughput").mean > 0.0,
                "{workload}/{}: no throughput",
                r.manager
            );
        }
    }
    let text = std::fs::read_to_string(dir.join("results.json")).unwrap();
    let doc = Json::parse(&text).unwrap();
    validate_results(&doc).expect("results.json matches the committed schema");
    assert_eq!(
        doc.get("cells").unwrap().as_obj().unwrap().len(),
        6,
        "three workloads × two managers checkpointed"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Parameterized manager names flow through a full cell: the ablation
/// syntax is a first-class manager id everywhere, not a special case.
#[test]
fn parameterized_window_manager_completes_a_cell() {
    let mut spec = RunSpec::new(
        "RBTree",
        "Online-Dynamic@phi=2,c=4,n=8",
        2,
        StopRule::Timed(Duration::from_millis(50)),
    );
    spec.key_range = 32;
    let out = run_one(&spec);
    assert!(out.stats.commits > 0);
    assert!(!out.truncated);
}
