//! `SmallRng`: xoshiro256++, the small fast generator family the real
//! `rand` crate uses on 64-bit platforms.

use crate::{Rng, SeedableRng};

/// A small, fast, non-cryptographic PRNG (xoshiro256++ 1.0).
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl Rng for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // The all-zero state is the one fixed point of xoshiro; nudge it.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        SmallRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_xoshiro_sequence() {
        // Reference vector: state {1,2,3,4} per the xoshiro256++ authors.
        let mut rng = SmallRng { s: [1, 2, 3, 4] };
        let got: Vec<u64> = (0..2).map(|_| rng.next_u64()).collect();
        assert_eq!(got, vec![41943041, 58720359]);
    }

    #[test]
    fn zero_seed_does_not_stick() {
        let mut rng = SmallRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }
}
