//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides exactly the API the workspace uses: the [`Rng`] extension
//! trait (`random_range`, `random_bool`, `random`), [`SeedableRng`] with
//! `seed_from_u64`, and [`rngs::SmallRng`] — here a xoshiro256++
//! generator (the same family real `rand` uses for `SmallRng` on 64-bit
//! targets), seeded through SplitMix64 like `rand_core`'s
//! `seed_from_u64`.
//!
//! Determinism matters more than statistical perfection here: every
//! workload generator and simulator seeds its own `SmallRng`, and
//! experiment reproducibility only requires that the same seed yields the
//! same stream on every run, which this implementation guarantees.

// Vendored stand-in: exempt from the workspace's clippy gate.
#![allow(clippy::all)]

pub mod rngs {
    pub use crate::small::SmallRng;
}

mod small;

/// A source of random 64-bit words plus the derived sampling helpers.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    #[inline]
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        unit_f64(self.next_u64()) < p
    }

    /// Sample a value of type `T` (uniform over its range; `f64`/`f32`
    /// sample from `[0, 1)`).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable by [`Rng::random`].
pub trait Standard: Sized {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Map 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased sample from `[0, span)` via Lemire-style rejection on the
/// widened multiply.
#[inline]
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection threshold: values below `lim` would be over-represented.
    let lim = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(span as u128);
        if (m as u64) >= lim {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in random_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in random_range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type (byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with SplitMix64 (matches
    /// `rand_core`'s provided method, so seed streams are stable).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: i64 = rng.random_range(-5..7);
            assert!((-5..7).contains(&x));
            let y: u32 = rng.random_range(1..=3);
            assert!((1..=3).contains(&y));
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let g: f64 = rng.random_range(-2.0..=2.0);
            assert!((-2.0..=2.0).contains(&g));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_400..3_600).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn standard_samples() {
        let mut rng = SmallRng::seed_from_u64(9);
        let f: f64 = rng.random();
        assert!((0.0..1.0).contains(&f));
        let _: bool = rng.random();
        let _: u8 = rng.random();
    }
}
