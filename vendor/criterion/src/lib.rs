//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of criterion's API the workspace's benches use —
//! [`Criterion::benchmark_group`], group knobs (`sample_size`,
//! `warm_up_time`, `measurement_time`), [`Bencher::iter`] /
//! [`Bencher::iter_custom`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a simple
//! wall-clock sampler instead of criterion's statistical machinery.
//!
//! Reporting: one line per benchmark (`group/id  mean … min … (N
//! samples)`), and when the `BENCH_JSON` environment variable names a
//! file, one JSON object per line is appended to it:
//! `{"group":…,"bench":…,"mean_ns":…,"min_ns":…,"samples":…}` — which is
//! how `BENCH_*.json` baselines in this repo are produced.

// Vendored stand-in: exempt from the workspace's clippy gate.
#![allow(clippy::all)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirror of criterion's CLI-config hook; accepted and ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// Identifier `function_name/parameter` for one benchmark in a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        BenchmarkId { id: s.clone() }
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total target measurement duration (split across samples).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            mode: Mode::Calibrate,
            iters: 1,
            measured: Duration::ZERO,
        };

        // Calibration: find an iteration count that takes roughly
        // `measurement_time / sample_size` per sample.
        let per_sample = self.measurement_time.div_f64(self.sample_size as f64);
        let mut iters: u64 = 1;
        loop {
            b.mode = Mode::Calibrate;
            b.iters = iters;
            b.measured = Duration::ZERO;
            f(&mut b);
            if b.measured >= per_sample.div_f64(8.0).min(Duration::from_millis(20))
                || iters >= 1 << 40
            {
                let per_iter = b.measured.as_secs_f64() / iters as f64;
                if per_iter > 0.0 {
                    let want = (per_sample.as_secs_f64() / per_iter).max(1.0);
                    iters = want.min(1e12) as u64;
                }
                break;
            }
            iters = iters.saturating_mul(4);
        }

        // Warm-up.
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            b.mode = Mode::Calibrate;
            b.iters = iters.min(1000).max(1);
            b.measured = Duration::ZERO;
            f(&mut b);
        }

        // Measurement.
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.mode = Mode::Measure;
            b.iters = iters;
            b.measured = Duration::ZERO;
            f(&mut b);
            samples_ns.push(b.measured.as_nanos() as f64 / iters as f64);
        }
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let min = samples_ns.iter().copied().fold(f64::INFINITY, f64::min);

        println!(
            "bench {:<44} mean {:>12} min {:>12}  ({} samples x {} iters)",
            format!("{}/{}", self.name, id.id),
            fmt_ns(mean),
            fmt_ns(min),
            samples_ns.len(),
            iters
        );
        if let Ok(path) = std::env::var("BENCH_JSON") {
            if !path.is_empty() {
                let line = format!(
                    "{{\"group\":\"{}\",\"bench\":\"{}\",\"mean_ns\":{:.1},\"min_ns\":{:.1},\"samples\":{},\"iters\":{}}}\n",
                    self.name, id.id, mean, min, samples_ns.len(), iters
                );
                let _ = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                    .and_then(|mut fh| fh.write_all(line.as_bytes()));
            }
        }
        self
    }

    /// End the group (report separation only; statistics are per-bench).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

enum Mode {
    Calibrate,
    Measure,
}

/// Timing harness passed to the benchmark closure.
pub struct Bencher {
    mode: Mode,
    iters: u64,
    measured: Duration,
}

impl Bencher {
    /// Time `routine`, running it `iters` times per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let _ = &self.mode; // one code path: timing loop is identical
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.measured = t0.elapsed();
    }

    /// Hand the iteration count to `routine`, which returns the measured
    /// duration itself (excluding per-iteration setup).
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        self.measured = routine(self.iters);
    }
}

/// Define a benchmark-group entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the listed groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("selftest");
            g.sample_size(3)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(10));
            g.bench_function(BenchmarkId::new("count", 1), |b| {
                b.iter(|| {
                    ran += 1;
                    ran
                })
            });
            g.finish();
        }
        assert!(ran > 3, "routine must have run during sampling: {ran}");
    }

    #[test]
    fn iter_custom_receives_iters() {
        let mut c = Criterion::default();
        let mut max_iters = 0u64;
        let mut g = c.benchmark_group("selftest_custom");
        g.sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        g.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                max_iters = max_iters.max(iters);
                // Pretend each iteration took 1µs.
                Duration::from_micros(iters)
            })
        });
        g.finish();
        assert!(max_iters >= 1);
    }
}
