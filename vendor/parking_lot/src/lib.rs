//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *subset* of `parking_lot`'s API it actually uses — a
//! non-poisoning [`Mutex`] with guard-based locking and a [`Condvar`] that
//! waits on a `&mut MutexGuard` — implemented on top of `std::sync`.
//! Semantics match `parking_lot` where the two differ from `std`:
//!
//! * `lock()` returns the guard directly (no `Result`); a panic while a
//!   lock is held does **not** poison it for other threads.
//! * `Condvar::wait` takes `&mut MutexGuard` and re-acquires in place.
//!
//! Performance of `std::sync::Mutex` on Linux (futex-based) is close
//! enough to `parking_lot` for the workloads here; the STM engine's hot
//! path avoids this lock entirely (see `wtm-stm`'s snapshot read path).

// Vendored stand-in: exempt from the workspace's clippy gate.
#![allow(clippy::all)]

use std::sync;

/// A mutual-exclusion primitive. Unlike `std::sync::Mutex` it never
/// poisons: if a holder panics, the next `lock()` simply proceeds.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    #[inline]
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    #[inline]
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }))
    }

    /// Try to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Internally holds an `Option` so [`Condvar::wait`] can move the std
/// guard out and back while re-acquiring; the option is `Some` at every
/// point user code can observe.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside wait")
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True iff the wait ended by timeout rather than notification.
    #[inline]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable for use with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    #[inline]
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Atomically release the guard's mutex and park until notified; the
    /// mutex is re-acquired (in place) before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present outside wait");
        let reacquired = match self.0.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.0 = Some(reacquired);
    }

    /// Like [`wait`](Self::wait) but gives up after `timeout`. Mirrors
    /// `parking_lot::Condvar::wait_for`: the mutex is re-acquired before
    /// returning either way, and the result says whether the wait timed
    /// out (which does *not* preclude a racing notification).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present outside wait");
        let (reacquired, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(reacquired);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one parked waiter.
    #[inline]
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every parked waiter.
    #[inline]
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(5);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1); // would panic on a poisoned std mutex
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut started = m.lock();
            while !*started {
                cv.wait(&mut started);
            }
            true
        });
        std::thread::sleep(Duration::from_millis(10));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(h.join().unwrap());
    }
}
