//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::{Strategy, TestRng};
use rand::Rng;

/// Strategy for `Vec<S::Value>` with a length drawn from `len`.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Generate vectors of `element` values with length in `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.rng().random_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with up to `size` elements.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generate sets of `element` values; `size` bounds the number of
/// *insertions*, so duplicates may make the set smaller (same behavior
/// real proptest allows for the lower bound of distinct elements).
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    assert!(size.start < size.end, "empty size range");
    BTreeSetStrategy { element, size }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let n = rng.rng().random_range(self.size.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_length_and_bounds() {
        let s = vec(0i64..50, 3..9);
        let mut rng = TestRng::for_test("vec_respects_length_and_bounds");
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((3..9).contains(&v.len()));
            assert!(v.iter().all(|x| (0..50).contains(x)));
        }
    }

    #[test]
    fn btree_set_bounded_and_sorted() {
        let s = btree_set(0i64..64, 0..24);
        let mut rng = TestRng::for_test("btree_set_bounded_and_sorted");
        for _ in 0..500 {
            let set = s.generate(&mut rng);
            assert!(set.len() < 24);
            assert!(set.iter().all(|x| (0..64).contains(x)));
        }
    }

    #[test]
    fn vec_of_tuples_composes() {
        let s = vec((0..3u8, 0..32i64, 0..1000u64), 1..10);
        let mut rng = TestRng::for_test("vec_of_tuples_composes");
        let v = s.generate(&mut rng);
        assert!(!v.is_empty());
    }
}
