//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, numeric-range
//! and tuple strategies, [`collection::vec`] / [`collection::btree_set`],
//! [`ProptestConfig::with_cases`], and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted for an
//! offline build:
//!
//! * **No shrinking.** A failing case reports the generated inputs via
//!   the panic message (cases are `Debug`-printed by the assertion that
//!   fails) but is not minimized.
//! * **Deterministic seeding.** Each test function derives its RNG seed
//!   from its own name, so failures reproduce exactly on every run —
//!   there is no `PROPTEST_CASES`/persistence machinery.

// Vendored stand-in: exempt from the workspace's clippy gate.
#![allow(clippy::all)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies. Newtype so the public API does not
/// promise a specific generator.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic RNG for the named test (FNV-1a over the name).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Access the underlying rand generator.
    #[inline]
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.0
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing the same value every time.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a property test (no shrinking, so this is `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests. Supports the common form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0..10u32, v in proptest::collection::vec(0..5i64, 1..20)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // Internal munching arms first: the public catch-all below would
    // otherwise swallow `@funcs` recursions and loop to the recursion
    // limit (macro arms are tried strictly in order).
    (@funcs ($cfg:expr)) => {};
    (@funcs ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let strategies = ( $($strat,)+ );
            for _case in 0..config.cases {
                let ( $($arg,)+ ) = $crate::generate_tuple(&strategies, &mut rng);
                $body
            }
        }
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Generate a value tuple from a tuple of strategies (macro support).
pub fn generate_tuple<T: StrategyTuple>(strats: &T, rng: &mut TestRng) -> T::Values {
    strats.generate_all(rng)
}

/// Tuples of strategies, generated element-wise (macro support).
pub trait StrategyTuple {
    type Values;
    fn generate_all(&self, rng: &mut TestRng) -> Self::Values;
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident),+)),+) => {$(
        impl<$($name: Strategy),+> StrategyTuple for ($($name,)+) {
            type Values = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate_all(&self, rng: &mut TestRng) -> Self::Values {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
impl_strategy_tuple!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::for_test("ranges_generate_in_bounds");
        for _ in 0..1000 {
            let x = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let f = (0.0f64..2.5).generate(&mut rng);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::for_test("prop_map_applies");
        let s = (0u8..3).prop_map(|v| v as i32 * 10);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!([0, 10, 20].contains(&v));
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::for_test("tuples_generate_componentwise");
        let (a, b, c) = (0u8..3, 10i64..20, 0.0f64..1.0).generate(&mut rng);
        assert!(a < 3);
        assert!((10..20).contains(&b));
        assert!((0.0..1.0).contains(&c));
    }

    #[test]
    fn seeding_is_deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("x");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("x");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::for_test("y");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_single_arg(x in 0u32..100) {
            prop_assert!(x < 100);
        }

        #[test]
        fn macro_multi_arg(x in 0u32..10, y in 5i64..9, f in 0.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((5..9).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert_eq!(x + 1, x + 1);
            prop_assert_ne!(y, 100);
        }
    }
}
