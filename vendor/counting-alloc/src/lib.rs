//! A [`GlobalAlloc`] wrapper around the system allocator that counts
//! allocations and deallocations **per thread**.
//!
//! Intended for allocation-regression tests: install [`CountingAlloc`] as
//! the test binary's `#[global_allocator]`, call [`reset`] after a warmup
//! phase, run the code under test, and assert [`allocs`]/[`deallocs`] are
//! zero. Counters are thread-local, so allocations made by other test
//! threads (the libtest harness runs tests concurrently) never pollute
//! the measurement.
//!
//! The counters are const-initialised `Cell<u64>`s: reading or bumping
//! them never allocates and never registers a TLS destructor, so the
//! bookkeeping itself is invisible to the thing being measured.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static DEALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// System-allocator wrapper that bumps per-thread counters on every
/// allocator call. `realloc` counts as one allocation *and* one
/// deallocation (it may move the block).
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get().wrapping_add(1)));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get().wrapping_add(1)));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.with(|c| c.set(c.get().wrapping_add(1)));
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get().wrapping_add(1)));
        DEALLOCS.with(|c| c.set(c.get().wrapping_add(1)));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Zero this thread's counters.
pub fn reset() {
    ALLOCS.with(|c| c.set(0));
    DEALLOCS.with(|c| c.set(0));
}

/// Allocations made by this thread since the last [`reset`].
pub fn allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

/// Deallocations made by this thread since the last [`reset`].
pub fn deallocs() -> u64 {
    DEALLOCS.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    // NOTE: these tests exercise the counting logic only; they do not
    // install CountingAlloc as the global allocator (a crate's own unit
    // tests share the harness allocator). The wtm-stm integration test
    // `write_path_allocs.rs` does the real end-to-end installation.
    use super::*;

    #[test]
    fn counters_start_zero_and_reset() {
        reset();
        assert_eq!(allocs(), 0);
        assert_eq!(deallocs(), 0);
        ALLOCS.with(|c| c.set(3));
        assert_eq!(allocs(), 3);
        reset();
        assert_eq!(allocs(), 0);
    }
}
