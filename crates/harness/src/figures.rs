//! Figs. 2–5 as declarative experiment specs.
//!
//! Each figure is now ~20 lines: a grid declaration handed to the shared
//! [`Executor`] (which owns repetition, aggregation, progress, and
//! resume) plus a projection of the returned cells into report tables.

use wtm_workloads::{paper_workload_names, ContentionLevel};

use crate::experiment::{CellResult, Executor, ExperimentSpec};
use crate::managers::comparison_manager_names;
use crate::preset::Preset;
use crate::report::Table;
use crate::runner::StopRule;

fn base_spec(id: &str, preset: &Preset, managers: &[&str]) -> ExperimentSpec {
    let mut s = ExperimentSpec::new(id, StopRule::Timed(preset.duration));
    s.workloads = paper_workload_names()
        .iter()
        .map(|w| w.to_string())
        .collect();
    s.managers = managers.iter().map(|m| m.to_string()).collect();
    s.threads = preset.thread_counts.clone();
    s.reps = preset.reps;
    s.window_n = preset.window_n;
    s.engine = preset.engine;
    s.base_seed = preset.seed;
    s
}

/// Find one cell in a spec's results.
fn cell<'a>(
    results: &'a [CellResult],
    workload: &str,
    manager: &str,
    threads: usize,
    update_pct: u32,
) -> Option<&'a CellResult> {
    results.iter().find(|r| {
        r.workload == workload
            && r.manager == manager
            && r.threads == threads
            && r.update_pct == update_pct
    })
}

/// Project a thread-sweep spec into one table per workload: rows =
/// thread counts, columns = managers, cells = `metric` mean ± sd.
fn sweep_tables(
    spec: &ExperimentSpec,
    results: &[CellResult],
    metric: &str,
    title: impl Fn(&str) -> String,
) -> Vec<Table> {
    let mut tables = Vec::new();
    for workload in &spec.workloads {
        let mut t = Table::new(title(workload), "threads", spec.managers.clone());
        for &m in &spec.threads {
            let (means, sds): (Vec<f64>, Vec<f64>) = spec
                .managers
                .iter()
                .map(|mgr| {
                    let a = cell(results, workload, mgr, m, 100)
                        .map(|r| r.metric(metric))
                        .unwrap_or(crate::experiment::Agg {
                            mean: f64::NAN,
                            sd: f64::NAN,
                        });
                    (a.mean, a.sd)
                })
                .unzip();
            t.push_row_sd(m.to_string(), means, sds);
        }
        tables.push(t);
    }
    tables
}

/// Fig. 2 — throughput (commits/s) of the five window variants across the
/// thread sweep, one table per benchmark.
pub fn fig2(preset: &Preset, exec: &mut Executor) -> Vec<Table> {
    let spec = base_spec("fig2", preset, &wtm_window::window_names());
    let results = exec.run(&spec);
    sweep_tables(&spec, &results, "throughput", |w| {
        format!("Fig 2: window-variant throughput — {w}")
    })
}

/// Figs. 3 and 4 — the best window variants vs Polka/Greedy/Priority.
/// Both figures come from the *same* runs (the paper measures throughput
/// and aborts-per-commit of one experiment), so this driver returns both:
/// `(fig3 throughput tables, fig4 aborts-per-commit tables)`.
pub fn fig34(preset: &Preset, exec: &mut Executor) -> (Vec<Table>, Vec<Table>) {
    let spec = base_spec("fig34", preset, &comparison_manager_names());
    let results = exec.run(&spec);
    let f3 = sweep_tables(&spec, &results, "throughput", |w| {
        format!("Fig 3: window vs classic throughput — {w}")
    });
    let f4 = sweep_tables(&spec, &results, "aborts_per_commit", |w| {
        format!("Fig 4: aborts per commit — {w}")
    });
    (f3, f4)
}

/// Fig. 5 — total time (seconds) to commit the transaction budget at 32
/// threads under Low/Medium/High contention, one table per benchmark.
pub fn fig5(preset: &Preset, exec: &mut Executor) -> Vec<Table> {
    let mut spec = base_spec("fig5", preset, &comparison_manager_names());
    spec.stop = StopRule::Budget(preset.budget);
    spec.threads = vec![preset.fig5_threads];
    spec.update_pcts = ContentionLevel::all()
        .iter()
        .map(|l| l.update_pct())
        .collect();
    let results = exec.run(&spec);

    let mut tables = Vec::new();
    for workload in &spec.workloads {
        let mut t = Table::new(
            format!(
                "Fig 5: seconds to commit {} txns ({} threads) — {workload}",
                preset.budget, preset.fig5_threads
            ),
            "contention",
            spec.managers.clone(),
        );
        for level in ContentionLevel::all() {
            let mut row_truncated = false;
            let (means, sds): (Vec<f64>, Vec<f64>) = spec
                .managers
                .iter()
                .map(|mgr| {
                    let r = cell(
                        results.as_slice(),
                        workload,
                        mgr,
                        preset.fig5_threads,
                        level.update_pct(),
                    );
                    if let Some(r) = r {
                        row_truncated |= r.truncated;
                        let a = r.metric("total_time_s");
                        (a.mean, a.sd)
                    } else {
                        (f64::NAN, f64::NAN)
                    }
                })
                .unzip();
            // A truncated cell's time is a lower bound, not a measurement;
            // the row label says so instead of silently mixing the two.
            let label = if row_truncated {
                format!("{} (truncated)", level.name())
            } else {
                level.name().to_string()
            };
            t.push_row_sd(label, means, sds);
        }
        tables.push(t);
    }
    tables
}

/// Quick textual shape-check of Fig. 3-style tables: for each benchmark,
/// the throughput ratio of the best window variant over each classic
/// manager at the largest thread count. These are the numbers §III-B
/// quotes ("2–4 fold in List", "comparable to Polka", …).
pub fn fig3_ratios(tables: &[Table]) -> Table {
    let mut out = Table::new(
        "Fig 3 shape check: best-window / classic throughput at max threads",
        "benchmark",
        vec!["vs Polka".into(), "vs Greedy".into(), "vs Priority".into()],
    );
    for t in tables {
        let last = t.rows.len().saturating_sub(1);
        let window_best = ["Online-Dynamic", "Adaptive-Improved-Dynamic"]
            .iter()
            .filter_map(|m| t.get(last, m))
            .fold(f64::NAN, f64::max);
        let ratio = |name: &str| {
            let v = t.get(last, name).unwrap_or(f64::NAN);
            if v > 0.0 {
                window_best / v
            } else {
                f64::NAN
            }
        };
        let bench = t.title.rsplit("— ").next().unwrap_or(&t.title).to_string();
        out.push_row(
            bench,
            vec![ratio("Polka"), ratio("Greedy"), ratio("Priority")],
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_exec(tag: &str) -> (std::path::PathBuf, Executor) {
        let dir = std::env::temp_dir().join(format!("wtm_fig_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let exec = Executor::new(&dir);
        (dir, exec)
    }

    #[test]
    fn fig2_smoke_produces_full_tables() {
        let p = Preset::smoke();
        let (dir, mut exec) = temp_exec("fig2");
        let tables = fig2(&p, &mut exec);
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert_eq!(t.columns.len(), 5, "five window variants");
            assert_eq!(t.rows.len(), p.thread_counts.len());
            assert_eq!(t.sds.len(), t.rows.len(), "variance column present");
            assert!(
                t.cells.iter().flatten().all(|v| *v >= 0.0),
                "throughput is non-negative"
            );
            assert!(
                t.cells.iter().flatten().any(|v| *v > 0.0),
                "something must commit: {}",
                t.render()
            );
        }
        // The engine checkpointed every cell.
        assert!(dir.join("results.json").is_file());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fig34_returns_paired_tables() {
        let mut p = Preset::smoke();
        p.thread_counts = vec![2];
        let (dir, mut exec) = temp_exec("fig34");
        let (f3, f4) = fig34(&p, &mut exec);
        assert_eq!(f3.len(), 4);
        assert_eq!(f4.len(), 4);
        assert!(f3[0].title.contains("Fig 3"));
        assert!(f4[0].title.contains("Fig 4"));
        let ratios = fig3_ratios(&f3);
        assert_eq!(ratios.rows.len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fig3_ratios_surface_missing_baselines_as_na() {
        // Synthetic Fig 3 table with a zero Polka column and no Priority
        // column at all: those ratios are undefined and must surface as
        // "n/a" in reports, never as NaN.
        let mut t = Table::new(
            "Fig 3: synthetic — List",
            "threads",
            vec!["Online-Dynamic".into(), "Polka".into(), "Greedy".into()],
        );
        t.push_row("8", vec![1000.0, 0.0, 500.0]);
        let ratios = fig3_ratios(&[t]);
        assert_eq!(ratios.get(0, "vs Greedy"), Some(2.0));
        assert!(ratios.get(0, "vs Polka").unwrap().is_nan());
        assert!(ratios.get(0, "vs Priority").unwrap().is_nan());
        let rendered = ratios.render();
        assert!(!rendered.contains("NaN"), "{rendered}");
        assert!(rendered.contains("n/a"), "{rendered}");
        let csv = ratios.to_csv();
        assert!(!csv.contains("NaN"), "{csv}");
    }

    #[test]
    fn fig5_smoke_produces_times() {
        let mut p = Preset::smoke();
        p.budget = 80;
        let (dir, mut exec) = temp_exec("fig5");
        let tables = fig5(&p, &mut exec);
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert_eq!(t.rows, vec!["Low", "Medium", "High"]);
            assert!(t.cells.iter().flatten().all(|v| *v > 0.0));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
