//! Drivers for Figs. 2–5.

use wtm_workloads::{Benchmark, ContentionLevel};

use crate::managers::comparison_manager_names;
use crate::preset::Preset;
use crate::report::Table;
use crate::runner::{run_averaged, RunSpec, StopRule};

fn progress(msg: &str) {
    eprintln!("[windowtm] {msg}");
}

/// Fig. 2 — throughput (commits/s) of the five window variants across the
/// thread sweep, one table per benchmark.
pub fn fig2(preset: &Preset) -> Vec<Table> {
    let variants = wtm_window::window_names();
    sweep_throughput(
        preset,
        &variants,
        "Fig 2",
        "window-variant throughput",
        false,
    )
    .0
}

/// Figs. 3 and 4 — the best window variants vs Polka/Greedy/Priority.
/// Both figures come from the *same* runs (the paper measures throughput
/// and aborts-per-commit of one experiment), so this driver returns both:
/// `(fig3 throughput tables, fig4 aborts-per-commit tables)`.
pub fn fig34(preset: &Preset) -> (Vec<Table>, Vec<Table>) {
    let managers = comparison_manager_names();
    sweep_throughput(
        preset,
        &managers,
        "Fig 3",
        "window vs classic throughput",
        true,
    )
}

/// Shared thread-sweep driver. Returns throughput tables and (when
/// `collect_aborts`) aborts-per-commit tables titled Fig 4.
fn sweep_throughput(
    preset: &Preset,
    managers: &[&str],
    fig: &str,
    what: &str,
    collect_aborts: bool,
) -> (Vec<Table>, Vec<Table>) {
    let mut thr_tables = Vec::new();
    let mut apc_tables = Vec::new();
    for bench in Benchmark::all() {
        let cols: Vec<String> = managers.iter().map(|m| m.to_string()).collect();
        let mut thr = Table::new(
            format!("{fig}: {what} — {}", bench.name()),
            "threads",
            cols.clone(),
        );
        let mut apc = Table::new(
            format!("Fig 4: aborts per commit — {}", bench.name()),
            "threads",
            cols,
        );
        for &m in &preset.thread_counts {
            let mut thr_row = Vec::with_capacity(managers.len());
            let mut apc_row = Vec::with_capacity(managers.len());
            for manager in managers {
                progress(&format!("{fig} {} / {manager} / M={m}", bench.name()));
                let mut spec = RunSpec::new(*bench, manager, m, StopRule::Timed(preset.duration));
                spec.window_n = preset.window_n;
                let out = run_averaged(&spec, preset.reps);
                thr_row.push(out.stats.throughput());
                apc_row.push(out.stats.aborts_per_commit());
            }
            thr.push_row(m.to_string(), thr_row);
            apc.push_row(m.to_string(), apc_row);
        }
        thr_tables.push(thr);
        if collect_aborts {
            apc_tables.push(apc);
        }
    }
    (thr_tables, apc_tables)
}

/// Fig. 5 — total time (seconds) to commit the transaction budget at 32
/// threads under Low/Medium/High contention, one table per benchmark.
pub fn fig5(preset: &Preset) -> Vec<Table> {
    let managers = comparison_manager_names();
    let mut tables = Vec::new();
    for bench in Benchmark::all() {
        let cols: Vec<String> = managers.iter().map(|m| m.to_string()).collect();
        let mut t = Table::new(
            format!(
                "Fig 5: seconds to commit {} txns ({} threads) — {}",
                preset.budget,
                preset.fig5_threads,
                bench.name()
            ),
            "contention",
            cols,
        );
        for level in ContentionLevel::all() {
            let mut row = Vec::with_capacity(managers.len());
            let mut row_truncated = false;
            for manager in &managers {
                progress(&format!(
                    "Fig 5 {} / {manager} / {}",
                    bench.name(),
                    level.name()
                ));
                let mut spec = RunSpec::new(
                    *bench,
                    manager,
                    preset.fig5_threads,
                    StopRule::Budget(preset.budget),
                );
                spec.update_pct = level.update_pct();
                spec.window_n = preset.window_n;
                let out = run_averaged(&spec, preset.reps);
                if out.truncated {
                    row_truncated = true;
                }
                row.push(out.total_time.as_secs_f64());
            }
            // A truncated cell's time is a lower bound, not a measurement;
            // the row label says so instead of silently mixing the two.
            let label = if row_truncated {
                format!("{} (truncated)", level.name())
            } else {
                level.name().to_string()
            };
            t.push_row(label, row);
        }
        tables.push(t);
    }
    tables
}

/// Quick textual shape-check of Fig. 3-style tables: for each benchmark,
/// the throughput ratio of the best window variant over each classic
/// manager at the largest thread count. These are the numbers §III-B
/// quotes ("2–4 fold in List", "comparable to Polka", …).
pub fn fig3_ratios(tables: &[Table]) -> Table {
    let mut out = Table::new(
        "Fig 3 shape check: best-window / classic throughput at max threads",
        "benchmark",
        vec!["vs Polka".into(), "vs Greedy".into(), "vs Priority".into()],
    );
    for t in tables {
        let last = t.rows.len().saturating_sub(1);
        let window_best = ["Online-Dynamic", "Adaptive-Improved-Dynamic"]
            .iter()
            .filter_map(|m| t.get(last, m))
            .fold(f64::NAN, f64::max);
        let ratio = |name: &str| {
            let v = t.get(last, name).unwrap_or(f64::NAN);
            if v > 0.0 {
                window_best / v
            } else {
                f64::NAN
            }
        };
        let bench = t.title.rsplit("— ").next().unwrap_or(&t.title).to_string();
        out.push_row(
            bench,
            vec![ratio("Polka"), ratio("Greedy"), ratio("Priority")],
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_smoke_produces_full_tables() {
        let p = Preset::smoke();
        let tables = fig2(&p);
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert_eq!(t.columns.len(), 5, "five window variants");
            assert_eq!(t.rows.len(), p.thread_counts.len());
            assert!(
                t.cells.iter().flatten().all(|v| *v >= 0.0),
                "throughput is non-negative"
            );
            assert!(
                t.cells.iter().flatten().any(|v| *v > 0.0),
                "something must commit: {}",
                t.render()
            );
        }
    }

    #[test]
    fn fig34_returns_paired_tables() {
        let mut p = Preset::smoke();
        p.thread_counts = vec![2];
        let (f3, f4) = fig34(&p);
        assert_eq!(f3.len(), 4);
        assert_eq!(f4.len(), 4);
        assert!(f3[0].title.contains("Fig 3"));
        assert!(f4[0].title.contains("Fig 4"));
        let ratios = fig3_ratios(&f3);
        assert_eq!(ratios.rows.len(), 4);
    }

    #[test]
    fn fig3_ratios_surface_missing_baselines_as_na() {
        // Synthetic Fig 3 table with a zero Polka column and no Priority
        // column at all: those ratios are undefined and must surface as
        // "n/a" in reports, never as NaN.
        let mut t = Table::new(
            "Fig 3: synthetic — List",
            "threads",
            vec!["Online-Dynamic".into(), "Polka".into(), "Greedy".into()],
        );
        t.push_row("8", vec![1000.0, 0.0, 500.0]);
        let ratios = fig3_ratios(&[t]);
        assert_eq!(ratios.get(0, "vs Greedy"), Some(2.0));
        assert!(ratios.get(0, "vs Polka").unwrap().is_nan());
        assert!(ratios.get(0, "vs Priority").unwrap().is_nan());
        let rendered = ratios.render();
        assert!(!rendered.contains("NaN"), "{rendered}");
        assert!(rendered.contains("n/a"), "{rendered}");
        let csv = ratios.to_csv();
        assert!(!csv.contains("NaN"), "{csv}");
    }

    #[test]
    fn fig5_smoke_produces_times() {
        let mut p = Preset::smoke();
        p.budget = 80;
        let tables = fig5(&p);
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert_eq!(t.rows, vec!["Low", "Medium", "High"]);
            assert!(t.cells.iter().flatten().all(|v| *v > 0.0));
        }
    }
}
