//! The declarative experiment engine.
//!
//! A figure used to be a driver function owning four nested loops
//! (benchmark × manager × threads × reps) plus its own averaging and
//! progress printing; every new study re-implemented the stack. Now a
//! study is an [`ExperimentSpec`] — a value describing the grid — and one
//! shared [`Executor`] owns everything the loops used to: deterministic
//! per-cell seeding, repetition, mean ± stddev aggregation, progress/ETA
//! on stderr, and checkpoint/resume through the machine-readable
//! `results.json` it maintains next to the CSV reports.
//!
//! Resume: every cell's identity (workload, manager, threads, contention,
//! stop rule, reps, seeds, …) is folded into a key string; `results.json`
//! maps keys to aggregated results. Re-running a suite with the same
//! `--out` directory skips every cell whose key is already present, so an
//! interrupted `windowtm all --paper` continues where it stopped — and a
//! completed one is a no-op that rewrites `results.json` byte-identically.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use wtm_stm::EngineKind;

use crate::json::{Json, RESULTS_SCHEMA_VERSION};
use crate::runner::{run_one, RunOutcome, RunSpec, StopRule};

/// Simulator sweep axes: when set on an [`ExperimentSpec`], the grid is
/// `scenarios × nets × threads × managers` over the discrete-event
/// simulator instead of the STM runner. Scenario specs and scheduler
/// names resolve through the `wtm_sim` registries; `nets` are
/// [`wtm_sim::NetSpec`] strings (`"zero"`, `"fixed:4"`, `"jitter:…"`)
/// and are part of cell identity.
#[derive(Debug, Clone)]
pub struct SimAxes {
    pub scenarios: Vec<String>,
    pub nets: Vec<String>,
    /// Transaction duration τ in steps.
    pub tau: u32,
}

/// Per-cell simulator parameters (present iff the cell is a sim cell).
#[derive(Debug, Clone)]
pub struct SimCellParams {
    pub tau: u32,
    /// Canonical network spec, folded into the cell key.
    pub net: String,
}

/// A declarative experiment: the full factorial grid of
/// `workloads × managers × threads × update_pcts`, each cell run `reps`
/// times and aggregated.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Short id used in progress lines (e.g. `"fig2"`).
    pub id: String,
    /// Workload names (registry keys, see [`wtm_workloads::workload_names`]).
    pub workloads: Vec<String>,
    /// Manager names, optionally parameterized (`Online-Dynamic@phi=2`).
    pub managers: Vec<String>,
    /// Thread sweep `M`.
    pub threads: Vec<usize>,
    /// Contention sweep (percentage of updating operations).
    pub update_pcts: Vec<u32>,
    pub stop: StopRule,
    /// Repetitions aggregated per cell.
    pub reps: usize,
    /// `N`, transactions per thread per window.
    pub window_n: usize,
    /// Workload size knob; `0` = the registry's per-workload default.
    pub key_range: i64,
    /// Which STM engine executes every cell of the grid.
    pub engine: EngineKind,
    /// Base seed; per-cell seeds are derived from it and the cell
    /// identity (see [`Cell::seed`]).
    pub base_seed: u64,
    pub safety_deadline: Duration,
    /// When set, the grid sweeps the discrete-event simulator
    /// (`scenarios × nets × threads × managers`) instead of the STM.
    pub sim: Option<SimAxes>,
}

impl ExperimentSpec {
    /// A grid with the defaults the paper's figures share.
    pub fn new(id: &str, stop: StopRule) -> Self {
        ExperimentSpec {
            id: id.to_string(),
            workloads: Vec::new(),
            managers: Vec::new(),
            threads: vec![1],
            update_pcts: vec![100],
            stop,
            reps: 1,
            window_n: 50,
            key_range: 0,
            engine: EngineKind::Eager,
            base_seed: 0xBEEF,
            safety_deadline: Duration::from_secs(60),
            sim: None,
        }
    }

    /// Expand the grid into cells, workload-major then contention, thread
    /// count, manager — the order the figure tables are filled in. Sim
    /// grids expand scenario-major then network, thread count, scheduler;
    /// the scenario spec rides in `workload` and the scheduler in
    /// `manager`, so the reporting layer works unchanged.
    pub fn cells(&self) -> Vec<Cell> {
        if let Some(sim) = &self.sim {
            let mut out = Vec::new();
            for scenario in &sim.scenarios {
                for net in &sim.nets {
                    for &threads in &self.threads {
                        for manager in &self.managers {
                            out.push(Cell {
                                workload: scenario.clone(),
                                manager: manager.clone(),
                                threads,
                                update_pct: 0,
                                stop: self.stop,
                                reps: self.reps,
                                window_n: self.window_n,
                                key_range: 0,
                                engine: self.engine,
                                base_seed: self.base_seed,
                                safety_deadline: self.safety_deadline,
                                sim: Some(SimCellParams {
                                    tau: sim.tau,
                                    net: net.clone(),
                                }),
                            });
                        }
                    }
                }
            }
            return out;
        }
        let mut out =
            Vec::with_capacity(self.workloads.len() * self.managers.len() * self.threads.len());
        for workload in &self.workloads {
            for &update_pct in &self.update_pcts {
                for &threads in &self.threads {
                    for manager in &self.managers {
                        out.push(Cell {
                            workload: workload.clone(),
                            manager: manager.clone(),
                            threads,
                            update_pct,
                            stop: self.stop,
                            reps: self.reps,
                            window_n: self.window_n,
                            key_range: if self.key_range > 0 {
                                self.key_range
                            } else {
                                wtm_workloads::default_key_range(workload).unwrap_or(0)
                            },
                            engine: self.engine,
                            base_seed: self.base_seed,
                            safety_deadline: self.safety_deadline,
                            sim: None,
                        });
                    }
                }
            }
        }
        out
    }
}

/// One point of an [`ExperimentSpec`] grid, fully resolved.
#[derive(Debug, Clone)]
pub struct Cell {
    pub workload: String,
    pub manager: String,
    pub threads: usize,
    pub update_pct: u32,
    pub stop: StopRule,
    pub reps: usize,
    pub window_n: usize,
    pub key_range: i64,
    pub engine: EngineKind,
    pub base_seed: u64,
    pub safety_deadline: Duration,
    /// Simulator parameters; `Some` iff this is a sim cell (then
    /// `workload` is the scenario spec and `manager` the scheduler).
    pub sim: Option<SimCellParams>,
}

fn stop_key(stop: StopRule) -> String {
    match stop {
        StopRule::Timed(d) => format!("timed:{}", d.as_secs_f64()),
        StopRule::Budget(b) => format!("budget:{b}"),
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Cell {
    /// The checkpoint identity: every parameter that affects the run is
    /// folded in, so a preset/override change can never alias a cached
    /// result from a different configuration. Sim cells carry the
    /// scenario spec, scheduler, and network model instead of the STM
    /// axes — the network spec is cell identity, so `fixed:1` and
    /// `fixed:4` sweeps of the same scenario never alias.
    pub fn key(&self) -> String {
        if let Some(sim) = &self.sim {
            return format!(
                "v3|sim|sc={}|sched={}|net={}|m={}|n={}|tau={}|reps={}|seed={:#x}",
                self.workload,
                self.manager,
                sim.net,
                self.threads,
                self.window_n,
                sim.tau,
                self.reps,
                self.base_seed,
            );
        }
        format!(
            "v3|wl={}|mgr={}|eng={}|m={}|upd={}|kr={}|n={}|stop={}|reps={}|seed={:#x}",
            self.workload,
            self.manager,
            self.engine,
            self.threads,
            self.update_pct,
            self.key_range,
            self.window_n,
            stop_key(self.stop),
            self.reps,
            self.base_seed,
        )
    }

    /// Deterministic per-cell seed: the FNV-1a hash of the identity key.
    /// Distinct cells get decorrelated streams, and the same cell always
    /// replays the same one (the key already folds in `base_seed`, so
    /// `--seed` shifts every cell).
    pub fn seed(&self) -> u64 {
        fnv1a(&self.key())
    }

    /// The [`RunSpec`] for repetition `rep` of this cell.
    pub fn run_spec(&self, rep: usize) -> RunSpec {
        RunSpec {
            workload: self.workload.clone(),
            manager: self.manager.clone(),
            threads: self.threads,
            stop: self.stop,
            key_range: self.key_range,
            update_pct: self.update_pct,
            window_n: self.window_n,
            engine: self.engine,
            seed: self.seed().wrapping_add(rep as u64 * 0x9E37),
            safety_deadline: self.safety_deadline,
            trace: false,
        }
    }
}

/// Mean and sample standard deviation over a cell's repetitions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Agg {
    pub mean: f64,
    pub sd: f64,
}

/// Aggregate repetition samples; one sample has zero deviation.
pub fn aggregate(values: &[f64]) -> Agg {
    if values.is_empty() {
        return Agg {
            mean: f64::NAN,
            sd: f64::NAN,
        };
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let sd = if values.len() < 2 {
        0.0
    } else {
        (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
    };
    Agg { mean, sd }
}

/// The metric names every cell reports, in serialization order.
pub const METRIC_NAMES: &[&str] = &[
    "throughput",
    "aborts_per_commit",
    "total_time_s",
    "commits",
    "wasted_work",
    "repeat_conflicts_per_kcommit",
    "avg_committed_duration_us",
    "avg_response_time_us",
];

/// The metric names a **sim** cell reports, in serialization order.
/// All in virtual steps/counts — no wall time anywhere.
pub const SIM_METRIC_NAMES: &[&str] = &[
    "makespan",
    "commits",
    "aborts",
    "aborts_per_commit",
    "avg_response_steps",
    "zombie_commits",
    "all_committed",
];

/// Aggregated result of one cell (what `results.json` stores).
#[derive(Debug, Clone)]
pub struct CellResult {
    pub workload: String,
    pub manager: String,
    pub threads: usize,
    pub update_pct: u32,
    pub key_range: i64,
    pub window_n: usize,
    /// Engine name (`"eager"` / `"lazy"`) as it appears in the JSON.
    pub engine: String,
    pub reps: usize,
    /// The derived per-cell seed actually used (hex in the JSON).
    pub seed: u64,
    /// `"timed:<secs>"`, `"budget:<txns>"`, or `"sim"`.
    pub stop: String,
    /// Any repetition hit the safety deadline; aggregates are partial.
    /// For sim cells: any repetition failed to commit its whole window.
    pub truncated: bool,
    /// Canonical network spec for sim cells, absent for STM cells.
    pub net: Option<String>,
    /// `(name, aggregate)` in [`METRIC_NAMES`] (or [`SIM_METRIC_NAMES`])
    /// order.
    pub metrics: Vec<(String, Agg)>,
}

impl CellResult {
    /// Aggregate the repetitions of `cell`.
    pub fn from_outcomes(cell: &Cell, outcomes: &[RunOutcome]) -> Self {
        let series =
            |f: &dyn Fn(&RunOutcome) -> f64| -> Vec<f64> { outcomes.iter().map(f).collect() };
        let metrics: Vec<(String, Agg)> = METRIC_NAMES
            .iter()
            .map(|&name| {
                let values = match name {
                    "throughput" => series(&|o| o.stats.throughput()),
                    "aborts_per_commit" => series(&|o| o.stats.aborts_per_commit()),
                    "total_time_s" => series(&|o| o.total_time.as_secs_f64()),
                    "commits" => series(&|o| o.stats.commits as f64),
                    "wasted_work" => series(&|o| o.stats.wasted_work()),
                    "repeat_conflicts_per_kcommit" => series(&|o| {
                        o.stats.repeat_conflicts as f64 * 1000.0 / o.stats.commits.max(1) as f64
                    }),
                    "avg_committed_duration_us" => {
                        series(&|o| o.stats.avg_committed_duration().as_secs_f64() * 1e6)
                    }
                    "avg_response_time_us" => {
                        series(&|o| o.stats.avg_response_time().as_secs_f64() * 1e6)
                    }
                    _ => unreachable!("unlisted metric {name}"),
                };
                (name.to_string(), aggregate(&values))
            })
            .collect();
        CellResult {
            workload: cell.workload.clone(),
            manager: cell.manager.clone(),
            threads: cell.threads,
            update_pct: cell.update_pct,
            key_range: cell.key_range,
            window_n: cell.window_n,
            engine: cell.engine.name().to_string(),
            reps: outcomes.len(),
            seed: cell.seed(),
            stop: stop_key(cell.stop),
            truncated: outcomes.iter().any(|o| o.truncated),
            net: None,
            metrics,
        }
    }

    /// Aggregate the repetitions of a **sim** cell. `engine` is `"sim"`
    /// and `stop` is `"sim"` (a sim run stops when the window commits or
    /// the internal step bound trips); virtual-time metrics replace the
    /// wall-clock ones.
    pub fn from_sim_outcomes(cell: &Cell, outcomes: &[wtm_sim::SimOutcome]) -> Self {
        let sim = cell.sim.as_ref().expect("sim cell");
        let series = |f: &dyn Fn(&wtm_sim::SimOutcome) -> f64| -> Vec<f64> {
            outcomes.iter().map(f).collect()
        };
        let metrics: Vec<(String, Agg)> = SIM_METRIC_NAMES
            .iter()
            .map(|&name| {
                let values = match name {
                    "makespan" => series(&|o| o.makespan as f64),
                    "commits" => series(&|o| o.commits as f64),
                    "aborts" => series(&|o| o.aborts as f64),
                    "aborts_per_commit" => series(&|o| o.aborts as f64 / o.commits.max(1) as f64),
                    "avg_response_steps" => {
                        series(&|o| o.sum_response as f64 / o.commits.max(1) as f64)
                    }
                    "zombie_commits" => series(&|o| o.zombie_commits as f64),
                    "all_committed" => series(&|o| if o.all_committed { 1.0 } else { 0.0 }),
                    _ => unreachable!("unlisted sim metric {name}"),
                };
                (name.to_string(), aggregate(&values))
            })
            .collect();
        CellResult {
            workload: cell.workload.clone(),
            manager: cell.manager.clone(),
            threads: cell.threads,
            update_pct: cell.update_pct,
            key_range: cell.key_range,
            window_n: cell.window_n,
            engine: "sim".to_string(),
            reps: outcomes.len(),
            seed: cell.seed(),
            stop: "sim".to_string(),
            truncated: outcomes.iter().any(|o| !o.all_committed),
            net: Some(sim.net.clone()),
            metrics,
        }
    }

    /// Metric lookup; `NaN` aggregate when absent.
    pub fn metric(&self, name: &str) -> Agg {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, a)| *a)
            .unwrap_or(Agg {
                mean: f64::NAN,
                sd: f64::NAN,
            })
    }

    fn to_json(&self) -> Json {
        let mut members = vec![
            ("workload".into(), Json::Str(self.workload.clone())),
            ("manager".into(), Json::Str(self.manager.clone())),
            ("threads".into(), Json::Num(self.threads as f64)),
            ("update_pct".into(), Json::Num(self.update_pct as f64)),
            ("key_range".into(), Json::Num(self.key_range as f64)),
            ("window_n".into(), Json::Num(self.window_n as f64)),
            ("engine".into(), Json::Str(self.engine.clone())),
        ];
        if let Some(net) = &self.net {
            members.push(("net".into(), Json::Str(net.clone())));
        }
        members.extend([
            ("reps".into(), Json::Num(self.reps as f64)),
            ("seed".into(), Json::Str(format!("{:#x}", self.seed))),
            ("stop".into(), Json::Str(self.stop.clone())),
            ("truncated".into(), Json::Bool(self.truncated)),
            (
                "metrics".into(),
                Json::Obj(
                    self.metrics
                        .iter()
                        .map(|(name, agg)| {
                            (
                                name.clone(),
                                Json::Obj(vec![
                                    ("mean".into(), Json::Num(agg.mean)),
                                    ("sd".into(), Json::Num(agg.sd)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ]);
        Json::Obj(members)
    }

    fn from_json(v: &Json) -> Option<CellResult> {
        let seed_str = v.get("seed")?.as_str()?;
        let seed = u64::from_str_radix(seed_str.strip_prefix("0x")?, 16).ok()?;
        let metrics = v
            .get("metrics")?
            .as_obj()?
            .iter()
            .map(|(name, m)| {
                Some((
                    name.clone(),
                    Agg {
                        mean: m.get("mean")?.as_f64_or_nan()?,
                        sd: m.get("sd")?.as_f64_or_nan()?,
                    },
                ))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(CellResult {
            workload: v.get("workload")?.as_str()?.to_string(),
            manager: v.get("manager")?.as_str()?.to_string(),
            threads: v.get("threads")?.as_f64()? as usize,
            update_pct: v.get("update_pct")?.as_f64()? as u32,
            key_range: v.get("key_range")?.as_f64()? as i64,
            window_n: v.get("window_n")?.as_f64()? as usize,
            engine: v.get("engine")?.as_str()?.to_string(),
            reps: v.get("reps")?.as_f64()? as usize,
            seed,
            stop: v.get("stop")?.as_str()?.to_string(),
            truncated: v.get("truncated")?.as_bool()?,
            net: v.get("net").and_then(Json::as_str).map(str::to_string),
            metrics,
        })
    }
}

/// The `results.json` store: a key → [`CellResult`] map persisted next to
/// the CSV reports; doubles as the resume checkpoint.
pub struct ResultsStore {
    path: PathBuf,
    cells: BTreeMap<String, CellResult>,
    /// Cells found on disk at open time (resume candidates).
    pub loaded: usize,
}

impl ResultsStore {
    /// Load `out_dir/results.json` if present and well-formed; a missing,
    /// unparsable, or wrong-schema-version file starts an empty store
    /// (noted on stderr — stale results are never silently trusted).
    pub fn open(out_dir: &Path) -> Self {
        let path = out_dir.join("results.json");
        let mut cells = BTreeMap::new();
        if let Ok(text) = std::fs::read_to_string(&path) {
            match Json::parse(&text)
                .map_err(|e| e.to_string())
                .and_then(|doc| crate::json::validate_results(&doc).map(|()| doc))
            {
                Ok(doc) => {
                    if let Some(members) = doc.get("cells").and_then(Json::as_obj) {
                        for (key, v) in members {
                            if let Some(r) = CellResult::from_json(v) {
                                cells.insert(key.clone(), r);
                            }
                        }
                    }
                }
                Err(e) => {
                    eprintln!(
                        "[windowtm] ignoring existing {}: {e}; starting fresh",
                        path.display()
                    );
                }
            }
        }
        let loaded = cells.len();
        ResultsStore {
            path,
            cells,
            loaded,
        }
    }

    pub fn get(&self, key: &str) -> Option<&CellResult> {
        self.cells.get(key)
    }

    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The full document in the committed schema.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".into(), Json::Num(RESULTS_SCHEMA_VERSION)),
            (
                "generator".into(),
                Json::Str(format!("windowtm {}", env!("CARGO_PKG_VERSION"))),
            ),
            (
                "cells".into(),
                Json::Obj(
                    self.cells
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Insert one result and rewrite `results.json` (checkpoint after
    /// every cell, so an interrupted suite loses at most the in-flight
    /// cell).
    pub fn insert_and_save(&mut self, key: String, result: CellResult) -> std::io::Result<()> {
        self.cells.insert(key, result);
        self.save()
    }

    /// Rewrite `results.json` from the current map.
    pub fn save(&self) -> std::io::Result<()> {
        if let Some(dir) = self.path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(&self.path, self.to_json().render_pretty())
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// The shared executor: runs specs cell by cell with progress/ETA and
/// resume through a [`ResultsStore`].
pub struct Executor {
    store: ResultsStore,
    /// Cells actually executed by this process (not resumed).
    ran: usize,
    /// Cells skipped because the store already had them.
    pub skipped: usize,
    started: Instant,
    spent_running: Duration,
}

impl Executor {
    pub fn new(out_dir: &Path) -> Self {
        let store = ResultsStore::open(out_dir);
        if store.loaded > 0 {
            eprintln!(
                "[windowtm] resume: found {} cached cell(s) in {}",
                store.loaded,
                store.path().display()
            );
        }
        Executor {
            store,
            ran: 0,
            skipped: 0,
            started: Instant::now(),
            spent_running: Duration::ZERO,
        }
    }

    pub fn store(&self) -> &ResultsStore {
        &self.store
    }

    /// Run every cell of `spec` (resumed cells are returned from the
    /// store without re-running), in grid order.
    pub fn run(&mut self, spec: &ExperimentSpec) -> Vec<CellResult> {
        let cells = spec.cells();
        let total = cells.len();
        let mut results = Vec::with_capacity(total);
        let mut skipped_here = 0usize;
        for (i, cell) in cells.iter().enumerate() {
            let key = cell.key();
            if let Some(cached) = self.store.get(&key) {
                skipped_here += 1;
                self.skipped += 1;
                results.push(cached.clone());
                continue;
            }
            eprintln!(
                "[windowtm] {} {}/{} {} / {} / M={}{}{}",
                spec.id,
                i + 1,
                total,
                cell.workload,
                cell.manager,
                cell.threads,
                match &cell.sim {
                    Some(s) => format!(" net={}", s.net),
                    None => format!(" upd={}%", cell.update_pct),
                },
                self.eta(total - i),
            );
            let t0 = Instant::now();
            let result = if let Some(sim) = &cell.sim {
                let outcomes: Vec<wtm_sim::SimOutcome> = (0..spec.reps.max(1))
                    .map(|r| {
                        let run_spec = wtm_sim::SimRunSpec {
                            scenario: cell.workload.clone(),
                            scheduler: cell.manager.clone(),
                            m: cell.threads,
                            n: cell.window_n,
                            tau: sim.tau,
                            net: sim.net.clone(),
                            seed: cell.seed().wrapping_add(r as u64 * 0x9E37),
                        };
                        wtm_sim::run_sim(&run_spec, false)
                            .unwrap_or_else(|e| panic!("sim cell {}: {e}", cell.key()))
                            .outcome
                    })
                    .collect();
                CellResult::from_sim_outcomes(cell, &outcomes)
            } else {
                let outcomes: Vec<RunOutcome> = (0..spec.reps.max(1))
                    .map(|r| run_one(&cell.run_spec(r)))
                    .collect();
                CellResult::from_outcomes(cell, &outcomes)
            };
            self.spent_running += t0.elapsed();
            self.ran += 1;
            if let Err(e) = self.store.insert_and_save(key.clone(), result) {
                eprintln!("[windowtm] checkpoint write failed: {e}");
            }
            results.push(self.store.get(&key).expect("just inserted").clone());
        }
        if skipped_here > 0 {
            eprintln!(
                "[windowtm] {}: resume: skipped {skipped_here}/{total} cached cell(s)",
                spec.id
            );
        }
        results
    }

    /// `" (eta ~Ns)"` once at least one cell has run; cells are assumed
    /// roughly equal-cost (true within a spec: same stop rule and reps).
    fn eta(&self, remaining: usize) -> String {
        if self.ran == 0 || remaining == 0 {
            return String::new();
        }
        let per_cell = self.spent_running / self.ran as u32;
        let eta = per_cell * remaining as u32;
        format!(" (eta ~{}s)", eta.as_secs().max(1))
    }

    /// Total wall time since the executor was created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> ExperimentSpec {
        let mut s = ExperimentSpec::new("t", StopRule::Timed(Duration::from_millis(40)));
        s.workloads = vec!["List".into(), "RBTree".into()];
        s.managers = vec!["Polka".into(), "Greedy".into(), "Online-Dynamic".into()];
        s.threads = vec![1, 2];
        s.update_pcts = vec![20, 100];
        s.reps = 2;
        s.window_n = 8;
        s
    }

    #[test]
    fn grid_expands_to_the_full_factorial() {
        let cells = grid().cells();
        assert_eq!(cells.len(), 2 * 3 * 2 * 2);
        // Workload-major order, managers innermost.
        assert_eq!(cells[0].workload, "List");
        assert_eq!(cells[0].manager, "Polka");
        assert_eq!(cells[1].manager, "Greedy");
        assert_eq!(cells.last().unwrap().workload, "RBTree");
        // Cell keys are unique.
        let mut keys: Vec<String> = cells.iter().map(Cell::key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), cells.len());
    }

    #[test]
    fn key_range_resolves_registry_defaults() {
        let cells = grid().cells();
        assert_eq!(cells[0].key_range, 64, "List default");
        assert!(cells.iter().any(|c| c.key_range == 256), "RBTree default");
        let mut s = grid();
        s.key_range = 48;
        assert!(s.cells().iter().all(|c| c.key_range == 48));
    }

    #[test]
    fn seeds_are_deterministic_and_cell_specific() {
        let a = grid().cells();
        let b = grid().cells();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed(), y.seed(), "same cell, same seed");
        }
        let mut seeds: Vec<u64> = a.iter().map(Cell::seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), a.len(), "distinct cells get distinct seeds");
        // The base seed shifts every cell.
        let mut shifted = grid();
        shifted.base_seed = 0xDEAD;
        for (x, y) in a.iter().zip(shifted.cells().iter()) {
            assert_ne!(x.seed(), y.seed());
        }
        // Repetitions get distinct engine seeds off the cell seed.
        assert_ne!(a[0].run_spec(0).seed, a[0].run_spec(1).seed);
        assert_eq!(a[0].run_spec(0).seed, a[0].seed());
    }

    #[test]
    fn engine_is_part_of_cell_identity() {
        let eager = grid().cells();
        let mut lazy_spec = grid();
        lazy_spec.engine = EngineKind::Lazy;
        let lazy = lazy_spec.cells();
        for (e, l) in eager.iter().zip(&lazy) {
            assert!(e.key().contains("|eng=eager|"), "{}", e.key());
            assert!(l.key().contains("|eng=lazy|"), "{}", l.key());
            assert_ne!(e.key(), l.key(), "engine must split the checkpoint key");
            assert_ne!(e.seed(), l.seed(), "engine shifts the derived seed");
            assert_eq!(l.run_spec(0).engine, EngineKind::Lazy);
        }
    }

    #[test]
    fn aggregate_mean_and_sample_sd() {
        let a = aggregate(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((a.mean - 5.0).abs() < 1e-12);
        assert!((a.sd - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        let single = aggregate(&[3.5]);
        assert_eq!(single.mean, 3.5);
        assert_eq!(single.sd, 0.0);
        assert!(aggregate(&[]).mean.is_nan());
    }

    #[test]
    fn cell_result_propagates_truncation_and_aggregates() {
        let cell = &grid().cells()[0];
        let mut spec = cell.run_spec(0);
        spec.stop = StopRule::Budget(60);
        let ok = run_one(&spec);
        assert!(!ok.truncated);
        let mut bad = ok;
        bad.truncated = true;
        let r = CellResult::from_outcomes(cell, &[ok, bad]);
        assert!(r.truncated, "one truncated rep flags the cell");
        assert_eq!(r.reps, 2);
        let thr = r.metric("throughput");
        assert!(thr.mean > 0.0);
        assert!(thr.sd >= 0.0);
        assert!(r.metric("nonexistent").mean.is_nan());
        let all_ok = CellResult::from_outcomes(cell, &[ok, ok]);
        assert!(!all_ok.truncated);
        assert_eq!(all_ok.metric("throughput").sd, 0.0, "identical reps");
    }

    #[test]
    fn cell_result_json_roundtrip() {
        let cell = &grid().cells()[0];
        let out = run_one(&cell.run_spec(0));
        let r = CellResult::from_outcomes(cell, &[out]);
        let back = CellResult::from_json(&r.to_json()).unwrap();
        assert_eq!(back.workload, r.workload);
        assert_eq!(back.seed, r.seed);
        assert_eq!(back.stop, r.stop);
        assert_eq!(back.engine, r.engine);
        assert_eq!(back.engine, "eager");
        assert_eq!(back.metrics.len(), r.metrics.len());
        for ((n1, a1), (n2, a2)) in r.metrics.iter().zip(&back.metrics) {
            assert_eq!(n1, n2);
            assert!(a1.mean == a2.mean || (a1.mean.is_nan() && a2.mean.is_nan()));
        }
    }

    #[test]
    fn executor_resumes_from_results_json() {
        let dir = std::env::temp_dir().join(format!("wtm_exec_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut spec = ExperimentSpec::new("resume", StopRule::Budget(40));
        spec.workloads = vec!["List".into()];
        spec.managers = vec!["Polka".into(), "Greedy".into()];
        spec.threads = vec![2];
        spec.window_n = 8;

        let mut first = Executor::new(&dir);
        let r1 = first.run(&spec);
        assert_eq!(r1.len(), 2);
        assert_eq!(first.skipped, 0);
        let json_text = std::fs::read_to_string(dir.join("results.json")).unwrap();
        let doc = Json::parse(&json_text).unwrap();
        crate::json::validate_results(&doc).expect("committed schema");

        // Same spec, fresh executor: every cell is served from disk and
        // the checkpoint file is untouched (byte-identical rewrite).
        let mut second = Executor::new(&dir);
        assert_eq!(second.store().loaded, 2);
        let r2 = second.run(&spec);
        assert_eq!(second.skipped, 2);
        assert_eq!(r2.len(), 2);
        for (a, b) in r1.iter().zip(&r2) {
            assert_eq!(a.metric("commits").mean, b.metric("commits").mean);
        }
        second.store().save().unwrap();
        assert_eq!(
            std::fs::read_to_string(dir.join("results.json")).unwrap(),
            json_text,
            "resume must be a byte-identical no-op"
        );

        // A different base seed is a different cell identity: nothing is
        // reused.
        let mut reseeded = spec.clone();
        reseeded.base_seed = 7;
        let mut third = Executor::new(&dir);
        third.run(&reseeded);
        assert_eq!(third.skipped, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn sim_grid() -> ExperimentSpec {
        let mut s = ExperimentSpec::new("simt", StopRule::Budget(0));
        s.managers = vec!["Greedy".into(), "Online-Dynamic".into()];
        s.threads = vec![4];
        s.reps = 2;
        s.window_n = 5;
        s.sim = Some(SimAxes {
            scenarios: vec!["fig2-shape".into(), "distributed@nodes=2,skew=1".into()],
            nets: vec!["zero".into(), "fixed:2".into()],
            tau: 2,
        });
        s
    }

    #[test]
    fn sim_grid_expands_scenarios_by_nets_with_net_in_the_key() {
        let cells = sim_grid().cells();
        // 2 scenarios x 2 nets x 1 thread-count x 2 managers.
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0].workload, "fig2-shape");
        assert_eq!(cells[0].manager, "Greedy");
        assert_eq!(cells[0].sim.as_ref().unwrap().net, "zero");
        assert_eq!(cells[2].sim.as_ref().unwrap().net, "fixed:2");
        // The network model splits cell identity (and hence the seed).
        assert!(cells[0].key().starts_with("v3|sim|"), "{}", cells[0].key());
        assert!(cells[0].key().contains("|net=zero|"));
        assert!(cells[2].key().contains("|net=fixed:2|"));
        assert_ne!(cells[0].key(), cells[2].key());
        assert_ne!(cells[0].seed(), cells[2].seed());
        let mut keys: Vec<String> = cells.iter().map(Cell::key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), cells.len());
    }

    #[test]
    fn sim_cells_run_aggregate_and_resume_byte_identically() {
        let dir = std::env::temp_dir().join(format!("wtm_sim_exec_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = sim_grid();

        let mut first = Executor::new(&dir);
        let r1 = first.run(&spec);
        assert_eq!(r1.len(), 8);
        assert_eq!(first.skipped, 0);
        for r in &r1 {
            assert_eq!(r.engine, "sim");
            assert_eq!(r.stop, "sim");
            assert!(r.net.is_some());
            assert!(!r.truncated, "smoke windows must fully commit");
            assert!(r.metric("makespan").mean > 0.0);
            assert_eq!(r.metric("all_committed").mean, 1.0);
            // Reps are decorrelated (distinct derived seeds), so sd is
            // merely finite; determinism shows up as the byte-identical
            // re-run below, not as zero spread.
            assert!(r.metric("makespan").sd.is_finite());
        }
        let json_text = std::fs::read_to_string(dir.join("results.json")).unwrap();
        let doc = Json::parse(&json_text).unwrap();
        crate::json::validate_results(&doc).expect("committed schema");

        let mut second = Executor::new(&dir);
        let r2 = second.run(&spec);
        assert_eq!(second.skipped, 8);
        for (a, b) in r1.iter().zip(&r2) {
            assert_eq!(a.net, b.net);
            assert_eq!(a.metric("makespan").mean, b.metric("makespan").mean);
        }
        second.store().save().unwrap();
        assert_eq!(
            std::fs::read_to_string(dir.join("results.json")).unwrap(),
            json_text,
            "sim resume must be a byte-identical no-op"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sim_cell_result_json_roundtrips_the_net_field() {
        let cell = &sim_grid().cells()[0];
        let outcome = wtm_sim::run_sim(
            &wtm_sim::SimRunSpec {
                scenario: cell.workload.clone(),
                scheduler: cell.manager.clone(),
                m: cell.threads,
                n: cell.window_n,
                tau: 2,
                net: "zero".into(),
                seed: 1,
            },
            false,
        )
        .unwrap()
        .outcome;
        let r = CellResult::from_sim_outcomes(cell, &[outcome]);
        let back = CellResult::from_json(&r.to_json()).unwrap();
        assert_eq!(back.net.as_deref(), Some("zero"));
        assert_eq!(back.engine, "sim");
        assert_eq!(back.stop, "sim");
        assert_eq!(back.metric("makespan").mean, r.metric("makespan").mean);
        // STM results keep omitting the field entirely.
        let stm = &grid().cells()[0];
        let out = run_one(&stm.run_spec(0));
        let stm_r = CellResult::from_outcomes(stm, &[out]);
        assert!(stm_r.net.is_none());
        assert!(!stm_r.to_json().render_pretty().contains("\"net\""));
    }
}
