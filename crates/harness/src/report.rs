//! Tabular reporting: aligned text to stdout, CSV to `results/`.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A rectangular results table: one row per sweep point, one column per
/// series (manager), `f64` cells, with optional per-cell standard
/// deviations (the experiment engine's repetition variance).
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (figure id + benchmark).
    pub title: String,
    /// Label of the row-key column (e.g. "threads").
    pub row_key: String,
    /// Column headers (series names).
    pub columns: Vec<String>,
    /// Row labels (e.g. thread counts).
    pub rows: Vec<String>,
    /// `cells[r][c]`.
    pub cells: Vec<Vec<f64>>,
    /// Per-cell standard deviations: either empty (no variance data) or
    /// the same shape as [`cells`](Table::cells). When present, `render`
    /// shows `mean±sd` and `to_csv` appends one `<col> sd` column per
    /// series *after* all mean columns, so mean columns keep their
    /// positions for existing consumers.
    pub sds: Vec<Vec<f64>>,
}

impl Table {
    /// Empty table with headers.
    pub fn new(title: impl Into<String>, row_key: impl Into<String>, columns: Vec<String>) -> Self {
        Table {
            title: title.into(),
            row_key: row_key.into(),
            columns,
            rows: Vec::new(),
            cells: Vec::new(),
            sds: Vec::new(),
        }
    }

    /// Append one row.
    pub fn push_row(&mut self, label: impl Into<String>, cells: Vec<f64>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(label.into());
        self.cells.push(cells);
    }

    /// Append one row with per-cell standard deviations. Don't mix with
    /// [`push_row`](Table::push_row) in one table.
    pub fn push_row_sd(&mut self, label: impl Into<String>, cells: Vec<f64>, sds: Vec<f64>) {
        assert_eq!(sds.len(), self.columns.len(), "sd row width mismatch");
        self.push_row(label, cells);
        self.sds.push(sds);
        assert_eq!(self.sds.len(), self.cells.len(), "mixed sd/plain rows");
    }

    fn has_sds(&self) -> bool {
        !self.sds.is_empty() && self.sds.len() == self.cells.len()
    }

    /// Cell lookup by series name.
    pub fn get(&self, row: usize, column: &str) -> Option<f64> {
        let c = self.columns.iter().position(|x| x == column)?;
        self.cells.get(row).map(|r| r[c])
    }

    /// Aligned, human-readable rendering.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = Vec::with_capacity(self.columns.len() + 1);
        widths.push(
            self.rows
                .iter()
                .map(String::len)
                .chain([self.row_key.len()])
                .max()
                .unwrap_or(4),
        );
        let formatted: Vec<Vec<String>> = self
            .cells
            .iter()
            .enumerate()
            .map(|(r, row)| {
                row.iter()
                    .enumerate()
                    .map(|(c, v)| {
                        if self.has_sds() {
                            format!("{}±{}", format_cell(*v), format_cell(self.sds[r][c]))
                        } else {
                            format_cell(*v)
                        }
                    })
                    .collect()
            })
            .collect();
        for (c, col) in self.columns.iter().enumerate() {
            let w = formatted
                .iter()
                .map(|r| r[c].len())
                .chain([col.len()])
                .max()
                .unwrap_or(6);
            widths.push(w);
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let _ = write!(out, "{:<w$}", self.row_key, w = widths[0]);
        for (c, col) in self.columns.iter().enumerate() {
            let _ = write!(out, "  {:>w$}", col, w = widths[c + 1]);
        }
        let _ = writeln!(out);
        for (r, label) in self.rows.iter().enumerate() {
            let _ = write!(out, "{:<w$}", label, w = widths[0]);
            for c in 0..self.columns.len() {
                let _ = write!(out, "  {:>w$}", formatted[r][c], w = widths[c + 1]);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// CSV rendering (header row + data rows). Variance tables append one
    /// `<col> sd` column per series after all mean columns.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", csv_escape(&self.row_key));
        for col in &self.columns {
            let _ = write!(out, ",{}", csv_escape(col));
        }
        if self.has_sds() {
            for col in &self.columns {
                let _ = write!(out, ",{}", csv_escape(&format!("{col} sd")));
            }
        }
        let _ = writeln!(out);
        let csv_cell = |out: &mut String, v: f64| {
            if v.is_finite() {
                let _ = write!(out, ",{v}");
            } else {
                let _ = write!(out, ",n/a");
            }
        };
        for (r, label) in self.rows.iter().enumerate() {
            let _ = write!(out, "{}", csv_escape(label));
            for c in 0..self.columns.len() {
                csv_cell(&mut out, self.cells[r][c]);
            }
            if self.has_sds() {
                for c in 0..self.columns.len() {
                    csv_cell(&mut out, self.sds[r][c]);
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Write the CSV into `dir/<slug>.csv` (slug derived from the title).
    pub fn save_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", slugify(&self.title)));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_csv().as_bytes())?;
        Ok(path)
    }
}

/// Derive a filesystem-friendly slug: lowercase ASCII alphanumerics, any
/// other run of characters collapsed to a single `_`, no leading or
/// trailing underscores. (The old slug mapped each character to `_`
/// individually, yielding names like `fig_2__window___list.csv`; see the
/// compatibility note in EXPERIMENTS.md.)
pub fn slugify(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.is_empty() && !out.ends_with('_') {
            out.push('_');
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    out
}

fn format_cell(v: f64) -> String {
    if !v.is_finite() {
        // NaN/±inf mean "no data for this cell" (e.g. a ratio against a
        // missing baseline) — never let them leak into a report as "NaN".
        return "n/a".to_string();
    }
    let a = v.abs();
    if a >= 10_000.0 {
        format!("{v:.0}")
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else if a >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Fig X: demo", "threads", vec!["A".into(), "B".into()]);
        t.push_row("1", vec![1234.5678, 0.25]);
        t.push_row("32", vec![9.0, 123456.0]);
        t
    }

    #[test]
    fn render_is_aligned_and_complete() {
        let s = sample().render();
        assert!(s.contains("## Fig X: demo"));
        assert!(s.contains("threads"));
        assert!(
            s.contains("1234.6"),
            "1234.5678 renders with 1 decimal: {s}"
        );
        assert!(s.contains("123456"));
        // Every line after the title has the same column count feel; at
        // minimum the headers appear.
        assert!(s.contains('A') && s.contains('B'));
    }

    #[test]
    fn csv_roundtrip_structure() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "threads,A,B");
        assert!(lines.next().unwrap().starts_with("1,1234.5678,"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("q\"q"), "\"q\"\"q\"");
    }

    #[test]
    fn get_by_column_name() {
        let t = sample();
        assert_eq!(t.get(0, "B"), Some(0.25));
        assert_eq!(t.get(1, "A"), Some(9.0));
        assert_eq!(t.get(0, "C"), None);
    }

    #[test]
    fn save_csv_writes_file() {
        let dir = std::env::temp_dir().join("wtm_report_test");
        let path = sample().save_csv(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("threads,"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_rejected() {
        let mut t = sample();
        t.push_row("x", vec![1.0]);
    }

    #[test]
    fn slugify_collapses_and_trims() {
        assert_eq!(
            slugify("Fig 2: window-variant throughput — List"),
            "fig_2_window_variant_throughput_list"
        );
        assert_eq!(slugify("  --weird--  "), "weird");
        assert_eq!(slugify("Plain"), "plain");
        assert_eq!(slugify("___"), "");
    }

    #[test]
    fn sd_rows_render_and_csv_append_sd_columns() {
        let mut t = Table::new("Fig V: var", "threads", vec!["A".into(), "B".into()]);
        t.push_row_sd("1", vec![100.0, 200.0], vec![5.0, 0.0]);
        t.push_row_sd("2", vec![300.0, 400.0], vec![f64::NAN, 7.0]);
        let s = t.render();
        assert!(s.contains("100.0±5.00"), "{s}");
        assert!(s.contains("±n/a"), "missing sd renders as n/a: {s}");
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "threads,A,B,A sd,B sd");
        assert_eq!(lines.next().unwrap(), "1,100,200,5,0");
        assert_eq!(lines.next().unwrap(), "2,300,400,n/a,7");
    }

    #[test]
    fn plain_tables_keep_csv_shape() {
        // No sd rows → no sd columns: mean columns stay position-identical.
        let csv = sample().to_csv();
        assert_eq!(csv.lines().next().unwrap(), "threads,A,B");
    }

    #[test]
    fn non_finite_cells_render_as_na() {
        let mut t = Table::new("Fig Y: gaps", "threads", vec!["A".into(), "B".into()]);
        t.push_row("1", vec![f64::NAN, 2.0]);
        t.push_row("2", vec![f64::INFINITY, f64::NEG_INFINITY]);
        let s = t.render();
        assert!(!s.contains("NaN"), "NaN must never appear in a report: {s}");
        assert!(!s.contains("inf"), "inf must never appear in a report: {s}");
        assert!(s.contains("n/a"));
        let csv = t.to_csv();
        assert!(!csv.contains("NaN") && !csv.contains("inf"), "{csv}");
        assert!(csv.lines().nth(1).unwrap().starts_with("1,n/a,2"));
        assert_eq!(csv.lines().nth(2).unwrap(), "2,n/a,n/a");
    }
}
