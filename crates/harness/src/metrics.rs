//! The paper's §IV "future work" metrics, implemented: wasted work,
//! repeat conflicts, average committed-transaction duration, and average
//! response time, for the Fig. 3 manager set across all benchmarks.
//!
//! > "window-based algorithms can also be evaluated for other performance
//! > measures such as wasted work, repeat conflicts, average committed
//! > transactions duration, average response time … We defer the
//! > evaluation of window model evaluation on these aforementioned
//! > performance measures for future work." — §IV
//!
//! This module is that evaluation.

use crate::managers::comparison_manager_names;
use crate::preset::Preset;
use crate::report::Table;
use crate::runner::{run_averaged, RunSpec, StopRule};
use wtm_workloads::Benchmark;

/// One table per metric; rows = benchmarks, columns = managers.
pub fn future_work_tables(preset: &Preset) -> Vec<Table> {
    let managers = comparison_manager_names();
    let threads = preset.thread_counts.last().copied().unwrap_or(2);
    let cols: Vec<String> = managers.iter().map(|m| m.to_string()).collect();
    let mut wasted = Table::new(
        format!("FW1: wasted work (fraction of cycles in aborted attempts, M={threads})"),
        "benchmark",
        cols.clone(),
    );
    let mut repeats = Table::new(
        format!("FW2: repeat conflicts per 1000 commits (M={threads})"),
        "benchmark",
        cols.clone(),
    );
    let mut duration = Table::new(
        format!("FW3: average committed-transaction duration (µs, M={threads})"),
        "benchmark",
        cols.clone(),
    );
    let mut response = Table::new(
        format!("FW4: average response time (µs, first start → commit, M={threads})"),
        "benchmark",
        cols,
    );
    for bench in Benchmark::all() {
        let mut w = Vec::new();
        let mut r = Vec::new();
        let mut d = Vec::new();
        let mut resp = Vec::new();
        for manager in &managers {
            eprintln!("[windowtm] FW {} / {manager}", bench.name());
            let mut spec = RunSpec::new(*bench, manager, threads, StopRule::Timed(preset.duration));
            spec.window_n = preset.window_n;
            let out = run_averaged(&spec, preset.reps);
            w.push(out.stats.wasted_work());
            r.push(out.stats.repeat_conflicts as f64 * 1000.0 / out.stats.commits.max(1) as f64);
            d.push(out.stats.avg_committed_duration().as_secs_f64() * 1e6);
            resp.push(out.stats.avg_response_time().as_secs_f64() * 1e6);
        }
        wasted.push_row(bench.name(), w);
        repeats.push_row(bench.name(), r);
        duration.push_row(bench.name(), d);
        response.push_row(bench.name(), resp);
    }
    vec![wasted, repeats, duration, response]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn future_work_tables_have_full_shape() {
        let tables = future_work_tables(&Preset::smoke());
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert_eq!(t.rows.len(), 4, "{}", t.title);
            assert_eq!(t.columns.len(), 5);
            for row in &t.cells {
                for v in row {
                    assert!(v.is_finite() && *v >= 0.0, "bad cell in {}", t.title);
                }
            }
        }
        // Response time can never be below committed duration.
        let d = &tables[2];
        let r = &tables[3];
        for i in 0..d.rows.len() {
            for c in 0..d.columns.len() {
                assert!(
                    r.cells[i][c] + 1e-9 >= d.cells[i][c],
                    "response < duration at {i},{c}"
                );
            }
        }
    }
}
