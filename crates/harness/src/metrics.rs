//! The paper's §IV "future work" metrics, implemented: wasted work,
//! repeat conflicts, average committed-transaction duration, and average
//! response time, for the Fig. 3 manager set across all benchmarks.
//!
//! > "window-based algorithms can also be evaluated for other performance
//! > measures such as wasted work, repeat conflicts, average committed
//! > transactions duration, average response time … We defer the
//! > evaluation of window model evaluation on these aforementioned
//! > performance measures for future work." — §IV
//!
//! This module is that evaluation. Because every [`CellResult`] already
//! carries all the metrics, this spec's cells coincide with the Fig. 3
//! cells at the top thread count — when `fig34` ran first into the same
//! `--out`, the executor serves these from the checkpoint for free.

use wtm_workloads::paper_workload_names;

use crate::experiment::{CellResult, Executor, ExperimentSpec};
use crate::managers::comparison_manager_names;
use crate::preset::Preset;
use crate::report::Table;
use crate::runner::StopRule;

/// One table per metric; rows = benchmarks, columns = managers.
pub fn future_work_tables(preset: &Preset, exec: &mut Executor) -> Vec<Table> {
    let threads = preset.thread_counts.last().copied().unwrap_or(2);
    let mut spec = ExperimentSpec::new("metrics", StopRule::Timed(preset.duration));
    spec.workloads = paper_workload_names()
        .iter()
        .map(|w| w.to_string())
        .collect();
    spec.managers = comparison_manager_names()
        .iter()
        .map(|m| m.to_string())
        .collect();
    spec.threads = vec![threads];
    spec.reps = preset.reps;
    spec.window_n = preset.window_n;
    spec.engine = preset.engine;
    spec.base_seed = preset.seed;
    let results = exec.run(&spec);

    let views: [(&str, String); 4] = [
        (
            "wasted_work",
            format!("FW1: wasted work (fraction of cycles in aborted attempts, M={threads})"),
        ),
        (
            "repeat_conflicts_per_kcommit",
            format!("FW2: repeat conflicts per 1000 commits (M={threads})"),
        ),
        (
            "avg_committed_duration_us",
            format!("FW3: average committed-transaction duration (µs, M={threads})"),
        ),
        (
            "avg_response_time_us",
            format!("FW4: average response time (µs, first start → commit, M={threads})"),
        ),
    ];
    views
        .into_iter()
        .map(|(metric, title)| project(&spec, &results, metric, title))
        .collect()
}

fn project(spec: &ExperimentSpec, results: &[CellResult], metric: &str, title: String) -> Table {
    let mut t = Table::new(title, "benchmark", spec.managers.clone());
    for workload in &spec.workloads {
        let (means, sds): (Vec<f64>, Vec<f64>) = spec
            .managers
            .iter()
            .map(|mgr| {
                let a = results
                    .iter()
                    .find(|r| &r.workload == workload && &r.manager == mgr)
                    .map(|r| r.metric(metric))
                    .unwrap_or(crate::experiment::Agg {
                        mean: f64::NAN,
                        sd: f64::NAN,
                    });
                (a.mean, a.sd)
            })
            .unzip();
        t.push_row_sd(workload.clone(), means, sds);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn future_work_tables_have_full_shape() {
        let dir = std::env::temp_dir().join(format!("wtm_fw_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut exec = Executor::new(&dir);
        let tables = future_work_tables(&Preset::smoke(), &mut exec);
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert_eq!(t.rows.len(), 4, "{}", t.title);
            assert_eq!(t.columns.len(), 5);
            for row in &t.cells {
                for v in row {
                    assert!(v.is_finite() && *v >= 0.0, "bad cell in {}", t.title);
                }
            }
        }
        // Response time can never be below committed duration.
        let d = &tables[2];
        let r = &tables[3];
        for i in 0..d.rows.len() {
            for c in 0..d.columns.len() {
                assert!(
                    r.cells[i][c] + 1e-9 >= d.cells[i][c],
                    "response < duration at {i},{c}"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
