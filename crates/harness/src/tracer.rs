//! `windowtm trace` — transaction-event tracing over real experiment
//! cells.
//!
//! Runs an instrumented cell per `(workload, manager)` pair, drains the
//! per-thread ring buffers, and reports three views of each stream:
//!
//! * **TR1** — the who-killed-whom conflict matrix (`kills[killer][victim]`),
//!   the contention-manager behaviour the aggregate abort counters hide;
//! * **TR2** — log₂-bucketed latency histograms of commits, aborts,
//!   contention-manager waits, and barrier waits;
//! * **TR3** — raw event counts per kind.
//!
//! Each cell's full stream is also exported as Chrome-trace JSON
//! (`trace_<benchmark>_<manager>.json`), loadable in Perfetto or
//! `chrome://tracing` for timeline inspection.

use std::path::Path;

use wtm_trace::collect::{counts_by_kind, ConflictMatrix, Histograms};
use wtm_trace::Event;

use crate::preset::Preset;
use crate::report::{slugify, Table};
use crate::runner::{run_one, RunSpec, StopRule};

/// The cells `windowtm trace` instruments: one classic manager (Polka)
/// and one window manager (Online-Dynamic) on the two benchmarks the
/// paper discusses most. Event streams cannot be reconstructed from a
/// checkpoint, so trace cells always re-run (they are not part of
/// `results.json`).
pub const TRACE_CELLS: &[(&str, &str)] = &[
    ("List", "Polka"),
    ("List", "Online-Dynamic"),
    ("RBTree", "Polka"),
    ("RBTree", "Online-Dynamic"),
];

/// One instrumented run and its drained event stream.
pub struct TraceCell {
    pub workload: String,
    pub manager: String,
    pub threads: usize,
    pub commits: u64,
    pub events: Vec<Event>,
    /// Events that fell out of the ring buffers (stream was larger than
    /// the configured capacity).
    pub dropped: u64,
    /// `BarrierWait` events that ended in `BARRIER_TIMED_OUT`. Always zero
    /// for a healthy cell: the harness sizes every window manager with
    /// `m` = thread count, so a timeout means the window machinery broke
    /// and the cell silently degraded to free mode mid-measurement.
    pub barrier_timeouts: u64,
    /// Chrome-trace JSON of the full stream.
    pub json: String,
}

/// Run one instrumented cell and drain its trace.
pub fn trace_cell(preset: &Preset, workload: &str, manager: &str) -> TraceCell {
    // Enough threads for interesting conflict structure, few enough that
    // the matrix stays readable.
    let threads = preset.thread_counts.last().copied().unwrap_or(2).min(8);
    wtm_trace::reset();
    let mut spec = RunSpec::new(workload, manager, threads, StopRule::Timed(preset.duration));
    spec.window_n = preset.window_n;
    spec.engine = preset.engine;
    spec.trace = true;
    let out = run_one(&spec);
    let events = wtm_trace::drain();
    let dropped = wtm_trace::dropped_total();
    let barrier_timeouts = events
        .iter()
        .filter(|e| {
            e.kind == wtm_trace::EventKind::BarrierWait && e.b == wtm_trace::BARRIER_TIMED_OUT
        })
        .count() as u64;
    let threads_s = threads.to_string();
    let commits_s = out.stats.commits.to_string();
    let dropped_s = dropped.to_string();
    let json = wtm_trace::chrome::to_chrome_json(
        &events,
        &[
            ("benchmark", workload),
            ("manager", manager),
            ("threads", &threads_s),
            ("commits", &commits_s),
            ("dropped_events", &dropped_s),
        ],
    );
    TraceCell {
        workload: workload.to_string(),
        manager: manager.to_string(),
        threads,
        commits: out.stats.commits,
        events,
        dropped,
        barrier_timeouts,
        json,
    }
}

/// TR1: the who-killed-whom matrix of one cell.
pub fn matrix_table(cell: &TraceCell) -> Table {
    let m = ConflictMatrix::from_events(&cell.events, cell.threads);
    let cols: Vec<String> = (0..cell.threads).map(|t| format!("kills t{t}")).collect();
    let mut t = Table::new(
        format!(
            "TR1: who-killed-whom — {} / {} (M={})",
            cell.workload, cell.manager, cell.threads
        ),
        "killer",
        cols,
    );
    for killer in 0..cell.threads {
        let row: Vec<f64> = (0..cell.threads)
            .map(|victim| m.get(killer, victim) as f64)
            .collect();
        t.push_row(format!("t{killer}"), row);
    }
    t
}

/// TR2: latency histograms of one cell, rows = occupied log₂ buckets.
pub fn histogram_table(cell: &TraceCell) -> Table {
    let h = Histograms::from_events(&cell.events);
    let named = h.named();
    let cols: Vec<String> = named.iter().map(|(n, _)| n.to_string()).collect();
    let mut t = Table::new(
        format!(
            "TR2: latency histograms (log2 buckets) — {} / {}",
            cell.workload, cell.manager
        ),
        "latency",
        cols,
    );
    let hi = named
        .iter()
        .filter_map(|(_, h)| h.max_bucket())
        .max()
        .unwrap_or(0);
    for b in 0..=hi {
        let row: Vec<f64> = named.iter().map(|(_, h)| h.bucket(b) as f64).collect();
        if row.iter().all(|v| *v == 0.0) {
            continue;
        }
        t.push_row(wtm_trace::collect::LogHistogram::bucket_label(b), row);
    }
    let means: Vec<f64> = named.iter().map(|(_, h)| h.mean_ns() / 1e3).collect();
    t.push_row("mean µs", means);
    t
}

/// TR3: event counts per kind across all traced cells.
pub fn summary_table(cells: &[TraceCell]) -> Table {
    let cols: Vec<String> = wtm_trace::EventKind::ALL
        .iter()
        .map(|k| k.name().to_string())
        .collect();
    let mut t = Table::new("TR3: trace event counts per kind", "cell", cols);
    for cell in cells {
        let counts = counts_by_kind(&cell.events);
        t.push_row(
            format!("{}/{}", cell.workload, cell.manager),
            counts.iter().map(|(_, c)| *c as f64).collect(),
        );
    }
    t
}

fn json_path(out_dir: &Path, cell: &TraceCell) -> std::path::PathBuf {
    out_dir.join(format!(
        "trace_{}_{}.json",
        slugify(&cell.workload),
        slugify(&cell.manager)
    ))
}

/// Run every [`TRACE_CELLS`] cell, write the Chrome-trace JSON exports
/// into `out_dir`, and return the report tables.
pub fn trace_report(preset: &Preset, out_dir: &Path) -> Vec<Table> {
    let mut tables = Vec::new();
    let mut cells = Vec::new();
    for (workload, manager) in TRACE_CELLS {
        eprintln!("[windowtm] trace {workload} / {manager}");
        let cell = trace_cell(preset, workload, manager);
        // Windowed cells run with m = thread count, so a barrier timeout
        // is a harness/manager bug, not a workload property — fail the
        // trace run (CI smoke included) instead of reporting poisoned
        // numbers from a cell that degraded to free mode.
        assert_eq!(
            cell.barrier_timeouts, 0,
            "{workload} / {manager}: {} window barrier timeout(s) at m = {} threads; \
             the cell degraded to free mode and its trace is not trustworthy",
            cell.barrier_timeouts, cell.threads
        );
        if cell.dropped > 0 {
            eprintln!(
                "[windowtm] trace {workload} / {manager}: {} events dropped (ring buffers full); \
                 matrices/histograms cover the retained tail",
                cell.dropped
            );
        }
        if let Err(e) = std::fs::create_dir_all(out_dir) {
            eprintln!("[windowtm] cannot create {}: {e}", out_dir.display());
        }
        let path = json_path(out_dir, &cell);
        match std::fs::write(&path, &cell.json) {
            Ok(()) => eprintln!("[windowtm] wrote {}", path.display()),
            Err(e) => eprintln!("[windowtm] json write failed: {e}"),
        }
        tables.push(matrix_table(&cell));
        tables.push(histogram_table(&cell));
        cells.push(cell);
    }
    tables.push(summary_table(&cells));
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtm_trace::EventKind;

    /// End-to-end smoke test of the tentpole: run a traced cell, validate
    /// the Chrome-trace export parses, and check the stream carries the
    /// events the views are built from. Uses a window manager so barrier
    /// and window events appear too.
    #[test]
    fn traced_cell_exports_valid_chrome_json_with_commits() {
        let cell = trace_cell(&Preset::smoke(), "List", "Online-Dynamic");
        wtm_trace::chrome::validate_json(&cell.json)
            .unwrap_or_else(|e| panic!("chrome JSON must parse: {e}"));
        assert!(cell.json.contains("\"traceEvents\""));
        assert_eq!(
            cell.barrier_timeouts, 0,
            "Online-Dynamic at m = thread-count must never time out a window barrier"
        );
        let commits = cell
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Commit)
            .count();
        assert!(commits >= 1, "trace must contain at least one commit event");
        assert!(
            cell.events.iter().any(|e| e.kind == EventKind::TxBegin),
            "begins must be traced"
        );

        let mt = matrix_table(&cell);
        assert_eq!(mt.rows.len(), cell.threads);
        assert_eq!(mt.columns.len(), cell.threads);

        let ht = histogram_table(&cell);
        assert_eq!(ht.columns, vec!["commit", "abort", "cm-wait", "barrier"]);
        assert!(!ht.rows.is_empty());

        let st = summary_table(&[cell]);
        assert_eq!(st.rows.len(), 1);
        assert!(st.get(0, "commit").unwrap() >= 1.0);
    }

    #[test]
    fn json_paths_are_slugged() {
        let cell = TraceCell {
            workload: "RBTree".into(),
            manager: "Online-Dynamic".into(),
            threads: 2,
            commits: 0,
            events: Vec::new(),
            dropped: 0,
            barrier_timeouts: 0,
            json: String::new(),
        };
        let p = json_path(Path::new("out"), &cell);
        assert_eq!(p, Path::new("out").join("trace_rbtree_online_dynamic.json"));
    }
}
