//! Simulator-based theory tables (§II-C of the paper).
//!
//! Three artifacts:
//!
//! * **T1 — makespan scaling**: for complete-column windows
//!   (`C = M − 1`), the makespans of the window schedulers against the
//!   one-shot baseline and the theoretical reference
//!   `τ·(C + N·ln MN)` of Theorem 2.1. The *ratio* column should stay
//!   roughly flat as `N` grows — that is the "within poly-log of optimal"
//!   claim.
//! * **T2 — window vs one-shot**: the §I-B motivation. Sweeping `M` on
//!   clustered graphs, the window schedulers' makespan relative to the
//!   one-shot decomposition.
//! * **T3 — competitive ratio vs `s`**: resource-footprint graphs with a
//!   shrinking resource pool; reports makespan over the trivial lower
//!   bound `τ·max(N, clique)` (Theorems 2.2/2.4 predict growth roughly
//!   linear in `s`... bounded by `O(s + log MN)`).

use wtm_sim::engine::{simulate, SimConfig};
use wtm_sim::graph::ConflictGraph;
use wtm_sim::sched::{
    FreeRandomizedScheduler, GreedyTimestampScheduler, OfflineWindowScheduler, OneShotScheduler,
    OnlineWindowScheduler, PolkaProgressScheduler, WindowMode,
};

use crate::preset::Preset;
use crate::report::Table;

const TAU: u32 = 4;
const SEEDS: [u64; 3] = [11, 29, 47];

fn mean_makespan(
    graph: &ConflictGraph,
    cfg: &SimConfig,
    mk: impl Fn(u64) -> Box<dyn wtm_sim::sched::SimScheduler>,
) -> f64 {
    let mut total = 0.0;
    for seed in SEEDS {
        let mut s = mk(seed);
        let out = simulate(graph, cfg, s.as_mut());
        assert!(out.all_committed, "{} did not finish", s.name());
        total += out.makespan as f64;
    }
    total / SEEDS.len() as f64
}

/// Seed → boxed scheduler constructor.
type SchedulerCtor<'a> = Box<dyn Fn(u64) -> Box<dyn wtm_sim::sched::SimScheduler> + 'a>;

/// All scheduler constructors used by the theory tables.
fn schedulers<'a>(
    cfg: &'a SimConfig,
    graph: &'a ConflictGraph,
) -> Vec<(&'static str, SchedulerCtor<'a>)> {
    vec![
        (
            "Offline",
            Box::new(move |s| Box::new(OfflineWindowScheduler::new(cfg, graph, s))),
        ),
        (
            "Online",
            Box::new(move |s| {
                Box::new(OnlineWindowScheduler::new(
                    cfg,
                    graph,
                    WindowMode::Static,
                    s,
                ))
            }),
        ),
        (
            "Online-Dynamic",
            Box::new(move |s| {
                Box::new(OnlineWindowScheduler::new(
                    cfg,
                    graph,
                    WindowMode::Dynamic,
                    s,
                ))
            }),
        ),
        (
            "Adaptive",
            Box::new(move |s| {
                Box::new(OnlineWindowScheduler::adaptive(cfg, WindowMode::Dynamic, s))
            }),
        ),
        (
            "OneShot",
            Box::new(move |s| Box::new(OneShotScheduler::new(cfg, s))),
        ),
        (
            "Greedy",
            Box::new(move |_| Box::new(GreedyTimestampScheduler::new(cfg))),
        ),
        (
            "Polka",
            Box::new(move |s| Box::new(PolkaProgressScheduler::new(cfg, s))),
        ),
        (
            "RandomizedRounds",
            Box::new(move |s| Box::new(FreeRandomizedScheduler::new(cfg, s))),
        ),
    ]
}

/// T1: makespan vs `N` on complete columns; plus the Theorem 2.1 reference
/// and the Offline/reference ratio.
pub fn t1_makespan_scaling(preset: &Preset) -> Table {
    let m = preset.sim_m;
    let n_sweep: Vec<usize> = [
        preset.sim_n / 4,
        preset.sim_n / 2,
        preset.sim_n,
        2 * preset.sim_n,
    ]
    .into_iter()
    .filter(|&n| n >= 2)
    .collect();
    let mut cols: Vec<String> = vec![
        "Offline".into(),
        "Online".into(),
        "Online-Dynamic".into(),
        "Adaptive".into(),
        "OneShot".into(),
        "Greedy".into(),
        "Polka".into(),
        "RandomizedRounds".into(),
    ];
    cols.push("bound τ(C+N·lnMN)".into());
    cols.push("Offline/bound".into());
    let mut t = Table::new(
        format!("T1: makespan vs N (complete columns, M={m}, tau={TAU})"),
        "N",
        cols,
    );
    for n in n_sweep {
        let graph = ConflictGraph::complete_columns(m, n);
        let cfg = SimConfig::new(m, n, TAU);
        let mut row = Vec::new();
        for (_, mk) in schedulers(&cfg, &graph) {
            row.push(mean_makespan(&graph, &cfg, |s| mk(s)));
        }
        let c = graph.contention() as f64;
        let bound = TAU as f64 * (c + n as f64 * cfg.ln_mn());
        let offline = row[0];
        row.push(bound);
        row.push(offline / bound);
        t.push_row(n.to_string(), row);
    }
    t
}

/// T2: window vs one-shot makespan ratio across `M` (clustered graphs —
/// the regime of §I-B where windows shine).
pub fn t2_window_vs_oneshot(preset: &Preset) -> Table {
    let n = preset.sim_n;
    let m_sweep: Vec<usize> = [2, 4, 8, 16, 32]
        .into_iter()
        .filter(|&m| m <= preset.sim_m.max(8))
        .collect();
    let mut t = Table::new(
        format!("T2: makespan relative to one-shot (clustered conflicts, N={n}, tau={TAU})"),
        "M",
        vec![
            "OneShot".into(),
            "Offline/OneShot".into(),
            "Online-Dynamic/OneShot".into(),
            "Adaptive/OneShot".into(),
            "Greedy/OneShot".into(),
        ],
    );
    for m in m_sweep {
        let graph = ConflictGraph::clustered(m, n, 0.9, 0.05, 1234 + m as u64);
        let cfg = SimConfig::new(m, n, TAU);
        let one = mean_makespan(&graph, &cfg, |s| Box::new(OneShotScheduler::new(&cfg, s)));
        let off = mean_makespan(&graph, &cfg, |s| {
            Box::new(OfflineWindowScheduler::new(&cfg, &graph, s))
        });
        let dynw = mean_makespan(&graph, &cfg, |s| {
            Box::new(OnlineWindowScheduler::new(
                &cfg,
                &graph,
                WindowMode::Dynamic,
                s,
            ))
        });
        let ada = mean_makespan(&graph, &cfg, |s| {
            Box::new(OnlineWindowScheduler::adaptive(
                &cfg,
                WindowMode::Dynamic,
                s,
            ))
        });
        let gre = mean_makespan(&graph, &cfg, |_| {
            Box::new(GreedyTimestampScheduler::new(&cfg))
        });
        t.push_row(
            m.to_string(),
            vec![one, off / one, dynw / one, ada / one, gre / one],
        );
    }
    t
}

/// T3: makespan over the trivial lower bound as the resource pool
/// shrinks (competitive-ratio shape, Theorems 2.2/2.4).
pub fn t3_competitive_vs_s(preset: &Preset) -> Table {
    let m = preset.sim_m.min(16);
    let n = preset.sim_n.min(24);
    let mut t = Table::new(
        format!("T3: makespan / lower bound vs shared resources s (M={m}, N={n}, tau={TAU})"),
        "s",
        vec![
            "C (max conflicts)".into(),
            "Offline/LB".into(),
            "Online-Dynamic/LB".into(),
            "OneShot/LB".into(),
        ],
    );
    for s_resources in [4usize, 16, 64, 256] {
        let graph = ConflictGraph::from_resources(m, n, s_resources, 4, 0.5, 777);
        let cfg = SimConfig::new(m, n, TAU);
        let lb = (TAU as f64) * (n.max(graph.column_clique_bound()) as f64);
        let off = mean_makespan(&graph, &cfg, |sd| {
            Box::new(OfflineWindowScheduler::new(&cfg, &graph, sd))
        });
        let dynw = mean_makespan(&graph, &cfg, |sd| {
            Box::new(OnlineWindowScheduler::new(
                &cfg,
                &graph,
                WindowMode::Dynamic,
                sd,
            ))
        });
        let one = mean_makespan(&graph, &cfg, |sd| Box::new(OneShotScheduler::new(&cfg, sd)));
        t.push_row(
            s_resources.to_string(),
            vec![graph.contention() as f64, off / lb, dynw / lb, one / lb],
        );
    }
    t
}

/// All theory tables.
pub fn makespan_tables(preset: &Preset) -> Vec<Table> {
    vec![
        t1_makespan_scaling(preset),
        t2_window_vs_oneshot(preset),
        t3_competitive_vs_s(preset),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_rows_and_bound_ratio_sane() {
        let t = t1_makespan_scaling(&Preset::smoke());
        assert!(!t.rows.is_empty());
        for r in 0..t.rows.len() {
            let ratio = t.get(r, "Offline/bound").unwrap();
            assert!(
                ratio > 0.0 && ratio < 10.0,
                "Offline should sit within a small constant of the bound, got {ratio}"
            );
        }
    }

    #[test]
    fn t2_ratios_positive() {
        let t = t2_window_vs_oneshot(&Preset::smoke());
        for row in &t.cells {
            for v in row {
                assert!(*v > 0.0);
            }
        }
    }

    #[test]
    fn t3_lower_bound_respected() {
        let t = t3_competitive_vs_s(&Preset::smoke());
        for r in 0..t.rows.len() {
            for col in ["Offline/LB", "Online-Dynamic/LB", "OneShot/LB"] {
                let v = t.get(r, col).unwrap();
                assert!(v >= 0.99, "{col} below the lower bound: {v}");
            }
        }
    }
}
