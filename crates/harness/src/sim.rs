//! The `windowtm sim` driver: discrete-event scenarios through the
//! experiment engine.
//!
//! One declarative [`ExperimentSpec`] sweeps the sim-scenario registry
//! (paper-shaped windows plus the beyond-paper distributed ones) against
//! a latency grid (`zero` / `fixed:1` / `fixed:4`) for every sim
//! scheduler. Cells run through the shared [`Executor`], so sim results
//! land in the same `results.json` as the STM figures — network model
//! and scenario are part of cell identity, and resume is byte-identical.
//!
//! Reported tables:
//!
//! * per scenario — makespan (virtual steps) and aborts per commit,
//!   rows = schedulers, columns = network models;
//! * the latency-degradation summary — `makespan(net) / makespan(zero)`
//!   on the paper's fig2-shape window, the headline number for how much
//!   a window CM's guarantees erode when the verdict is no longer
//!   instantaneous.

use crate::experiment::{CellResult, Executor, ExperimentSpec, SimAxes};
use crate::preset::Preset;
use crate::report::Table;
use crate::runner::StopRule;

/// Network sweep every sim cell runs under: the paper's instantaneous
/// verdict, then 1- and 4-step verdict delivery.
pub const SIM_NETS: &[&str] = &["zero", "fixed:1", "fixed:4"];

/// Transaction duration τ used by the sim sweep (matches the
/// determinism-gate fixtures).
pub const SIM_TAU: u32 = 2;

/// Scenario specs swept by `windowtm sim`: every registry entry, with
/// the distributed ones pinned to small parameterizations that stay
/// meaningful at smoke scale.
pub fn sim_scenario_specs() -> Vec<String> {
    vec![
        "fig2-shape".into(),
        "clustered".into(),
        "distributed@nodes=4,skew=1".into(),
        "replicated@nodes=2".into(),
        "crash-recovery@nodes=2,node=1,at=8,down=16".into(),
    ]
}

/// The sim grid: `scenarios × nets × {preset.sim_m} × schedulers`.
pub fn sim_spec(preset: &Preset) -> ExperimentSpec {
    let mut s = ExperimentSpec::new("sim", StopRule::Budget(0));
    s.managers = wtm_sim::SIM_SCHEDULER_NAMES
        .iter()
        .map(|m| m.to_string())
        .collect();
    s.threads = vec![preset.sim_m];
    s.window_n = preset.sim_n;
    s.reps = preset.reps;
    s.base_seed = preset.seed;
    s.sim = Some(SimAxes {
        scenarios: sim_scenario_specs(),
        nets: SIM_NETS.iter().map(|n| n.to_string()).collect(),
        tau: SIM_TAU,
    });
    s
}

fn find<'a>(
    results: &'a [CellResult],
    scenario: &str,
    scheduler: &str,
    net: &str,
) -> Option<&'a CellResult> {
    results
        .iter()
        .find(|r| r.workload == scenario && r.manager == scheduler && r.net.as_deref() == Some(net))
}

/// Project one metric of one scenario: rows = schedulers, columns = nets.
fn scenario_table(
    spec: &ExperimentSpec,
    results: &[CellResult],
    scenario: &str,
    metric: &str,
    title: String,
) -> Table {
    let nets: Vec<String> = SIM_NETS.iter().map(|n| n.to_string()).collect();
    let mut t = Table::new(title, "scheduler", nets);
    for sched in &spec.managers {
        let (means, sds): (Vec<f64>, Vec<f64>) = SIM_NETS
            .iter()
            .map(|net| {
                find(results, scenario, sched, net)
                    .map(|r| {
                        let a = r.metric(metric);
                        (a.mean, a.sd)
                    })
                    .unwrap_or((f64::NAN, f64::NAN))
            })
            .unzip();
        t.push_row_sd(sched.clone(), means, sds);
    }
    t
}

/// Run the sim sweep and render every table.
pub fn sim_tables(preset: &Preset, exec: &mut Executor) -> Vec<Table> {
    let spec = sim_spec(preset);
    let results = exec.run(&spec);
    let (m, n) = (preset.sim_m, preset.sim_n);

    let mut tables = Vec::new();
    for scenario in sim_scenario_specs() {
        tables.push(scenario_table(
            &spec,
            &results,
            &scenario,
            "makespan",
            format!("Sim makespan (steps) vs verdict latency — {scenario} (M={m}, N={n}, tau={SIM_TAU})"),
        ));
        tables.push(scenario_table(
            &spec,
            &results,
            &scenario,
            "aborts_per_commit",
            format!("Sim aborts per commit vs verdict latency — {scenario} (M={m}, N={n}, tau={SIM_TAU})"),
        ));
    }

    // The headline summary: how much each scheduler's makespan degrades on
    // the paper's own window shape when the verdict takes 1 or 4 steps.
    let mut deg = Table::new(
        format!("Sim latency degradation: makespan(net)/makespan(zero) — fig2-shape (M={m}, N={n}, tau={SIM_TAU})"),
        "scheduler",
        SIM_NETS.iter().skip(1).map(|n| n.to_string()).collect(),
    );
    for sched in &spec.managers {
        let base = find(&results, "fig2-shape", sched, "zero")
            .map(|r| r.metric("makespan").mean)
            .unwrap_or(f64::NAN);
        let row: Vec<f64> = SIM_NETS
            .iter()
            .skip(1)
            .map(|net| {
                find(&results, "fig2-shape", sched, net)
                    .map(|r| r.metric("makespan").mean / base)
                    .unwrap_or(f64::NAN)
            })
            .collect();
        deg.push_row(sched.clone(), row);
    }
    tables.push(deg);
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_smoke_produces_full_tables() {
        let p = Preset::smoke();
        let dir = std::env::temp_dir().join(format!("wtm_sim_tables_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut exec = Executor::new(&dir);
        let tables = sim_tables(&p, &mut exec);
        // Two tables per scenario plus the degradation summary.
        assert_eq!(tables.len(), sim_scenario_specs().len() * 2 + 1);
        for t in &tables[..tables.len() - 1] {
            assert_eq!(t.columns.len(), SIM_NETS.len());
            assert_eq!(t.rows.len(), wtm_sim::SIM_SCHEDULER_NAMES.len());
        }
        // Makespan tables are strictly positive and finite.
        assert!(
            tables[0]
                .cells
                .iter()
                .flatten()
                .all(|v| v.is_finite() && *v > 0.0),
            "{}",
            tables[0].render()
        );
        // Degradation ratios are well-defined. (They are not necessarily
        // >= 1: a delayed verdict lets the loser keep executing, which can
        // accidentally help abort-happy schedulers like OneShot.)
        let deg = tables.last().unwrap();
        assert_eq!(deg.columns, vec!["fixed:1", "fixed:4"]);
        for (r, row) in deg.cells.iter().enumerate() {
            for v in row {
                assert!(v.is_finite() && *v > 0.0, "{}: bad ratio {v}", deg.rows[r]);
            }
        }
        // Everything was checkpointed with v3 sim keys.
        let json = std::fs::read_to_string(dir.join("results.json")).unwrap();
        assert!(
            json.contains("\"net\": \"fixed:4\""),
            "net field serialized"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
