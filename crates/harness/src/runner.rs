//! Execute one experiment cell: `(benchmark, manager, threads, stop rule)`.
//!
//! The runner mirrors the paper's §III setup: `M` worker threads issue a
//! deterministic stream of benchmark operations, one transaction each,
//! until either a wall-clock deadline (Figs. 2–4: "we run the experiments
//! for 10 seconds") or a shared transaction budget (Fig. 5: "commit 20000
//! transactions") fires. Workers synchronize their start on a barrier so
//! the measured interval is common.
//!
//! The data structures are prepopulated to half the key range through a
//! *separate* single-threaded engine, so prepopulation transactions never
//! interact with the manager under test (in particular they cannot
//! deadlock a window barrier expecting `M` parties).

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use wtm_stm::{StatsSnapshot, Stm, TxResult, Txn};
use wtm_workloads::{
    Benchmark, OpKind, SetOpGenerator, TxIntSet, TxList, TxRBTree, TxSkipList, Vacation,
    VacationConfig, VacationOpGenerator,
};

use crate::managers::build_manager;

/// When a run stops.
#[derive(Debug, Clone, Copy)]
pub enum StopRule {
    /// Run for a fixed wall-clock interval (Figs. 2–4).
    Timed(Duration),
    /// Run until this many transactions committed in total (Fig. 5).
    Budget(u64),
}

/// Full description of one run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    pub benchmark: Benchmark,
    /// Manager name (see [`crate::managers::all_manager_names`]).
    pub manager: String,
    /// `M`, the number of worker threads.
    pub threads: usize,
    pub stop: StopRule,
    /// Key range for the IntSet benchmarks / row count for Vacation.
    pub key_range: i64,
    /// Percentage of updating operations (Fig. 5's contention knob).
    pub update_pct: u32,
    /// `N`, transactions per thread per window (window managers only).
    pub window_n: usize,
    pub seed: u64,
    /// Hard wall-clock cap on a [`StopRule::Budget`] run. A pathological
    /// manager/benchmark combination that cannot reach the commit budget
    /// used to hang the harness forever; now the run stops here, reports
    /// the partial stats, and the outcome is flagged
    /// [`RunOutcome::truncated`]. Generous by default — a healthy budget
    /// run finishes orders of magnitude sooner.
    pub safety_deadline: Duration,
    /// Record transaction events into the `wtm-trace` ring buffers for
    /// the measured interval (prepopulation is never traced).
    pub trace: bool,
}

impl RunSpec {
    /// A spec with the paper's defaults for the given cell.
    pub fn new(benchmark: Benchmark, manager: &str, threads: usize, stop: StopRule) -> Self {
        RunSpec {
            key_range: benchmark.default_key_range(),
            benchmark,
            manager: manager.to_string(),
            threads,
            stop,
            update_pct: 100, // Figs. 2–4 use the high-contention config
            window_n: 50,    // the paper's N
            seed: 0xBEEF,
            safety_deadline: Duration::from_secs(60),
            trace: false,
        }
    }
}

/// Aggregated result of one run.
#[derive(Debug, Clone, Copy)]
pub struct RunOutcome {
    /// Merged thread counters; `wall` is the measured interval.
    pub stats: StatsSnapshot,
    /// Wall time from the start barrier to the last worker exit.
    pub total_time: Duration,
    /// A budget run hit [`RunSpec::safety_deadline`] before committing its
    /// budget; `stats` are partial and reports must flag the row.
    pub truncated: bool,
}

enum Workload {
    Set(Box<dyn TxIntSet>),
    Vacation(Box<Vacation>),
}

fn build_workload(spec: &RunSpec) -> Workload {
    match spec.benchmark {
        Benchmark::List => Workload::Set(Box::new(TxList::new())),
        Benchmark::RBTree => Workload::Set(Box::new(TxRBTree::new(spec.key_range as usize + 8))),
        Benchmark::SkipList => Workload::Set(Box::new(TxSkipList::new())),
        Benchmark::Vacation => Workload::Vacation(Box::new(Vacation::new(VacationConfig {
            num_relations: spec.key_range,
            num_queries: 4,
            query_range_pct: 60,
            update_pct: spec.update_pct,
            seed: spec.seed,
        }))),
    }
}

/// Fill an IntSet to ~50% occupancy through a throwaway single-threaded
/// engine (see module docs).
fn prepopulate(set: &dyn TxIntSet, key_range: i64) {
    let stm = Stm::with_dispatch(wtm_stm::CmDispatch::AbortSelf, 1);
    let ctx = stm.thread(0);
    let mut k = 0;
    while k < key_range {
        ctx.atomic(|tx| set.insert(tx, k).map(|_| ()));
        k += 2;
    }
}

fn run_set_op(set: &dyn TxIntSet, tx: &mut Txn, kind: OpKind, key: i64) -> TxResult<()> {
    match kind {
        OpKind::Insert => set.insert(tx, key).map(|_| ()),
        OpKind::Remove => set.remove(tx, key).map(|_| ()),
        OpKind::Contains => set.contains(tx, key).map(|_| ()),
    }
}

/// Execute the run described by `spec`.
pub fn run_one(spec: &RunSpec) -> RunOutcome {
    let built = build_manager(&spec.manager, spec.threads, spec.window_n, spec.seed)
        .unwrap_or_else(|| panic!("unknown manager {:?}", spec.manager));
    let stm = Stm::with_dispatch(built.cm.clone(), spec.threads);

    let workload = build_workload(spec);
    if let Workload::Set(set) = &workload {
        prepopulate(set.as_ref(), spec.key_range);
    }

    let stop = AtomicBool::new(false);
    let truncated = AtomicBool::new(false);
    let remaining = AtomicI64::new(match spec.stop {
        StopRule::Budget(b) => b.min(i64::MAX as u64) as i64,
        StopRule::Timed(_) => i64::MAX,
    });
    // Budget runs used to have no deadline at all: if the budget was
    // unreachable, the harness hung silently forever. The safety deadline
    // bounds them; hitting it marks the outcome as truncated.
    let deadline_after = match spec.stop {
        StopRule::Timed(d) => Some(d),
        StopRule::Budget(_) => Some(spec.safety_deadline),
    };
    let budget_rule = matches!(spec.stop, StopRule::Budget(_));
    let start_barrier = Barrier::new(spec.threads + 1);

    if spec.trace {
        wtm_trace::set_enabled(true);
    }

    let mut total_time = Duration::ZERO;
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(spec.threads);
        for t in 0..spec.threads {
            let ctx = stm.thread(t);
            let stop = &stop;
            let truncated = &truncated;
            let remaining = &remaining;
            let start_barrier = &start_barrier;
            let workload = &workload;
            let built = &built;
            let spec = spec.clone();
            handles.push(s.spawn(move || {
                let mut set_gen =
                    SetOpGenerator::new(spec.seed, t, spec.key_range, spec.update_pct);
                let mut vac_gen = if let Workload::Vacation(v) = workload {
                    Some(VacationOpGenerator::new(v.config(), t))
                } else {
                    None
                };
                start_barrier.wait();
                let t0 = Instant::now();
                let deadline = deadline_after.map(|d| t0 + d);
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Some(dl) = deadline {
                        if Instant::now() >= dl {
                            if budget_rule {
                                truncated.store(true, Ordering::Relaxed);
                            }
                            stop.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                    if remaining.fetch_sub(1, Ordering::Relaxed) <= 0 {
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                    match workload {
                        Workload::Set(set) => {
                            let op = set_gen.next_op();
                            ctx.atomic(|tx| run_set_op(set.as_ref(), tx, op.kind, op.key));
                        }
                        Workload::Vacation(v) => {
                            let op = vac_gen.as_mut().expect("vacation generator").next_op();
                            ctx.atomic(|tx| v.run_op(tx, &op).map(|_| ()));
                        }
                    }
                }
                // Release any sibling parked at a window barrier; without
                // this, a thread that exits while others wait for the next
                // window would deadlock the run.
                built.cancel();
                t0.elapsed()
            }));
        }
        start_barrier.wait();
        for h in handles {
            total_time = total_time.max(h.join().expect("worker panicked"));
        }
    });

    if spec.trace {
        wtm_trace::set_enabled(false);
    }

    let truncated = truncated.load(Ordering::Relaxed);
    if truncated {
        eprintln!(
            "wtm-harness: budget run ({:?} on {}, {} threads) hit its safety deadline \
             ({:?}) before committing the budget; reporting partial stats",
            spec.benchmark.name(),
            spec.manager,
            spec.threads,
            spec.safety_deadline,
        );
    }

    let mut stats = stm.aggregate();
    stats.wall = match spec.stop {
        // The common measured interval; workers stop within one
        // transaction of the deadline.
        StopRule::Timed(d) => d,
        StopRule::Budget(_) => total_time,
    };
    RunOutcome {
        stats,
        total_time,
        truncated,
    }
}

/// Run `reps` repetitions (distinct seeds) and average commits/aborts;
/// wall times are averaged too. "The data plotted are the average of 6
/// experiments" (§III).
pub fn run_averaged(spec: &RunSpec, reps: usize) -> RunOutcome {
    assert!(reps >= 1);
    let mut merged: Option<RunOutcome> = None;
    for r in 0..reps {
        let mut s = spec.clone();
        s.seed = spec.seed.wrapping_add(r as u64 * 0x9E37);
        let out = run_one(&s);
        merged = Some(match merged {
            None => out,
            Some(acc) => RunOutcome {
                stats: {
                    let mut m = acc.stats;
                    m.merge(&out.stats);
                    // merge() maxes wall; we want the common interval, so
                    // restore the sum-of-walls semantics by averaging at
                    // the end instead. Track by accumulating commits etc.
                    m.wall = acc.stats.wall + out.stats.wall;
                    m
                },
                total_time: acc.total_time + out.total_time,
                truncated: acc.truncated || out.truncated,
            },
        });
    }
    let mut out = merged.expect("reps >= 1");
    // Throughput = total commits / total wall across reps — equivalent to
    // averaging per-rep throughput when intervals are equal.
    out.total_time /= reps as u32;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec(bench: Benchmark, manager: &str, threads: usize) -> RunSpec {
        let mut s = RunSpec::new(
            bench,
            manager,
            threads,
            StopRule::Timed(Duration::from_millis(80)),
        );
        s.window_n = 8;
        s.key_range = 32;
        s
    }

    #[test]
    fn timed_run_commits_on_every_benchmark() {
        for bench in Benchmark::all() {
            let out = run_one(&quick_spec(*bench, "Greedy", 2));
            assert!(
                out.stats.commits > 0,
                "{} must commit something",
                bench.name()
            );
            assert!(out.stats.wall >= Duration::from_millis(80));
        }
    }

    #[test]
    fn window_manager_run_completes() {
        for manager in ["Online-Dynamic", "Adaptive-Improved-Dynamic"] {
            let out = run_one(&quick_spec(Benchmark::List, manager, 2));
            assert!(out.stats.commits > 0, "{manager}");
        }
    }

    #[test]
    fn budget_run_commits_exactly_budget_or_slightly_more() {
        let mut spec = quick_spec(Benchmark::RBTree, "Polka", 2);
        spec.stop = StopRule::Budget(200);
        let out = run_one(&spec);
        // Each worker checks the budget before issuing, so overshoot is
        // bounded by the thread count.
        assert!(out.stats.commits >= 200 - 2);
        assert!(out.stats.commits <= 200 + 2);
        assert!(out.total_time > Duration::ZERO);
    }

    #[test]
    fn budget_run_with_window_manager_terminates() {
        let mut spec = quick_spec(Benchmark::SkipList, "Online-Dynamic", 3);
        spec.stop = StopRule::Budget(150);
        let out = run_one(&spec);
        assert!(out.stats.commits >= 140);
    }

    #[test]
    fn budget_run_hits_safety_deadline_and_reports_partial() {
        // An effectively unreachable budget: without the safety deadline
        // this run would hang forever.
        let mut spec = quick_spec(Benchmark::List, "Greedy", 2);
        spec.stop = StopRule::Budget(u64::MAX / 2);
        spec.safety_deadline = Duration::from_millis(100);
        let t0 = Instant::now();
        let out = run_one(&spec);
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "run must stop at the safety deadline, took {:?}",
            t0.elapsed()
        );
        assert!(out.truncated, "deadline-hit run must be flagged");
        assert!(
            out.stats.commits > 0,
            "partial stats must still be reported"
        );
    }

    #[test]
    fn completed_budget_run_is_not_truncated() {
        let mut spec = quick_spec(Benchmark::RBTree, "Polka", 2);
        spec.stop = StopRule::Budget(200);
        let out = run_one(&spec);
        assert!(!out.truncated);
    }

    #[test]
    fn averaging_accumulates_reps() {
        let spec = quick_spec(Benchmark::List, "Priority", 1);
        let one = run_one(&spec);
        let avg = run_averaged(&spec, 2);
        assert!(avg.stats.commits > one.stats.commits / 2);
        assert!(avg.stats.wall >= one.stats.wall);
    }
}
