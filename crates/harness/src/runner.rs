//! Execute one experiment cell: `(workload, manager, threads, stop rule)`.
//!
//! The runner mirrors the paper's §III setup: `M` worker threads issue a
//! deterministic stream of workload operations, one transaction each,
//! until either a wall-clock deadline (Figs. 2–4: "we run the experiments
//! for 10 seconds") or a shared transaction budget (Fig. 5: "commit 20000
//! transactions") fires. Workers synchronize their start on a barrier so
//! the measured interval is common.
//!
//! Workloads are resolved by name through the
//! [`wtm_workloads::registry`]; the runner itself knows nothing about any
//! particular benchmark. Prepopulation happens through a *separate*
//! single-threaded engine, so prepopulation transactions never interact
//! with the manager under test (in particular they cannot deadlock a
//! window barrier expecting `M` parties).

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use wtm_stm::{EngineKind, StatsSnapshot, Stm};
use wtm_workloads::{build_workload, default_key_range, WorkloadParams};

use crate::managers::build_manager;

/// When a run stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopRule {
    /// Run for a fixed wall-clock interval (Figs. 2–4).
    Timed(Duration),
    /// Run until this many transactions committed in total (Fig. 5).
    Budget(u64),
}

/// Full description of one run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Workload name (see [`wtm_workloads::workload_names`]).
    pub workload: String,
    /// Manager name (see [`crate::managers::all_manager_names`]),
    /// optionally parameterized (`Online-Dynamic@phi=2`).
    pub manager: String,
    /// `M`, the number of worker threads.
    pub threads: usize,
    pub stop: StopRule,
    /// Workload size knob: key range for the IntSet workloads, row count
    /// for Vacation, genome length, KMeans point count. `0` means the
    /// registry's per-workload default.
    pub key_range: i64,
    /// Percentage of updating operations (Fig. 5's contention knob).
    pub update_pct: u32,
    /// `N`, transactions per thread per window (window managers only).
    pub window_n: usize,
    /// Which STM engine executes the run: the paper's eager substrate or
    /// the TL2-style lazy backend.
    pub engine: EngineKind,
    pub seed: u64,
    /// Hard wall-clock cap on a [`StopRule::Budget`] run. A pathological
    /// manager/workload combination that cannot reach the commit budget
    /// used to hang the harness forever; now the run stops here, reports
    /// the partial stats, and the outcome is flagged
    /// [`RunOutcome::truncated`]. Generous by default — a healthy budget
    /// run finishes orders of magnitude sooner.
    pub safety_deadline: Duration,
    /// Record transaction events into the `wtm-trace` ring buffers for
    /// the measured interval (prepopulation is never traced).
    pub trace: bool,
}

impl RunSpec {
    /// A spec with the paper's defaults for the given cell.
    pub fn new(workload: &str, manager: &str, threads: usize, stop: StopRule) -> Self {
        RunSpec {
            key_range: default_key_range(workload).unwrap_or(0),
            workload: workload.to_string(),
            manager: manager.to_string(),
            threads,
            stop,
            update_pct: 100, // Figs. 2–4 use the high-contention config
            window_n: 50,    // the paper's N
            engine: EngineKind::Eager,
            seed: 0xBEEF,
            safety_deadline: Duration::from_secs(60),
            trace: false,
        }
    }
}

/// Aggregated result of one run.
#[derive(Debug, Clone, Copy)]
pub struct RunOutcome {
    /// Merged thread counters; `wall` is the measured interval.
    pub stats: StatsSnapshot,
    /// Wall time from the start barrier to the last worker exit.
    pub total_time: Duration,
    /// A budget run hit [`RunSpec::safety_deadline`] before committing its
    /// budget; `stats` are partial and reports must flag the row.
    pub truncated: bool,
}

/// Execute the run described by `spec`. Panics on unknown workload or
/// manager names — drivers validate names up front via the registries.
pub fn run_one(spec: &RunSpec) -> RunOutcome {
    let built = build_manager(&spec.manager, spec.threads, spec.window_n, spec.seed)
        .unwrap_or_else(|e| panic!("{e}"));
    let stm = Stm::with_engine(built.cm.clone(), spec.threads, spec.engine);

    let params = WorkloadParams {
        key_range: spec.key_range,
        update_pct: spec.update_pct,
        seed: spec.seed,
        threads: spec.threads,
    };
    let workload = build_workload(&spec.workload, &params)
        .unwrap_or_else(|| panic!("unknown workload {:?}", spec.workload));
    {
        // Prepopulate through a throwaway single-threaded engine so these
        // transactions never meet the manager under test. Sequential
        // cross-engine reuse of a TVar is safe (only *concurrent* mixing
        // is forbidden), but running the measured engine kind here too
        // keeps the whole run on one protocol.
        let prep = Stm::with_engine(wtm_stm::CmDispatch::AbortSelf, 1, spec.engine);
        workload.prepopulate(&prep.thread(0));
    }

    let stop = AtomicBool::new(false);
    let truncated = AtomicBool::new(false);
    let remaining = AtomicI64::new(match spec.stop {
        StopRule::Budget(b) => b.min(i64::MAX as u64) as i64,
        StopRule::Timed(_) => i64::MAX,
    });
    // Budget runs used to have no deadline at all: if the budget was
    // unreachable, the harness hung silently forever. The safety deadline
    // bounds them; hitting it marks the outcome as truncated.
    let deadline_after = match spec.stop {
        StopRule::Timed(d) => Some(d),
        StopRule::Budget(_) => Some(spec.safety_deadline),
    };
    let budget_rule = matches!(spec.stop, StopRule::Budget(_));
    let start_barrier = Barrier::new(spec.threads + 1);

    if spec.trace {
        wtm_trace::set_enabled(true);
    }

    let mut total_time = Duration::ZERO;
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(spec.threads);
        for t in 0..spec.threads {
            let ctx = stm.thread(t);
            let stop = &stop;
            let truncated = &truncated;
            let remaining = &remaining;
            let start_barrier = &start_barrier;
            let workload = &workload;
            let built = &built;
            handles.push(s.spawn(move || {
                let mut stream = workload.stream(t);
                start_barrier.wait();
                let t0 = Instant::now();
                let deadline = deadline_after.map(|d| t0 + d);
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Some(dl) = deadline {
                        if Instant::now() >= dl {
                            if budget_rule {
                                truncated.store(true, Ordering::Relaxed);
                            }
                            stop.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                    if remaining.fetch_sub(1, Ordering::Relaxed) <= 0 {
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                    stream.step(&ctx);
                }
                // Release any sibling parked at a window barrier; without
                // this, a thread that exits while others wait for the next
                // window would deadlock the run.
                built.cancel();
                t0.elapsed()
            }));
        }
        start_barrier.wait();
        for h in handles {
            total_time = total_time.max(h.join().expect("worker panicked"));
        }
    });

    if spec.trace {
        wtm_trace::set_enabled(false);
    }

    let truncated = truncated.load(Ordering::Relaxed);
    if truncated {
        eprintln!(
            "wtm-harness: budget run ({} on {}, {} threads) hit its safety deadline \
             ({:?}) before committing the budget; reporting partial stats",
            spec.workload, spec.manager, spec.threads, spec.safety_deadline,
        );
    }

    let mut stats = stm.aggregate();
    stats.wall = match spec.stop {
        // The common measured interval; workers stop within one
        // transaction of the deadline.
        StopRule::Timed(d) => d,
        StopRule::Budget(_) => total_time,
    };
    RunOutcome {
        stats,
        total_time,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtm_workloads::workload_names;

    fn quick_spec(workload: &str, manager: &str, threads: usize) -> RunSpec {
        let mut s = RunSpec::new(
            workload,
            manager,
            threads,
            StopRule::Timed(Duration::from_millis(80)),
        );
        s.window_n = 8;
        s.key_range = 32;
        s
    }

    #[test]
    fn timed_run_commits_on_every_registered_workload() {
        for name in workload_names() {
            let out = run_one(&quick_spec(name, "Greedy", 2));
            assert!(out.stats.commits > 0, "{name} must commit something");
            assert!(out.stats.wall >= Duration::from_millis(80));
        }
    }

    #[test]
    fn lazy_engine_run_commits_on_every_registered_workload() {
        for name in workload_names() {
            let mut spec = quick_spec(name, "Greedy", 2);
            spec.engine = EngineKind::Lazy;
            let out = run_one(&spec);
            assert!(out.stats.commits > 0, "{name} must commit under lazy");
        }
    }

    #[test]
    fn lazy_engine_budget_run_with_window_manager_terminates() {
        let mut spec = quick_spec("SkipList", "Online-Dynamic", 3);
        spec.stop = StopRule::Budget(150);
        spec.engine = EngineKind::Lazy;
        let out = run_one(&spec);
        assert!(out.stats.commits >= 140);
    }

    #[test]
    fn window_manager_run_completes() {
        for manager in ["Online-Dynamic", "Adaptive-Improved-Dynamic"] {
            let out = run_one(&quick_spec("List", manager, 2));
            assert!(out.stats.commits > 0, "{manager}");
        }
    }

    #[test]
    fn parameterized_manager_run_completes() {
        let out = run_one(&quick_spec("List", "Online-Dynamic@phi=2,n=4", 2));
        assert!(out.stats.commits > 0);
    }

    #[test]
    fn budget_run_commits_exactly_budget_or_slightly_more() {
        let mut spec = quick_spec("RBTree", "Polka", 2);
        spec.stop = StopRule::Budget(200);
        let out = run_one(&spec);
        // Each worker checks the budget before issuing, so overshoot is
        // bounded by the thread count.
        assert!(out.stats.commits >= 200 - 2);
        assert!(out.stats.commits <= 200 + 2);
        assert!(out.total_time > Duration::ZERO);
    }

    #[test]
    fn budget_run_with_window_manager_terminates() {
        let mut spec = quick_spec("SkipList", "Online-Dynamic", 3);
        spec.stop = StopRule::Budget(150);
        let out = run_one(&spec);
        assert!(out.stats.commits >= 140);
    }

    #[test]
    fn budget_run_hits_safety_deadline_and_reports_partial() {
        // An effectively unreachable budget: without the safety deadline
        // this run would hang forever.
        let mut spec = quick_spec("List", "Greedy", 2);
        spec.stop = StopRule::Budget(u64::MAX / 2);
        spec.safety_deadline = Duration::from_millis(100);
        let t0 = Instant::now();
        let out = run_one(&spec);
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "run must stop at the safety deadline, took {:?}",
            t0.elapsed()
        );
        assert!(out.truncated, "deadline-hit run must be flagged");
        assert!(
            out.stats.commits > 0,
            "partial stats must still be reported"
        );
    }

    #[test]
    fn completed_budget_run_is_not_truncated() {
        let mut spec = quick_spec("RBTree", "Polka", 2);
        spec.stop = StopRule::Budget(200);
        let out = run_one(&spec);
        assert!(!out.truncated);
    }
}
