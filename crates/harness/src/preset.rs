//! Experiment scale presets.

use std::time::Duration;

use wtm_stm::EngineKind;

/// How big every experiment is. `paper()` reproduces the paper's setup;
/// `quick()` shrinks everything so the full figure suite runs in minutes
/// on a laptop/CI box.
#[derive(Debug, Clone)]
pub struct Preset {
    /// Wall-clock interval for the timed runs (paper: 10 s).
    pub duration: Duration,
    /// Repetitions averaged per cell (paper: 6).
    pub reps: usize,
    /// Thread sweep `M` (paper: 1, 2, 4, 8, 16, 32).
    pub thread_counts: Vec<usize>,
    /// Transactions per thread per window (paper: N = 50).
    pub window_n: usize,
    /// Fig. 5 budget (paper: 20 000 transactions).
    pub budget: u64,
    /// Fig. 5 thread count (paper: 32).
    pub fig5_threads: usize,
    /// Simulator scale for the theory tables.
    pub sim_m: usize,
    pub sim_n: usize,
    /// Base seed for the experiment engine's per-cell seed derivation
    /// (`--seed` overrides it).
    pub seed: u64,
    /// Which STM engine executes every run (`--engine` overrides it).
    /// The paper's substrate is eager; `lazy` is the TL2-style backend.
    pub engine: EngineKind,
    /// Label used in report headers.
    pub name: &'static str,
}

impl Preset {
    /// The paper's configuration (§III): long, only sensible on a machine
    /// you are happy to occupy for a while.
    pub fn paper() -> Self {
        Preset {
            duration: Duration::from_secs(10),
            reps: 6,
            thread_counts: vec![1, 2, 4, 8, 16, 32],
            window_n: 50,
            budget: 20_000,
            fig5_threads: 32,
            sim_m: 32,
            sim_n: 50,
            seed: 0xBEEF,
            engine: EngineKind::Eager,
            name: "paper",
        }
    }

    /// The paper's full sweep (M up to 32, N = 50, 20 000-txn budget) at
    /// reduced duration/repetitions: the recommended setting for
    /// regenerating EXPERIMENTS.md on one machine in ~half an hour.
    pub fn medium() -> Self {
        Preset {
            duration: Duration::from_secs(1),
            reps: 3,
            thread_counts: vec![1, 2, 4, 8, 16, 32],
            window_n: 50,
            budget: 20_000,
            fig5_threads: 32,
            sim_m: 32,
            sim_n: 50,
            seed: 0xBEEF,
            engine: EngineKind::Eager,
            name: "medium",
        }
    }

    /// CI-sized: same shapes, two orders of magnitude less wall time.
    pub fn quick() -> Self {
        Preset {
            duration: Duration::from_millis(250),
            reps: 2,
            thread_counts: vec![1, 2, 4, 8],
            window_n: 16,
            budget: 2_000,
            fig5_threads: 8,
            sim_m: 16,
            sim_n: 24,
            seed: 0xBEEF,
            engine: EngineKind::Eager,
            name: "quick",
        }
    }

    /// Even smaller: used by the test suite.
    pub fn smoke() -> Self {
        Preset {
            duration: Duration::from_millis(60),
            reps: 1,
            thread_counts: vec![1, 2],
            window_n: 8,
            budget: 150,
            fig5_threads: 2,
            sim_m: 6,
            sim_n: 8,
            seed: 0xBEEF,
            engine: EngineKind::Eager,
            name: "smoke",
        }
    }

    /// Parse `--quick` / `--paper` / `--smoke`.
    pub fn by_name(name: &str) -> Option<Preset> {
        match name {
            "paper" => Some(Self::paper()),
            "medium" => Some(Self::medium()),
            "quick" => Some(Self::quick()),
            "smoke" => Some(Self::smoke()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse_by_name() {
        for n in ["paper", "medium", "quick", "smoke"] {
            let p = Preset::by_name(n).unwrap();
            assert_eq!(p.name, n);
            assert!(!p.thread_counts.is_empty());
            assert!(p.reps >= 1);
        }
        assert!(Preset::by_name("bogus").is_none());
    }

    #[test]
    fn paper_matches_the_paper() {
        let p = Preset::paper();
        assert_eq!(p.duration, Duration::from_secs(10));
        assert_eq!(p.reps, 6);
        assert_eq!(p.thread_counts, vec![1, 2, 4, 8, 16, 32]);
        assert_eq!(p.window_n, 50);
        assert_eq!(p.budget, 20_000);
        assert_eq!(p.fig5_threads, 32);
    }
}
