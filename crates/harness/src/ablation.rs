//! Ablations of the window-manager design choices (DESIGN.md §3).
//!
//! The paper motivates several knobs without sweeping them; these tables
//! quantify each one:
//!
//! * **A1 — frame factor**: the constant `c` in `Φ = c·ln(MN)` trades
//!   randomization spread against dead frame time.
//! * **A2 — window width `N`**: a longer window amortizes the barrier and
//!   randomization overhead over more transactions (the SkipList overhead
//!   of Fig. 5 shrinks as `N` grows).
//! * **A3 — dynamic contraction**: static vs dynamic frames, isolating
//!   §III-B's claim that "dynamic variants always perform better".
//! * **A4 — contention estimate `C`**: what the Online variants lose when
//!   the configured `C` is wrong by ×¼ … ×16.

use std::time::Duration;

use wtm_window::{WindowConfig, WindowManager, WindowVariant};
use wtm_workloads::Benchmark;

use crate::preset::Preset;
use crate::report::Table;
use crate::runner::{run_one, RunSpec, StopRule};

fn throughput_with_cfg(
    bench: Benchmark,
    variant: WindowVariant,
    threads: usize,
    duration: Duration,
    cfg_mod: impl Fn(WindowConfig) -> WindowConfig,
    seed: u64,
) -> f64 {
    // Bypass the name-based factory so the ablation can hand-tune the
    // window configuration.
    use std::sync::Arc;
    use wtm_stm::Stm;
    let cfg = cfg_mod(WindowConfig::new(threads, 16).with_seed(seed));
    let wm = Arc::new(WindowManager::new(variant, cfg));
    let stm = Stm::new(wm.clone(), threads);
    let set: Box<dyn wtm_workloads::TxIntSet> = match bench {
        Benchmark::List => Box::new(wtm_workloads::TxList::new()),
        Benchmark::RBTree => Box::new(wtm_workloads::TxRBTree::new(
            bench.default_key_range() as usize + 8,
        )),
        Benchmark::SkipList => Box::new(wtm_workloads::TxSkipList::new()),
        Benchmark::Vacation => unreachable!("ablations use the IntSet benchmarks"),
    };
    {
        let boot = Stm::with_dispatch(wtm_stm::CmDispatch::AbortSelf, 1);
        let ctx = boot.thread(0);
        let mut k = 0;
        while k < bench.default_key_range() {
            ctx.atomic(|tx| set.insert(tx, k).map(|_| ()));
            k += 2;
        }
    }
    let stop = std::sync::atomic::AtomicBool::new(false);
    let commits = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..threads {
            let ctx = stm.thread(t);
            let set = set.as_ref();
            let stop = &stop;
            let commits = &commits;
            let wm = &wm;
            s.spawn(move || {
                let mut gen =
                    wtm_workloads::SetOpGenerator::new(seed, t, bench.default_key_range(), 100);
                let deadline = std::time::Instant::now() + duration;
                let mut local = 0u64;
                while std::time::Instant::now() < deadline
                    && !stop.load(std::sync::atomic::Ordering::Relaxed)
                {
                    let op = gen.next_op();
                    ctx.atomic(|tx| match op.kind {
                        wtm_workloads::OpKind::Insert => set.insert(tx, op.key).map(|_| ()),
                        wtm_workloads::OpKind::Remove => set.remove(tx, op.key).map(|_| ()),
                        wtm_workloads::OpKind::Contains => set.contains(tx, op.key).map(|_| ()),
                    });
                    local += 1;
                }
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
                wm.cancel();
                commits.fetch_add(local, std::sync::atomic::Ordering::Relaxed);
            });
        }
    });
    commits.load(std::sync::atomic::Ordering::Relaxed) as f64 / duration.as_secs_f64()
}

/// A1: throughput vs the frame factor `c` (List, Online-Dynamic).
pub fn a1_frame_factor(preset: &Preset) -> Table {
    let threads = preset.thread_counts.last().copied().unwrap_or(2);
    let mut t = Table::new(
        format!("A1: throughput vs frame factor c (List, Online-Dynamic, M={threads})"),
        "phi_factor",
        vec!["txn/s".into()],
    );
    for phi in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let thr = throughput_with_cfg(
            Benchmark::List,
            WindowVariant::OnlineDynamic,
            threads,
            preset.duration,
            |mut c| {
                c.phi_factor = phi;
                c
            },
            42,
        );
        t.push_row(format!("{phi}"), vec![thr]);
    }
    t
}

/// A2: throughput vs window width `N` (SkipList — where the per-window
/// overhead is most visible).
pub fn a2_window_width(preset: &Preset) -> Table {
    let threads = preset.thread_counts.last().copied().unwrap_or(2);
    let mut t = Table::new(
        format!(
            "A2: throughput vs window width N (SkipList, Adaptive-Improved-Dynamic, M={threads})"
        ),
        "N",
        vec!["txn/s".into()],
    );
    for n in [4usize, 16, 50, 200] {
        let mut spec = RunSpec::new(
            Benchmark::SkipList,
            "Adaptive-Improved-Dynamic",
            threads,
            StopRule::Timed(preset.duration),
        );
        spec.window_n = n;
        let out = run_one(&spec);
        t.push_row(n.to_string(), vec![out.stats.throughput()]);
    }
    t
}

/// A3: static vs dynamic frames across benchmarks (§III-B's claim).
pub fn a3_dynamic_vs_static(preset: &Preset) -> Table {
    let threads = preset.thread_counts.last().copied().unwrap_or(2);
    let mut t = Table::new(
        format!("A3: dynamic vs static frames, throughput (M={threads})"),
        "benchmark",
        vec![
            "Online".into(),
            "Online-Dynamic".into(),
            "dynamic/static".into(),
        ],
    );
    for bench in [Benchmark::List, Benchmark::RBTree, Benchmark::SkipList] {
        let run = |manager: &str| {
            let mut spec = RunSpec::new(bench, manager, threads, StopRule::Timed(preset.duration));
            spec.window_n = preset.window_n;
            run_one(&spec).stats.throughput()
        };
        let stat = run("Online");
        let dynamic = run("Online-Dynamic");
        t.push_row(
            bench.name(),
            vec![
                stat,
                dynamic,
                if stat > 0.0 { dynamic / stat } else { f64::NAN },
            ],
        );
    }
    t
}

/// A4: Online sensitivity to a mis-configured contention estimate.
pub fn a4_c_sensitivity(preset: &Preset) -> Table {
    let threads = preset.thread_counts.last().copied().unwrap_or(2);
    let base_c = threads as f64;
    let mut t = Table::new(
        format!(
            "A4: throughput vs configured C (List, Online-Dynamic, M={threads}, true C≈{base_c})"
        ),
        "C multiplier",
        vec!["txn/s".into()],
    );
    for mult in [0.25, 1.0, 4.0, 16.0] {
        let thr = throughput_with_cfg(
            Benchmark::List,
            WindowVariant::OnlineDynamic,
            threads,
            preset.duration,
            |c| c.with_c_init(base_c * mult),
            77,
        );
        t.push_row(format!("{mult}×"), vec![thr]);
    }
    t
}

/// All ablation tables.
pub fn ablation_tables(preset: &Preset) -> Vec<Table> {
    vec![
        a1_frame_factor(preset),
        a2_window_width(preset),
        a3_dynamic_vs_static(preset),
        a4_c_sensitivity(preset),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_produce_positive_throughput() {
        let p = Preset::smoke();
        for table in ablation_tables(&p) {
            for row in &table.cells {
                assert!(row[0] > 0.0, "dead cell in {}", table.title);
            }
        }
    }
}
