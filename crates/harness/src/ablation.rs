//! Ablations of the window-manager design choices (DESIGN.md §3).
//!
//! The paper motivates several knobs without sweeping them; these tables
//! quantify each one:
//!
//! * **A1 — frame factor**: the constant `c` in `Φ = c·ln(MN)` trades
//!   randomization spread against dead frame time.
//! * **A2 — window width `N`**: a longer window amortizes the barrier and
//!   randomization overhead over more transactions (the SkipList overhead
//!   of Fig. 5 shrinks as `N` grows).
//! * **A3 — dynamic contraction**: static vs dynamic frames, isolating
//!   §III-B's claim that "dynamic variants always perform better".
//! * **A4 — contention estimate `C`**: what the Online variants lose when
//!   the configured `C` is wrong by ×¼ … ×16.
//!
//! Every sweep is a plain [`ExperimentSpec`] over *parameterized manager
//! names* (`Online-Dynamic@phi=2,n=16` — see [`crate::managers`]): the
//! ablations ride the same executor, checkpointing, and variance
//! aggregation as the paper figures, instead of the bespoke hand-tuned
//! run loop this module used to carry.

use crate::experiment::{Executor, ExperimentSpec};
use crate::preset::Preset;
use crate::report::Table;
use crate::runner::StopRule;

fn spec_for(
    id: &str,
    preset: &Preset,
    workloads: &[&str],
    managers: Vec<String>,
) -> ExperimentSpec {
    let mut s = ExperimentSpec::new(id, StopRule::Timed(preset.duration));
    s.workloads = workloads.iter().map(|w| w.to_string()).collect();
    s.managers = managers;
    s.threads = vec![preset.thread_counts.last().copied().unwrap_or(2)];
    s.reps = preset.reps;
    s.window_n = preset.window_n;
    s.engine = preset.engine;
    s.base_seed = preset.seed;
    s
}

/// One-column sweep table: each manager variant becomes a row.
fn column_sweep(
    exec: &mut Executor,
    spec: &ExperimentSpec,
    title: String,
    row_key: &str,
    labels: &[String],
) -> Table {
    let results = exec.run(spec);
    let mut t = Table::new(title, row_key, vec!["txn/s".into()]);
    for (mgr, label) in spec.managers.iter().zip(labels) {
        let a = results
            .iter()
            .find(|r| &r.manager == mgr)
            .map(|r| r.metric("throughput"))
            .unwrap_or(crate::experiment::Agg {
                mean: f64::NAN,
                sd: f64::NAN,
            });
        t.push_row_sd(label.clone(), vec![a.mean], vec![a.sd]);
    }
    t
}

/// A1: throughput vs the frame factor `c` (List, Online-Dynamic; N = 16
/// keeps the sweep comparable to the historical capture).
pub fn a1_frame_factor(preset: &Preset, exec: &mut Executor) -> Table {
    let threads = preset.thread_counts.last().copied().unwrap_or(2);
    let phis = [0.5, 1.0, 2.0, 4.0, 8.0];
    let spec = spec_for(
        "a1",
        preset,
        &["List"],
        phis.iter()
            .map(|phi| format!("Online-Dynamic@phi={phi},n=16"))
            .collect(),
    );
    let labels: Vec<String> = phis.iter().map(|p| p.to_string()).collect();
    column_sweep(
        exec,
        &spec,
        format!("A1: throughput vs frame factor c (List, Online-Dynamic, M={threads})"),
        "phi_factor",
        &labels,
    )
}

/// A2: throughput vs window width `N` (SkipList — where the per-window
/// overhead is most visible).
pub fn a2_window_width(preset: &Preset, exec: &mut Executor) -> Table {
    let threads = preset.thread_counts.last().copied().unwrap_or(2);
    let widths = [4usize, 16, 50, 200];
    let spec = spec_for(
        "a2",
        preset,
        &["SkipList"],
        widths
            .iter()
            .map(|n| format!("Adaptive-Improved-Dynamic@n={n}"))
            .collect(),
    );
    let labels: Vec<String> = widths.iter().map(|n| n.to_string()).collect();
    column_sweep(
        exec,
        &spec,
        format!(
            "A2: throughput vs window width N (SkipList, Adaptive-Improved-Dynamic, M={threads})"
        ),
        "N",
        &labels,
    )
}

/// A3: static vs dynamic frames across benchmarks (§III-B's claim).
pub fn a3_dynamic_vs_static(preset: &Preset, exec: &mut Executor) -> Table {
    let threads = preset.thread_counts.last().copied().unwrap_or(2);
    let spec = spec_for(
        "a3",
        preset,
        &["List", "RBTree", "SkipList"],
        vec!["Online".into(), "Online-Dynamic".into()],
    );
    let results = exec.run(&spec);
    let mut t = Table::new(
        format!("A3: dynamic vs static frames, throughput (M={threads})"),
        "benchmark",
        vec![
            "Online".into(),
            "Online-Dynamic".into(),
            "dynamic/static".into(),
        ],
    );
    for workload in &spec.workloads {
        let thr = |mgr: &str| {
            results
                .iter()
                .find(|r| &r.workload == workload && r.manager == mgr)
                .map(|r| r.metric("throughput").mean)
                .unwrap_or(f64::NAN)
        };
        let stat = thr("Online");
        let dynamic = thr("Online-Dynamic");
        t.push_row(
            workload.clone(),
            vec![
                stat,
                dynamic,
                if stat > 0.0 { dynamic / stat } else { f64::NAN },
            ],
        );
    }
    t
}

/// A4: Online sensitivity to a mis-configured contention estimate.
pub fn a4_c_sensitivity(preset: &Preset, exec: &mut Executor) -> Table {
    let threads = preset.thread_counts.last().copied().unwrap_or(2);
    let base_c = threads as f64;
    let mults = [0.25, 1.0, 4.0, 16.0];
    let spec = spec_for(
        "a4",
        preset,
        &["List"],
        mults
            .iter()
            .map(|mult| format!("Online-Dynamic@c={},n=16", base_c * mult))
            .collect(),
    );
    let labels: Vec<String> = mults.iter().map(|m| format!("{m}×")).collect();
    column_sweep(
        exec,
        &spec,
        format!(
            "A4: throughput vs configured C (List, Online-Dynamic, M={threads}, true C≈{base_c})"
        ),
        "C multiplier",
        &labels,
    )
}

/// All ablation tables.
pub fn ablation_tables(preset: &Preset, exec: &mut Executor) -> Vec<Table> {
    vec![
        a1_frame_factor(preset, exec),
        a2_window_width(preset, exec),
        a3_dynamic_vs_static(preset, exec),
        a4_c_sensitivity(preset, exec),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_produce_positive_throughput() {
        let dir = std::env::temp_dir().join(format!("wtm_abl_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut exec = Executor::new(&dir);
        let p = Preset::smoke();
        for table in ablation_tables(&p, &mut exec) {
            for row in &table.cells {
                assert!(row[0] > 0.0, "dead cell in {}", table.title);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
