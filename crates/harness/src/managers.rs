//! Unified contention-manager factory: classic + window-based, with
//! optional per-name parameter overrides.
//!
//! A manager name may carry a parameter suffix,
//! `Base@key=value[,key=value…]`, understood for the window-based
//! managers:
//!
//! * `phi` — the frame-length factor `c` in `Φ = c·ln(MN)`
//!   ([`WindowConfig::phi_factor`]);
//! * `c`   — the initial contention estimate ([`WindowConfig::c_init`]);
//! * `n`   — the window width `N`, overriding the preset's value.
//!
//! This is what lets the ablation sweeps (A1/A2/A4) run through the same
//! declarative experiment engine as the paper figures instead of
//! hand-rolled run loops: `"Online-Dynamic@phi=2"` is just another
//! manager name.

use std::sync::Arc;

use wtm_stm::{CmDispatch, ContentionManager};
use wtm_window::{WindowConfig, WindowManager};

/// A constructed manager, with the window handle kept separately so the
/// runner can cancel window barriers at shutdown.
pub struct BuiltManager {
    /// The manager to install into the engine: classic managers dispatch
    /// monomorphically through their [`CmDispatch`] variant; window
    /// managers ride the `Dyn` extensibility fallback.
    pub cm: CmDispatch,
    /// Present iff the manager is window-based.
    pub window: Option<Arc<WindowManager>>,
}

impl std::fmt::Debug for BuiltManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltManager")
            .field("cm", &self.cm.name())
            .field("window", &self.window.is_some())
            .finish()
    }
}

impl BuiltManager {
    /// Release window barriers (no-op for classic managers).
    pub fn cancel(&self) {
        if let Some(w) = &self.window {
            w.cancel();
        }
    }
}

/// Every manager name the harness understands: the five window variants
/// first (Fig. 2 order), then the classic managers.
pub fn all_manager_names() -> Vec<&'static str> {
    let mut v = wtm_window::window_names();
    v.extend_from_slice(wtm_managers::classic_names());
    v
}

/// The paper's Fig. 3/4/5 comparison set: the two best window variants
/// plus the three classic baselines.
pub fn comparison_manager_names() -> Vec<&'static str> {
    vec![
        "Online-Dynamic",
        "Adaptive-Improved-Dynamic",
        "Polka",
        "Greedy",
        "Priority",
    ]
}

/// Why [`build_manager`] rejected a manager name.
///
/// Distinguishes "there is no such manager" from "the manager exists but
/// the `@key=value` suffix is malformed", so callers (CLI, experiment
/// specs) can print an actionable message instead of a bare "unknown
/// manager".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The base name matches no classic or window manager.
    UnknownName(String),
    /// The base name is known, but its parameter suffix is invalid.
    BadParams {
        /// The full name as given (base + suffix).
        name: String,
        /// What exactly is wrong with the suffix.
        reason: String,
    },
}

/// The parameter keys a `@key=value` suffix may use.
const PARAM_KEYS: &str = "`phi`, `c`, `n`";

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnknownName(name) => {
                write!(f, "unknown manager `{name}`")
            }
            BuildError::BadParams { name, reason } => {
                write!(
                    f,
                    "bad parameters in manager name `{name}`: {reason} \
                     (expected `Base@key=value[,key=value...]` with keys {PARAM_KEYS})"
                )
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// A parsed `Base@key=value,…` manager name.
struct ParsedName<'a> {
    base: &'a str,
    phi: Option<f64>,
    c_init: Option<f64>,
    window_n: Option<usize>,
}

impl ParsedName<'_> {
    fn has_params(&self) -> bool {
        self.phi.is_some() || self.c_init.is_some() || self.window_n.is_some()
    }
}

fn parse_name(name: &str) -> Result<ParsedName<'_>, String> {
    let Some((base, params)) = name.split_once('@') else {
        return Ok(ParsedName {
            base: name,
            phi: None,
            c_init: None,
            window_n: None,
        });
    };
    let mut parsed = ParsedName {
        base,
        phi: None,
        c_init: None,
        window_n: None,
    };
    for kv in params.split(',') {
        let Some((k, v)) = kv.split_once('=') else {
            return Err(format!("`{kv}` is not a `key=value` pair"));
        };
        let (k, v) = (k.trim(), v.trim());
        // Each key may appear at most once: `phi=2,phi=3` is almost
        // certainly a typo, and silently letting the last value win
        // would corrupt a sweep without any visible symptom.
        let duplicate = |prev: bool| {
            if prev {
                Err(format!("duplicate parameter key `{k}`"))
            } else {
                Ok(())
            }
        };
        let bad_value = |e: &dyn std::fmt::Display| format!("invalid value for `{k}`: {e} (`{v}`)");
        match k {
            "phi" => {
                duplicate(parsed.phi.is_some())?;
                parsed.phi = Some(v.parse().map_err(|e| bad_value(&e))?);
            }
            "c" => {
                duplicate(parsed.c_init.is_some())?;
                parsed.c_init = Some(v.parse().map_err(|e| bad_value(&e))?);
            }
            "n" => {
                duplicate(parsed.window_n.is_some())?;
                parsed.window_n = Some(v.parse().map_err(|e| bad_value(&e))?);
            }
            _ => return Err(format!("unknown parameter key `{k}`")),
        }
    }
    Ok(parsed)
}

/// Build a manager by name for `threads` workers. Window managers use a
/// `threads × window_n` window seeded with `seed`; a `@key=value` suffix
/// overrides individual window knobs (see the module docs).
///
/// Errors distinguish an unknown base name
/// ([`BuildError::UnknownName`]) from a malformed or misapplied
/// parameter suffix ([`BuildError::BadParams`]) — the latter includes
/// duplicate keys, unparsable values, unknown keys, and parameters
/// attached to a classic manager (which takes none).
pub fn build_manager(
    name: &str,
    threads: usize,
    window_n: usize,
    seed: u64,
) -> Result<BuiltManager, BuildError> {
    let parsed = parse_name(name).map_err(|reason| {
        // A malformed suffix on an unknown base is still reported as an
        // unknown name if the base itself doesn't exist.
        let base = name.split_once('@').map_or(name, |(b, _)| b);
        if wtm_managers::make_dispatch(base, threads).is_some()
            || wtm_window::window_names().contains(&base)
        {
            BuildError::BadParams {
                name: name.to_string(),
                reason,
            }
        } else {
            BuildError::UnknownName(base.to_string())
        }
    })?;
    if let Some(cm) = wtm_managers::make_dispatch(parsed.base, threads) {
        if parsed.has_params() {
            return Err(BuildError::BadParams {
                name: name.to_string(),
                reason: format!(
                    "`{}` is a classic manager and takes no window parameters",
                    parsed.base
                ),
            });
        }
        return Ok(BuiltManager { cm, window: None });
    }
    let mut cfg = WindowConfig::new(threads, parsed.window_n.unwrap_or(window_n)).with_seed(seed);
    if let Some(phi) = parsed.phi {
        cfg.phi_factor = phi;
    }
    if let Some(c) = parsed.c_init {
        cfg = cfg.with_c_init(c);
    }
    match wtm_window::make_window_manager(parsed.base, cfg) {
        Some(wm) => Ok(BuiltManager {
            cm: CmDispatch::Dyn(wm.clone() as Arc<dyn ContentionManager>),
            window: Some(wm),
        }),
        None => Err(BuildError::UnknownName(parsed.base.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_builds() {
        for name in all_manager_names() {
            let b = build_manager(name, 2, 8, 1).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(b.cm.name(), name);
        }
    }

    #[test]
    fn window_managers_expose_handle() {
        let b = build_manager("Online-Dynamic", 2, 8, 1).unwrap();
        assert!(b.window.is_some());
        let c = build_manager("Polka", 2, 8, 1).unwrap();
        assert!(c.window.is_none());
        c.cancel(); // no-op must not panic
    }

    #[test]
    fn comparison_set_is_buildable() {
        for name in comparison_manager_names() {
            assert!(build_manager(name, 4, 8, 1).is_ok(), "{name}");
        }
    }

    #[test]
    fn unknown_name_is_a_typed_error() {
        match build_manager("Nope", 2, 8, 1) {
            Err(BuildError::UnknownName(n)) => assert_eq!(n, "Nope"),
            other => panic!("expected UnknownName, got {other:?}"),
        }
        // An unknown base stays UnknownName even with a (broken) suffix:
        // the missing manager is the more fundamental problem.
        assert!(matches!(
            build_manager("Nope@phi=2", 2, 8, 1),
            Err(BuildError::UnknownName(_))
        ));
        assert!(matches!(
            build_manager("Nope@phi=2,phi=3", 2, 8, 1),
            Err(BuildError::UnknownName(_))
        ));
    }

    #[test]
    fn parameterized_window_names_build() {
        for name in [
            "Online-Dynamic@phi=2",
            "Online-Dynamic@c=8.5",
            "Adaptive-Improved-Dynamic@n=4",
            "Online-Dynamic@phi=0.5,c=2,n=16",
        ] {
            let b = build_manager(name, 2, 8, 1).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(b.window.is_some(), "{name}");
        }
    }

    #[test]
    fn bad_parameters_are_typed_errors_on_known_managers() {
        for name in [
            "Online-Dynamic@",
            "Online-Dynamic@phi",
            "Online-Dynamic@phi=abc",
            "Online-Dynamic@bogus=1",
            "Polka@phi=2", // classic managers take no window parameters
        ] {
            match build_manager(name, 2, 8, 1) {
                Err(BuildError::BadParams { name: n, .. }) => assert_eq!(n, name),
                other => panic!("{name}: expected BadParams, got {other:?}"),
            }
        }
    }

    #[test]
    fn duplicate_parameter_keys_are_rejected() {
        // Regression: `phi=2,phi=3` used to silently keep the last
        // value; it must be a descriptive error instead.
        for name in [
            "Online-Dynamic@phi=2,phi=3",
            "Online-Dynamic@n=4,c=1,n=8",
            "Adaptive-Improved-Dynamic@c=1,c=1",
        ] {
            match build_manager(name, 2, 8, 1) {
                Err(BuildError::BadParams { reason, .. }) => {
                    assert!(
                        reason.contains("duplicate parameter key"),
                        "{name}: reason was `{reason}`"
                    );
                }
                other => panic!("{name}: expected BadParams, got {other:?}"),
            }
        }
    }

    #[test]
    fn error_messages_enumerate_valid_keys() {
        let err = build_manager("Online-Dynamic@bogus=1", 2, 8, 1).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown parameter key `bogus`"), "{msg}");
        for key in ["`phi`", "`c`", "`n`"] {
            assert!(msg.contains(key), "{msg} should list {key}");
        }
        let unknown = build_manager("Nope", 2, 8, 1).unwrap_err().to_string();
        assert!(unknown.contains("unknown manager `Nope`"), "{unknown}");
        assert_ne!(msg, unknown, "the two failure modes must read differently");
    }
}
