//! Unified contention-manager factory: classic + window-based, with
//! optional per-name parameter overrides.
//!
//! A manager name may carry a parameter suffix,
//! `Base@key=value[,key=value…]`, understood for the window-based
//! managers:
//!
//! * `phi` — the frame-length factor `c` in `Φ = c·ln(MN)`
//!   ([`WindowConfig::phi_factor`]);
//! * `c`   — the initial contention estimate ([`WindowConfig::c_init`]);
//! * `n`   — the window width `N`, overriding the preset's value.
//!
//! This is what lets the ablation sweeps (A1/A2/A4) run through the same
//! declarative experiment engine as the paper figures instead of
//! hand-rolled run loops: `"Online-Dynamic@phi=2"` is just another
//! manager name.

use std::sync::Arc;

use wtm_stm::{CmDispatch, ContentionManager};
use wtm_window::{WindowConfig, WindowManager};

/// A constructed manager, with the window handle kept separately so the
/// runner can cancel window barriers at shutdown.
pub struct BuiltManager {
    /// The manager to install into the engine: classic managers dispatch
    /// monomorphically through their [`CmDispatch`] variant; window
    /// managers ride the `Dyn` extensibility fallback.
    pub cm: CmDispatch,
    /// Present iff the manager is window-based.
    pub window: Option<Arc<WindowManager>>,
}

impl BuiltManager {
    /// Release window barriers (no-op for classic managers).
    pub fn cancel(&self) {
        if let Some(w) = &self.window {
            w.cancel();
        }
    }
}

/// Every manager name the harness understands: the five window variants
/// first (Fig. 2 order), then the classic managers.
pub fn all_manager_names() -> Vec<&'static str> {
    let mut v = wtm_window::window_names();
    v.extend_from_slice(wtm_managers::classic_names());
    v
}

/// The paper's Fig. 3/4/5 comparison set: the two best window variants
/// plus the three classic baselines.
pub fn comparison_manager_names() -> Vec<&'static str> {
    vec![
        "Online-Dynamic",
        "Adaptive-Improved-Dynamic",
        "Polka",
        "Greedy",
        "Priority",
    ]
}

/// A parsed `Base@key=value,…` manager name.
struct ParsedName<'a> {
    base: &'a str,
    phi: Option<f64>,
    c_init: Option<f64>,
    window_n: Option<usize>,
}

fn parse_name(name: &str) -> Option<ParsedName<'_>> {
    let Some((base, params)) = name.split_once('@') else {
        return Some(ParsedName {
            base: name,
            phi: None,
            c_init: None,
            window_n: None,
        });
    };
    let mut parsed = ParsedName {
        base,
        phi: None,
        c_init: None,
        window_n: None,
    };
    for kv in params.split(',') {
        let (k, v) = kv.split_once('=')?;
        match k.trim() {
            "phi" => parsed.phi = Some(v.trim().parse().ok()?),
            "c" => parsed.c_init = Some(v.trim().parse().ok()?),
            "n" => parsed.window_n = Some(v.trim().parse().ok()?),
            _ => return None,
        }
    }
    Some(parsed)
}

/// Build a manager by name for `threads` workers. Window managers use a
/// `threads × window_n` window seeded with `seed`; a `@key=value` suffix
/// overrides individual window knobs (see the module docs). Returns
/// `None` for unknown names, unknown parameter keys, or parameters
/// attached to a classic manager.
pub fn build_manager(
    name: &str,
    threads: usize,
    window_n: usize,
    seed: u64,
) -> Option<BuiltManager> {
    let parsed = parse_name(name)?;
    let has_params = parsed.phi.is_some() || parsed.c_init.is_some() || parsed.window_n.is_some();
    if let Some(cm) = wtm_managers::make_dispatch(parsed.base, threads) {
        // Classic managers take no window parameters.
        return (!has_params).then_some(BuiltManager { cm, window: None });
    }
    let mut cfg = WindowConfig::new(threads, parsed.window_n.unwrap_or(window_n)).with_seed(seed);
    if let Some(phi) = parsed.phi {
        cfg.phi_factor = phi;
    }
    if let Some(c) = parsed.c_init {
        cfg = cfg.with_c_init(c);
    }
    wtm_window::make_window_manager(parsed.base, cfg).map(|wm| BuiltManager {
        cm: CmDispatch::Dyn(wm.clone() as Arc<dyn ContentionManager>),
        window: Some(wm),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_builds() {
        for name in all_manager_names() {
            let b = build_manager(name, 2, 8, 1).unwrap_or_else(|| panic!("{name}"));
            assert_eq!(b.cm.name(), name);
        }
    }

    #[test]
    fn window_managers_expose_handle() {
        let b = build_manager("Online-Dynamic", 2, 8, 1).unwrap();
        assert!(b.window.is_some());
        let c = build_manager("Polka", 2, 8, 1).unwrap();
        assert!(c.window.is_none());
        c.cancel(); // no-op must not panic
    }

    #[test]
    fn comparison_set_is_buildable() {
        for name in comparison_manager_names() {
            assert!(build_manager(name, 4, 8, 1).is_some(), "{name}");
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(build_manager("Nope", 2, 8, 1).is_none());
    }

    #[test]
    fn parameterized_window_names_build() {
        for name in [
            "Online-Dynamic@phi=2",
            "Online-Dynamic@c=8.5",
            "Adaptive-Improved-Dynamic@n=4",
            "Online-Dynamic@phi=0.5,c=2,n=16",
        ] {
            let b = build_manager(name, 2, 8, 1).unwrap_or_else(|| panic!("{name}"));
            assert!(b.window.is_some(), "{name}");
        }
    }

    #[test]
    fn bad_parameters_are_rejected() {
        for name in [
            "Online-Dynamic@",
            "Online-Dynamic@phi",
            "Online-Dynamic@phi=abc",
            "Online-Dynamic@bogus=1",
            "Polka@phi=2", // classic managers take no window parameters
            "Nope@phi=2",
        ] {
            assert!(build_manager(name, 2, 8, 1).is_none(), "{name}");
        }
    }
}
