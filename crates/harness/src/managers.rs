//! Unified contention-manager factory: classic + window-based.

use std::sync::Arc;

use wtm_stm::{CmDispatch, ContentionManager};
use wtm_window::{WindowConfig, WindowManager};

/// A constructed manager, with the window handle kept separately so the
/// runner can cancel window barriers at shutdown.
pub struct BuiltManager {
    /// The manager to install into the engine: classic managers dispatch
    /// monomorphically through their [`CmDispatch`] variant; window
    /// managers ride the `Dyn` extensibility fallback.
    pub cm: CmDispatch,
    /// Present iff the manager is window-based.
    pub window: Option<Arc<WindowManager>>,
}

impl BuiltManager {
    /// Release window barriers (no-op for classic managers).
    pub fn cancel(&self) {
        if let Some(w) = &self.window {
            w.cancel();
        }
    }
}

/// Every manager name the harness understands: the five window variants
/// first (Fig. 2 order), then the classic managers.
pub fn all_manager_names() -> Vec<&'static str> {
    let mut v = wtm_window::window_names();
    v.extend_from_slice(wtm_managers::classic_names());
    v
}

/// The paper's Fig. 3/4/5 comparison set: the two best window variants
/// plus the three classic baselines.
pub fn comparison_manager_names() -> Vec<&'static str> {
    vec![
        "Online-Dynamic",
        "Adaptive-Improved-Dynamic",
        "Polka",
        "Greedy",
        "Priority",
    ]
}

/// Build a manager by name for `threads` workers. Window managers use an
/// `threads × window_n` window seeded with `seed`.
pub fn build_manager(
    name: &str,
    threads: usize,
    window_n: usize,
    seed: u64,
) -> Option<BuiltManager> {
    if let Some(cm) = wtm_managers::make_dispatch(name, threads) {
        return Some(BuiltManager { cm, window: None });
    }
    let cfg = WindowConfig::new(threads, window_n).with_seed(seed);
    wtm_window::make_window_manager(name, cfg).map(|wm| BuiltManager {
        cm: CmDispatch::Dyn(wm.clone() as Arc<dyn ContentionManager>),
        window: Some(wm),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_builds() {
        for name in all_manager_names() {
            let b = build_manager(name, 2, 8, 1).unwrap_or_else(|| panic!("{name}"));
            assert_eq!(b.cm.name(), name);
        }
    }

    #[test]
    fn window_managers_expose_handle() {
        let b = build_manager("Online-Dynamic", 2, 8, 1).unwrap();
        assert!(b.window.is_some());
        let c = build_manager("Polka", 2, 8, 1).unwrap();
        assert!(c.window.is_none());
        c.cancel(); // no-op must not panic
    }

    #[test]
    fn comparison_set_is_buildable() {
        for name in comparison_manager_names() {
            assert!(build_manager(name, 4, 8, 1).is_some(), "{name}");
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(build_manager("Nope", 2, 8, 1).is_none());
    }
}
