//! # wtm-harness — experiment drivers that regenerate the paper's figures
//!
//! One driver per artifact:
//!
//! | driver | paper artifact |
//! |---|---|
//! | [`figures::fig2`] | Fig. 2 — throughput of the five window variants, thread sweep, four benchmarks |
//! | [`figures::fig34`] | Fig. 3 — throughput of the best window variants vs Polka/Greedy/Priority; Fig. 4 — aborts per commit of the same runs |
//! | [`figures::fig5`] | Fig. 5 — total time to commit a fixed budget of transactions at three contention levels |
//! | [`theory::makespan_tables`] | §II-C — simulator validation of the Offline/Online makespan bounds and the window-vs-one-shot claim |
//!
//! The [`runner`] module executes one `(workload, manager, threads)`
//! cell: spawn `M` workers, run the deterministic operation stream until
//! the stop rule fires, aggregate [`wtm_stm::StatsSnapshot`]s. Workloads
//! are resolved by name through the [`wtm_workloads::registry`]; managers
//! through [`managers::build_manager`], which understands parameterized
//! names (`Online-Dynamic@phi=2,c=8,n=16`).
//!
//! The [`experiment`] module is the declarative layer above the runner:
//! an [`experiment::ExperimentSpec`] describes a grid (workloads ×
//! managers × thread sweep × contention × stop rule × repetitions) and
//! the shared [`experiment::Executor`] expands it into deterministic
//! cells, owns repetition and mean ± stddev aggregation, prints
//! progress/ETA, and checkpoints every finished cell into a
//! schema-versioned `results.json` ([`json`] is the vendored-free JSON
//! layer) so interrupted suites resume instead of restarting. The
//! [`report`] module renders aligned text tables and CSV files.
//!
//! Presets scale every experiment: `--smoke`/`--quick` (CI-sized) up to
//! `--paper` (the paper's 10 s × 6 repetitions × 32 threads).

pub mod ablation;
pub mod experiment;
pub mod figures;
pub mod json;
pub mod managers;
pub mod metrics;
pub mod preset;
pub mod report;
pub mod runner;
pub mod sim;
pub mod theory;
pub mod trace;
pub mod tracer;

pub use experiment::{aggregate, Agg, CellResult, Executor, ExperimentSpec, ResultsStore};
pub use json::Json;
pub use managers::{
    all_manager_names, build_manager, comparison_manager_names, BuildError, BuiltManager,
};
pub use preset::Preset;
pub use report::{slugify, Table};
pub use runner::{run_one, RunOutcome, RunSpec, StopRule};
pub use sim::{sim_spec, sim_tables};
