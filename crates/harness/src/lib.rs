//! # wtm-harness — experiment drivers that regenerate the paper's figures
//!
//! One driver per artifact:
//!
//! | driver | paper artifact |
//! |---|---|
//! | [`figures::fig2`] | Fig. 2 — throughput of the five window variants, thread sweep, four benchmarks |
//! | [`figures::fig34`] | Fig. 3 — throughput of the best window variants vs Polka/Greedy/Priority; Fig. 4 — aborts per commit of the same runs |
//! | [`figures::fig5`] | Fig. 5 — total time to commit a fixed budget of transactions at three contention levels |
//! | [`theory::makespan_tables`] | §II-C — simulator validation of the Offline/Online makespan bounds and the window-vs-one-shot claim |
//!
//! The [`runner`] module executes one `(benchmark, manager, threads)`
//! cell: spawn `M` workers, run the deterministic operation stream until
//! the stop rule fires, aggregate [`wtm_stm::StatsSnapshot`]s. The
//! [`report`] module renders aligned text tables and CSV files.
//!
//! Two presets scale every experiment: `--quick` (CI-sized, seconds) and
//! `--paper` (the paper's 10 s × 6 repetitions × 32 threads).

pub mod ablation;
pub mod figures;
pub mod managers;
pub mod metrics;
pub mod preset;
pub mod report;
pub mod runner;
pub mod theory;
pub mod trace;
pub mod tracer;

pub use managers::{all_manager_names, build_manager, BuiltManager};
pub use preset::Preset;
pub use report::Table;
pub use runner::{run_one, RunOutcome, RunSpec, StopRule};
