//! Minimal JSON: parse, render, and validate `results.json`.
//!
//! The workspace is fully vendored and has no serde, so the experiment
//! engine hand-rolls the small JSON subset it needs: objects preserve
//! insertion order, numbers are `f64` rendered with Rust's shortest
//! round-trip formatting (so parse → render is byte-identical, which is
//! what makes "resume is a no-op" checkable with `cmp`), and non-finite
//! numbers serialize as `null`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (duplicate keys are not merged).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// A number that may be missing (`null` encodes NaN/±inf).
    pub fn as_f64_or_nan(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with 2-space indentation and a trailing newline.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Shortest round-trip formatting: re-parsing and
                    // re-rendering reproduces the same bytes.
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (must consume the whole input).
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {}, found {:?}",
            b as char,
            *pos,
            bytes.get(*pos).map(|b| *b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so slicing on
                // char boundaries is safe via the next boundary search).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

/// The `results.json` schema version this build reads and writes. Bump on
/// any structural change, together with `docs/results-schema.json`.
///
/// v2: cells gained a required `engine` field (`"eager"` / `"lazy"`) and
/// fold the engine into their `v2|…|eng=…` identity keys.
///
/// v3: simulator cells joined the store — `engine` may be `"sim"`, `stop`
/// may be `"sim"`, and sim cells carry an optional `net` string (the
/// canonical network-model spec, also folded into their `v3|sim|…` keys).
/// STM keys were re-versioned to `v3|…` in the same sweep.
pub const RESULTS_SCHEMA_VERSION: f64 = 3.0;

/// Validate a parsed `results.json` document against the committed schema
/// (`docs/results-schema.json`): top-level shape, per-cell required
/// fields, and per-metric `{mean, sd}` objects. Returns the first
/// violation found.
pub fn validate_results(doc: &Json) -> Result<(), String> {
    let version = doc
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or("missing schema_version")?;
    if version != RESULTS_SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != supported {RESULTS_SCHEMA_VERSION}"
        ));
    }
    doc.get("generator")
        .and_then(Json::as_str)
        .ok_or("missing generator string")?;
    let cells = doc
        .get("cells")
        .and_then(Json::as_obj)
        .ok_or("missing cells object")?;
    for (key, cell) in cells {
        let ctx = |field: &str| format!("cell {key:?}: bad or missing {field}");
        cell.get("workload")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("workload"))?;
        cell.get("manager")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("manager"))?;
        cell.get("engine")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("engine"))?;
        for field in ["threads", "update_pct", "key_range", "window_n", "reps"] {
            cell.get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| ctx(field))?;
        }
        // Seeds are full 64-bit values; JSON numbers are f64, so they are
        // stored as hex strings to stay exact.
        for field in ["seed", "stop"] {
            cell.get(field)
                .and_then(Json::as_str)
                .ok_or_else(|| ctx(field))?;
        }
        cell.get("truncated")
            .and_then(Json::as_bool)
            .ok_or_else(|| ctx("truncated"))?;
        // `net` is optional (present on sim cells only) but must be a
        // string when present.
        if let Some(net) = cell.get("net") {
            net.as_str().ok_or_else(|| ctx("net"))?;
        }
        let metrics = cell
            .get("metrics")
            .and_then(Json::as_obj)
            .ok_or_else(|| ctx("metrics"))?;
        for (name, m) in metrics {
            for stat in ["mean", "sd"] {
                m.get(stat)
                    .and_then(Json::as_f64_or_nan)
                    .ok_or_else(|| format!("cell {key:?}: metric {name:?} missing {stat}"))?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_is_byte_identical() {
        let doc = Json::Obj(vec![
            ("a".into(), Json::Num(1.5)),
            ("b".into(), Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("c".into(), Json::Str("x\"y\n—".into())),
            ("d".into(), Json::Num(0.1 + 0.2)), // non-trivial shortest repr
            ("e".into(), Json::Obj(vec![])),
        ]);
        for rendered in [doc.render(), doc.render_pretty()] {
            let reparsed = Json::parse(&rendered).unwrap();
            assert_eq!(reparsed, doc);
            // Idempotence is what makes `cmp` a valid resume check.
            assert_eq!(reparsed.render(), doc.render());
            assert_eq!(reparsed.render_pretty(), doc.render_pretty());
        }
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let doc = Json::Arr(vec![Json::Num(f64::NAN), Json::Num(f64::INFINITY)]);
        assert_eq!(doc.render(), "[null,null]");
        let back = Json::parse(&doc.render()).unwrap();
        assert!(back.as_arr().unwrap()[0].as_f64_or_nan().unwrap().is_nan());
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "123abc", "[1] x", "\"open"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parse_accepts_standard_documents() {
        let v = Json::parse(r#" { "k" : [ 1 , -2.5e3 , "sA" ] , "t" : false } "#).unwrap();
        assert_eq!(v.get("t"), Some(&Json::Bool(false)));
        let arr = v.get("k").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].as_f64(), Some(-2500.0));
        assert_eq!(arr[2].as_str(), Some("sA"));
    }

    fn minimal_valid() -> Json {
        Json::parse(
            r#"{
              "schema_version": 3,
              "generator": "windowtm test",
              "cells": {
                "k1": {
                  "workload": "List", "manager": "Polka", "engine": "eager",
                  "threads": 2,
                  "update_pct": 100, "key_range": 64, "window_n": 8,
                  "reps": 2, "seed": "0x1", "stop": "timed:0.06",
                  "truncated": false,
                  "metrics": { "throughput": { "mean": 10.0, "sd": 1.0 } }
                }
              }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn validator_accepts_wellformed_results() {
        validate_results(&minimal_valid()).unwrap();
    }

    #[test]
    fn validator_accepts_sim_cells_and_types_the_net_field() {
        let doc = Json::parse(
            r#"{
              "schema_version": 3,
              "generator": "windowtm test",
              "cells": {
                "k1": {
                  "workload": "fig2-shape", "manager": "Greedy", "engine": "sim",
                  "net": "fixed:4",
                  "threads": 8,
                  "update_pct": 0, "key_range": 0, "window_n": 16,
                  "reps": 2, "seed": "0x1", "stop": "sim",
                  "truncated": false,
                  "metrics": { "makespan": { "mean": 40.0, "sd": 0.0 } }
                }
              }
            }"#,
        )
        .unwrap();
        validate_results(&doc).unwrap();
        // A non-string net is a schema violation.
        let bad = Json::parse(&doc.render().replace("\"fixed:4\"", "4")).unwrap();
        assert!(validate_results(&bad).is_err());
    }

    #[test]
    fn validator_rejects_missing_fields() {
        let doc = minimal_valid();
        // Drop one required field at a time and expect a failure.
        let Json::Obj(top) = &doc else { unreachable!() };
        let cells = doc.get("cells").unwrap().as_obj().unwrap();
        let Json::Obj(cell) = &cells[0].1 else {
            unreachable!()
        };
        for victim in cell.iter().map(|(k, _)| k.clone()) {
            let stripped: Vec<(String, Json)> =
                cell.iter().filter(|(k, _)| *k != victim).cloned().collect();
            let broken = Json::Obj(
                top.iter()
                    .map(|(k, v)| {
                        if k == "cells" {
                            (
                                k.clone(),
                                Json::Obj(vec![("k1".into(), Json::Obj(stripped.clone()))]),
                            )
                        } else {
                            (k.clone(), v.clone())
                        }
                    })
                    .collect(),
            );
            assert!(
                validate_results(&broken).is_err(),
                "dropping {victim} must fail validation"
            );
        }
        assert!(validate_results(&Json::Obj(vec![])).is_err());
    }
}
