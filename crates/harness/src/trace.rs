//! Trace-driven simulation: the bridge between the real STM and the
//! abstract scheduling model.
//!
//! The paper's evaluation ran on real hardware with 8× thread
//! oversubscription; on a different host the *absolute* interleavings
//! change and contention-manager gaps compress. Trace-driven simulation
//! removes the hardware from the equation while keeping the *workload*
//! real: we execute an `M × N` window of benchmark operations once,
//! record each transaction's `(object, read/write)` footprint via
//! [`wtm_workloads::OpStream::step_traced`], derive the exact conflict
//! graph of that window (§II-A's definition), and then schedule it with
//! every policy in the deterministic simulator.
//!
//! Approximation note: footprints are captured from one serial execution,
//! so key-dependent control flow under different interleavings is not
//! modelled (the standard trace-driven caveat). For the IntSet
//! benchmarks the footprint is the search path, which depends only weakly
//! on interleaving at 50% occupancy.

use wtm_sim::engine::{simulate, SimConfig};
use wtm_sim::graph::ConflictGraph;
use wtm_sim::sched::{
    FreeRandomizedScheduler, GreedyTimestampScheduler, OfflineWindowScheduler, OneShotScheduler,
    OnlineWindowScheduler, PolkaProgressScheduler, SimScheduler, WindowMode,
};
use wtm_stm::CmDispatch;
use wtm_stm::Stm;
use wtm_workloads::{build_workload, paper_workload_names, WorkloadParams};

use crate::preset::Preset;
use crate::report::Table;

/// Capture the conflict graph of one `m × n` window of `workload`
/// operations, in the paper's high-contention configuration. Any
/// registered workload works: the registry builds it and its per-thread
/// streams supply traced footprints.
pub fn capture_window_graph(workload: &str, m: usize, n: usize, seed: u64) -> ConflictGraph {
    let stm = Stm::with_dispatch(CmDispatch::AbortSelf, 1);
    let ctx = stm.thread(0);
    let params = WorkloadParams {
        key_range: 0, // registry default
        update_pct: 100,
        seed,
        threads: m,
    };
    let w = build_workload(workload, &params)
        .unwrap_or_else(|| panic!("unknown workload {workload:?}"));
    w.prepopulate(&ctx);
    let mut streams: Vec<_> = (0..m).map(|t| w.stream(t)).collect();
    let mut footprints: Vec<Vec<(u64, bool)>> = vec![Vec::new(); m * n];
    // Column-major execution approximates the concurrent interleaving:
    // all threads' j-th transactions run "together".
    for j in 0..n {
        for (i, stream) in streams.iter_mut().enumerate() {
            footprints[i * n + j] = stream.step_traced(&ctx);
        }
    }
    ConflictGraph::from_footprints(m, n, &footprints)
}

/// Schedulers compared on each trace, in report order.
fn trace_schedulers<'a>(
    cfg: &'a SimConfig,
    graph: &'a ConflictGraph,
    seed: u64,
) -> Vec<Box<dyn SimScheduler + 'a>> {
    vec![
        Box::new(OneShotScheduler::new(cfg, seed)),
        Box::new(GreedyTimestampScheduler::new(cfg)),
        Box::new(PolkaProgressScheduler::new(cfg, seed)),
        Box::new(FreeRandomizedScheduler::new(cfg, seed)),
        Box::new(OnlineWindowScheduler::new(
            cfg,
            graph,
            WindowMode::Static,
            seed,
        )),
        Box::new(OnlineWindowScheduler::new(
            cfg,
            graph,
            WindowMode::Dynamic,
            seed,
        )),
        Box::new(OnlineWindowScheduler::adaptive(
            cfg,
            WindowMode::Dynamic,
            seed,
        )),
        Box::new(OfflineWindowScheduler::new(cfg, graph, seed)),
    ]
}

/// T4: trace-driven simulated comparison — one table per benchmark.
/// Columns: makespan (steps), speed-up over the one-shot baseline, and
/// aborts per commit, per scheduler.
pub fn trace_tables(preset: &Preset) -> Vec<Table> {
    let m = preset.sim_m.min(16); // capture cost is O(m·n) transactions
    let n = preset.sim_n;
    let tau = 4;
    let mut tables = Vec::new();
    for workload in paper_workload_names() {
        eprintln!("[windowtm] T4 capturing {workload} window ({m}×{n})");
        let graph = capture_window_graph(workload, m, n, 0x7124CE);
        let cfg = SimConfig::new(m, n, tau);
        let mut t = Table::new(
            format!(
                "T4: trace-driven simulation — {workload} (M={m}, N={n}, C={}, edges={})",
                graph.contention(),
                graph.edge_count()
            ),
            "scheduler",
            vec![
                "makespan".into(),
                "vs OneShot".into(),
                "aborts/commit".into(),
            ],
        );
        let mut oneshot = f64::NAN;
        for mut sched in trace_schedulers(&cfg, &graph, 99) {
            let name = sched.name().to_string();
            let out = simulate(&graph, &cfg, sched.as_mut());
            assert!(out.all_committed, "{name} incomplete on {workload}");
            let makespan = out.makespan as f64;
            if name == "OneShot" {
                oneshot = makespan;
            }
            t.push_row(
                name,
                vec![makespan, oneshot / makespan, out.aborts_per_commit()],
            );
        }
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captured_graphs_have_window_shape() {
        for workload in paper_workload_names() {
            let g = capture_window_graph(workload, 4, 6, 1);
            assert_eq!(g.m(), 4);
            assert_eq!(g.n(), 6);
            // High-contention configs must actually conflict.
            assert!(
                g.edge_count() > 0,
                "{workload}: captured window has no conflicts"
            );
        }
    }

    #[test]
    fn list_traces_are_denser_than_skiplist() {
        // The List's shared walk prefix makes nearly every pair conflict;
        // the SkipList spreads accesses. The paper leans on exactly this
        // contrast (SkipList = low conflict probability, §III-C).
        let list = capture_window_graph("List", 6, 8, 3);
        let skip = capture_window_graph("SkipList", 6, 8, 3);
        assert!(
            list.edge_count() > skip.edge_count(),
            "List {} edges vs SkipList {}",
            list.edge_count(),
            skip.edge_count()
        );
    }

    #[test]
    fn extension_workloads_capture_too() {
        // The registry makes the orphaned workloads first-class: the same
        // capture path must work for them.
        for workload in ["HashMap", "Genome", "KMeans"] {
            let g = capture_window_graph(workload, 3, 4, 5);
            assert_eq!(g.m(), 3);
            assert_eq!(g.n(), 4);
        }
    }

    #[test]
    fn trace_tables_smoke() {
        let mut p = Preset::smoke();
        p.sim_m = 4;
        p.sim_n = 6;
        let tables = trace_tables(&p);
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert_eq!(t.rows.len(), 8, "eight schedulers");
            // Offline aborts nothing.
            let last = t.rows.len() - 1;
            assert_eq!(t.rows[last], "Offline");
            assert_eq!(t.cells[last][2], 0.0);
        }
    }
}
