//! `windowtm` — regenerate the paper's figures from the command line.
//!
//! ```text
//! windowtm <fig2|fig3|fig4|fig5|theory|trace|simtrace|ablation|metrics|all> \
//!          [--quick|--medium|--paper|--smoke] [--out DIR]
//! ```
//!
//! Tables print to stdout and are also written as CSV into `--out`
//! (default `results/`). `trace` runs instrumented cells and additionally
//! writes Chrome-trace JSON (Perfetto-loadable) into `--out`; `simtrace`
//! is the T4 window-simulator schedule trace.

use std::path::PathBuf;
use std::process::ExitCode;

use wtm_harness::ablation::ablation_tables;
use wtm_harness::figures::{fig2, fig34, fig3_ratios, fig5};
use wtm_harness::metrics::future_work_tables;
use wtm_harness::preset::Preset;
use wtm_harness::report::Table;
use wtm_harness::theory::makespan_tables;
use wtm_harness::trace::trace_tables;
use wtm_harness::tracer::trace_report;

fn usage() -> ExitCode {
    eprintln!(
        "usage: windowtm <fig2|fig3|fig4|fig5|theory|trace|simtrace|ablation|metrics|all> [--quick|--medium|--paper|--smoke] [--out DIR]"
    );
    ExitCode::from(2)
}

fn emit(tables: &[Table], out_dir: &std::path::Path) {
    for t in tables {
        println!("{}", t.render());
        match t.save_csv(out_dir) {
            Ok(p) => eprintln!("[windowtm] wrote {}", p.display()),
            Err(e) => eprintln!("[windowtm] csv write failed: {e}"),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        return usage();
    };
    let mut preset = Preset::quick();
    let mut out_dir = PathBuf::from("results");
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => preset = Preset::quick(),
            "--medium" => preset = Preset::medium(),
            "--paper" => preset = Preset::paper(),
            "--smoke" => preset = Preset::smoke(),
            "--out" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    return usage();
                };
                out_dir = PathBuf::from(dir);
            }
            other => {
                eprintln!("unknown flag {other:?}");
                return usage();
            }
        }
        i += 1;
    }
    eprintln!(
        "[windowtm] preset={} duration={:?} reps={} threads={:?}",
        preset.name, preset.duration, preset.reps, preset.thread_counts
    );

    match cmd.as_str() {
        "fig2" => emit(&fig2(&preset), &out_dir),
        "fig3" | "fig4" | "fig34" => {
            let (f3, f4) = fig34(&preset);
            if cmd != "fig4" {
                emit(&f3, &out_dir);
                emit(&[fig3_ratios(&f3)], &out_dir);
            }
            if cmd != "fig3" {
                emit(&f4, &out_dir);
            }
        }
        "fig5" => emit(&fig5(&preset), &out_dir),
        "theory" => emit(&makespan_tables(&preset), &out_dir),
        "ablation" => emit(&ablation_tables(&preset), &out_dir),
        "trace" => emit(&trace_report(&preset, &out_dir), &out_dir),
        "simtrace" => emit(&trace_tables(&preset), &out_dir),
        "metrics" => emit(&future_work_tables(&preset), &out_dir),
        "all" => {
            emit(&fig2(&preset), &out_dir);
            let (f3, f4) = fig34(&preset);
            emit(&f3, &out_dir);
            emit(&[fig3_ratios(&f3)], &out_dir);
            emit(&f4, &out_dir);
            emit(&fig5(&preset), &out_dir);
            emit(&makespan_tables(&preset), &out_dir);
            emit(&trace_tables(&preset), &out_dir);
            emit(&ablation_tables(&preset), &out_dir);
            emit(&future_work_tables(&preset), &out_dir);
            emit(&trace_report(&preset, &out_dir), &out_dir);
        }
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
