//! `windowtm` — regenerate the paper's figures from the command line.
//!
//! ```text
//! windowtm <command> [--quick|--medium|--paper|--smoke]
//!          [--out DIR] [--threads N] [--reps N] [--seed S]
//!          [--engine eager|lazy]
//! ```
//!
//! Commands: `fig2 fig3 fig4 fig5 theory sim trace simtrace ablation
//! metrics all list run <workload> validate`. Tables print to stdout and
//! are also written as CSV into `--out` (default `results/`); experiment
//! commands additionally maintain a machine-readable `--out/results.json`
//! that doubles as a checkpoint — re-running with the same `--out` skips
//! every already-completed cell. `sim` sweeps the discrete-event
//! scenarios (paper-shaped and distributed) against the verdict-latency
//! grid through the same engine; `trace` runs instrumented cells and
//! writes Chrome-trace JSON (Perfetto-loadable) into `--out`; `simtrace`
//! is the T4 window-simulator schedule trace.

use std::path::PathBuf;
use std::process::ExitCode;

use wtm_harness::ablation::ablation_tables;
use wtm_harness::experiment::{Executor, ExperimentSpec};
use wtm_harness::figures::{fig2, fig34, fig3_ratios, fig5};
use wtm_harness::json::{validate_results, Json};
use wtm_harness::metrics::future_work_tables;
use wtm_harness::preset::Preset;
use wtm_harness::report::Table;
use wtm_harness::runner::StopRule;
use wtm_harness::sim::sim_tables;
use wtm_harness::theory::makespan_tables;
use wtm_harness::trace::trace_tables;
use wtm_harness::tracer::trace_report;
use wtm_harness::{all_manager_names, comparison_manager_names};

const COMMANDS: &str =
    "fig2 fig3 fig4 fig5 theory sim trace simtrace ablation metrics all list run validate";

fn usage() -> ExitCode {
    eprintln!(
        "usage: windowtm <command> [--quick|--medium|--paper|--smoke] [--out DIR] \
         [--threads N] [--reps N] [--seed S] [--engine eager|lazy]\n\
         commands: {COMMANDS}\n\
         \x20 run <workload>   named run: thread sweep of one registered workload\n\
         \x20 list             registered workloads and managers\n\
         \x20 validate         check --out/results.json against the committed schema"
    );
    ExitCode::from(2)
}

fn emit(tables: &[Table], out_dir: &std::path::Path) {
    for t in tables {
        println!("{}", t.render());
        match t.save_csv(out_dir) {
            Ok(p) => eprintln!("[windowtm] wrote {}", p.display()),
            Err(e) => eprintln!("[windowtm] csv write failed: {e}"),
        }
    }
}

/// `windowtm list` — everything the registries know.
fn list_registered() {
    println!("workloads ({}):", wtm_workloads::workload_names().len());
    for info in wtm_workloads::workload_infos() {
        println!(
            "  {:<10} key-range default {:>4}{}  — {}",
            info.name,
            info.default_key_range,
            if info.paper {
                "  [paper §III]"
            } else {
                "             "
            },
            info.summary,
        );
    }
    println!("\nmanagers ({}):", all_manager_names().len());
    println!("  window-based: {}", wtm_window::window_names().join(", "));
    println!(
        "  classic:      {}",
        wtm_managers::classic_names().join(", ")
    );
    println!(
        "\nwindow managers accept parameter suffixes: \
         Online-Dynamic@phi=2,c=8,n=16 (frame factor, contention estimate, window width)"
    );
    println!(
        "\nengines ({}): {}  (select with --engine; default eager)",
        wtm_stm::EngineKind::ALL.len(),
        wtm_stm::EngineKind::ALL
            .iter()
            .map(|e| e.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
}

/// `windowtm run <workload>` — a named thread-sweep of one workload over
/// the comparison manager set.
fn named_run(workload: &str, preset: &Preset, exec: &mut Executor) -> Result<Vec<Table>, String> {
    let info = wtm_workloads::workload_info(workload).ok_or_else(|| {
        format!(
            "unknown workload {workload:?}; registered: {}",
            wtm_workloads::workload_names().join(", ")
        )
    })?;
    let mut spec = ExperimentSpec::new(
        &format!("run-{}", info.name),
        StopRule::Timed(preset.duration),
    );
    spec.workloads = vec![info.name.to_string()];
    spec.managers = comparison_manager_names()
        .iter()
        .map(|m| m.to_string())
        .collect();
    spec.threads = preset.thread_counts.clone();
    spec.reps = preset.reps;
    spec.window_n = preset.window_n;
    spec.engine = preset.engine;
    spec.base_seed = preset.seed;
    let results = exec.run(&spec);

    let mut tables = Vec::new();
    for (metric, what) in [
        ("throughput", "throughput (txn/s)"),
        ("aborts_per_commit", "aborts per commit"),
    ] {
        let mut t = Table::new(
            format!("Run: {what} — {}", info.name),
            "threads",
            spec.managers.clone(),
        );
        for &m in &spec.threads {
            let (means, sds): (Vec<f64>, Vec<f64>) = spec
                .managers
                .iter()
                .map(|mgr| {
                    let a = results
                        .iter()
                        .find(|r| r.threads == m && &r.manager == mgr)
                        .map(|r| r.metric(metric))
                        .unwrap_or(wtm_harness::experiment::Agg {
                            mean: f64::NAN,
                            sd: f64::NAN,
                        });
                    (a.mean, a.sd)
                })
                .unzip();
            t.push_row_sd(m.to_string(), means, sds);
        }
        tables.push(t);
    }
    Ok(tables)
}

fn validate_out(out_dir: &std::path::Path) -> ExitCode {
    let path = out_dir.join("results.json");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[windowtm] cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let parsed = Json::parse(&text).and_then(|doc| validate_results(&doc).map(|()| doc));
    match parsed {
        Ok(doc) => {
            let cells = doc
                .get("cells")
                .and_then(Json::as_obj)
                .map(<[_]>::len)
                .unwrap_or(0);
            println!(
                "{}: valid (schema_version {}, {cells} cell(s))",
                path.display(),
                wtm_harness::json::RESULTS_SCHEMA_VERSION
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("[windowtm] {}: INVALID: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        return usage();
    };
    let mut preset = Preset::quick();
    let mut out_dir = PathBuf::from("results");
    let mut run_target: Option<String> = None;
    let mut i = 1;
    // `run` takes its workload as the next positional argument.
    if cmd == "run" {
        match args.get(1) {
            Some(w) if !w.starts_with("--") => {
                run_target = Some(w.clone());
                i = 2;
            }
            _ => {
                eprintln!(
                    "run: missing workload name; registered: {}",
                    wtm_workloads::workload_names().join(", ")
                );
                return usage();
            }
        }
    }
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => preset = Preset::quick(),
            "--medium" => preset = Preset::medium(),
            "--paper" => preset = Preset::paper(),
            "--smoke" => preset = Preset::smoke(),
            "--out" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    return usage();
                };
                out_dir = PathBuf::from(dir);
            }
            "--threads" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--threads needs a positive integer");
                    return usage();
                };
                if n == 0 {
                    eprintln!("--threads needs a positive integer");
                    return usage();
                }
                preset.thread_counts = vec![n];
                preset.fig5_threads = n;
            }
            "--reps" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--reps needs a positive integer");
                    return usage();
                };
                if n == 0 {
                    eprintln!("--reps needs a positive integer");
                    return usage();
                }
                preset.reps = n;
            }
            "--seed" => {
                i += 1;
                let Some(s) = args.get(i).and_then(|v| parse_u64(v)) else {
                    eprintln!("--seed needs an integer (decimal or 0x-hex)");
                    return usage();
                };
                preset.seed = s;
            }
            "--engine" => {
                i += 1;
                let Some(e) = args.get(i).and_then(|v| wtm_stm::EngineKind::parse(v)) else {
                    eprintln!(
                        "--engine needs one of: {}",
                        wtm_stm::EngineKind::ALL
                            .iter()
                            .map(|e| e.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    return usage();
                };
                preset.engine = e;
            }
            other => {
                eprintln!("unknown flag {other:?}");
                return usage();
            }
        }
        i += 1;
    }

    // Commands that neither run experiments nor need the preset banner.
    match cmd.as_str() {
        "list" => {
            list_registered();
            return ExitCode::SUCCESS;
        }
        "validate" => return validate_out(&out_dir),
        _ => {}
    }

    eprintln!(
        "[windowtm] preset={} engine={} duration={:?} reps={} threads={:?} seed={:#x}",
        preset.name, preset.engine, preset.duration, preset.reps, preset.thread_counts, preset.seed
    );
    let mut exec = Executor::new(&out_dir);

    match cmd.as_str() {
        "fig2" => emit(&fig2(&preset, &mut exec), &out_dir),
        "fig3" | "fig4" | "fig34" => {
            let (f3, f4) = fig34(&preset, &mut exec);
            if cmd != "fig4" {
                emit(&f3, &out_dir);
                emit(&[fig3_ratios(&f3)], &out_dir);
            }
            if cmd != "fig3" {
                emit(&f4, &out_dir);
            }
        }
        "fig5" => emit(&fig5(&preset, &mut exec), &out_dir),
        "theory" => emit(&makespan_tables(&preset), &out_dir),
        "sim" => emit(&sim_tables(&preset, &mut exec), &out_dir),
        "ablation" => emit(&ablation_tables(&preset, &mut exec), &out_dir),
        "trace" => emit(&trace_report(&preset, &out_dir), &out_dir),
        "simtrace" => emit(&trace_tables(&preset), &out_dir),
        "metrics" => emit(&future_work_tables(&preset, &mut exec), &out_dir),
        "run" => {
            let workload = run_target.expect("parsed above");
            match named_run(&workload, &preset, &mut exec) {
                Ok(tables) => emit(&tables, &out_dir),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            }
        }
        "all" => {
            emit(&fig2(&preset, &mut exec), &out_dir);
            let (f3, f4) = fig34(&preset, &mut exec);
            emit(&f3, &out_dir);
            emit(&[fig3_ratios(&f3)], &out_dir);
            emit(&f4, &out_dir);
            emit(&fig5(&preset, &mut exec), &out_dir);
            emit(&makespan_tables(&preset), &out_dir);
            emit(&sim_tables(&preset, &mut exec), &out_dir);
            emit(&trace_tables(&preset), &out_dir);
            emit(&ablation_tables(&preset, &mut exec), &out_dir);
            emit(&future_work_tables(&preset, &mut exec), &out_dir);
            emit(&trace_report(&preset, &out_dir), &out_dir);
        }
        other => {
            eprintln!("unknown command {other:?}; available: {COMMANDS}");
            return usage();
        }
    }
    if exec.skipped > 0 {
        eprintln!(
            "[windowtm] resume: {} cell(s) served from {} without re-running",
            exec.skipped,
            exec.store().path().display()
        );
    }
    if !exec.store().is_empty() {
        eprintln!(
            "[windowtm] results.json at {}",
            exec.store().path().display()
        );
    }
    eprintln!("[windowtm] done in {:?}", exec.elapsed());
    ExitCode::SUCCESS
}
