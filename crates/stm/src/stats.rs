//! Lock-free transaction metrics.
//!
//! Every worker thread owns a [`ThreadStats`] and bumps plain relaxed
//! atomics on its hot path; the harness folds them into a
//! [`StatsSnapshot`] at the end of a run. The snapshot computes every
//! metric the paper reports (throughput, aborts per commit, total time) as
//! well as the "future work" metrics of §IV that this reproduction also
//! implements: wasted work, repeat conflicts, average committed-transaction
//! duration, and average response time.
//!
//! ## Staged counters
//!
//! The per-attempt counters (commits, aborts, opens, duration sums) are
//! not bumped with one atomic RMW each at every attempt end. Instead the
//! engine *stages* them into a private pending block with plain
//! single-writer load/store pairs (only the owning worker writes them)
//! and folds the block into the canonical fields every
//! [`STATS_FLUSH_EVERY`] attempts — replacing five `lock xadd`s per
//! transaction with five unlocked stores plus an amortized flush.
//! [`ThreadStats::snapshot`] always folds the pending block in, so an
//! aggregate taken at *any* time — mid-run, at a `StopRule::Budget`
//! safety deadline, after a truncated run — is never short by the staged
//! remainder. (A snapshot racing a concurrent flush on a *live* worker
//! can transiently double-count up to one flush window; every quiescent
//! read — the only kind the harness and tests perform — is exact.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A process-global counter split into cache-line-padded shards: callers
/// bump the shard selected by a cheap hint (their thread/slot index masked
/// to a power-of-two group) and readers fold all shards on read. Turns a
/// single contended `fetch_add` line into per-thread-group lines — the
/// pattern every remaining global accumulator in the engine uses (the
/// epoch layer's retired/freed accounting today). Const-constructible so
/// it can back `static`s.
///
/// Audit note — the cross-thread `AtomicU64`s that deliberately *stay*
/// single cells, and why each is not a hot-path scaling hazard:
///
/// * [`crate::clock::LogicalClock`] — Greedy and Priority compare its
///   values across threads, so it must stay one totally-ordered counter
///   (see DESIGN.md, "Reclamation & sharding").
/// * The epoch layer's `GLOBAL` — *the* epoch is semantically a single
///   value; hot paths only load it, and the advance CAS runs at most
///   once per quiescence interval.
/// * The lazy engine's `VERSION_CLOCK` — made contention-scalable by
///   protocol instead of by sharding: blind commits never RMW it and
///   read-write commits adopt on CAS failure
///   (`crate::engine::write_version`).
/// * `FALLBACK_PINS` / `ORPHAN_COUNT` (epoch) — RMWed only on the rare
///   slot-exhaustion fallback and at thread exit; hot paths load them.
/// * Attempt-id and TVar-id sources — handed out in thread-local blocks
///   (`NEXT_ATTEMPT_BLOCK`, `TVAR_ID_BLOCK`), one shared RMW per ~1k
///   allocations.
/// * `wtm-core`'s lock-acquisition tally — bumped once per run boundary
///   by design, never inside transactions.
#[derive(Debug)]
pub struct ShardedU64 {
    shards: [PaddedU64; Self::SHARDS],
}

/// One shard on its own cache line (128 B covers the spatial prefetcher
/// pairing on x86).
#[repr(align(128))]
#[derive(Debug)]
struct PaddedU64(AtomicU64);

impl ShardedU64 {
    /// Shard count: power of two so the hint folds with a mask.
    pub const SHARDS: usize = 8;

    /// A zeroed sharded counter (usable in `static` initializers).
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const Z: PaddedU64 = PaddedU64(AtomicU64::new(0));
        ShardedU64 {
            shards: [Z; Self::SHARDS],
        }
    }

    /// Add `v` to the shard chosen by `hint` (any stable per-thread value:
    /// slot index, thread id). Relaxed — fold-on-read counters only.
    #[inline]
    pub fn add(&self, hint: usize, v: u64) {
        self.shards[hint & (Self::SHARDS - 1)]
            .0
            .fetch_add(v, Ordering::Relaxed);
    }

    /// Fold all shards.
    pub fn sum(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Zero all shards (quiescent callers only).
    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for ShardedU64 {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-thread metric counters. All updates are `Relaxed`: the counters are
/// only aggregated after the worker threads have been joined.
///
/// Cache-line-aligned: the engine allocates one per worker, and the
/// alignment keeps a worker's staged-counter traffic off its neighbours'
/// lines regardless of how the allocator packs them.
#[repr(align(128))]
#[derive(Debug, Default)]
pub struct ThreadStats {
    /// Committed transactions.
    pub commits: AtomicU64,
    /// Aborted attempts.
    pub aborts: AtomicU64,
    /// Write-write conflicts observed.
    pub conflicts_ww: AtomicU64,
    /// Read-write conflicts observed (reader side).
    pub conflicts_rw: AtomicU64,
    /// Write-read conflicts observed (writer side, visible reads).
    pub conflicts_wr: AtomicU64,
    /// Conflicts whose enemy logical transaction equals the previous
    /// conflict's enemy (the paper's *repeat conflicts*).
    pub repeat_conflicts: AtomicU64,
    /// Nanoseconds spent in attempts that ended up aborting (*wasted work*).
    pub wasted_ns: AtomicU64,
    /// Nanoseconds spent in attempts that committed.
    pub committed_ns: AtomicU64,
    /// Nanoseconds from first attempt start to commit, summed (*response time*).
    pub response_ns: AtomicU64,
    /// Nanoseconds spent blocked inside contention-manager waits.
    pub wait_ns: AtomicU64,
    /// Objects opened (reads + writes that reached the object).
    pub opens: AtomicU64,
    /// Logical transaction id of the last conflict's enemy (repeat detection).
    last_enemy: AtomicU64,
    /// Staged per-attempt deltas, folded into the canonical fields every
    /// [`STATS_FLUSH_EVERY`] attempts (see the module docs).
    pending: PendingStats,
}

/// How many attempts may stage their deltas before the worker folds them
/// into the canonical counters. Amortizes the atomic-RMW cost; snapshots
/// fold the remainder in regardless, so the value only trades flush
/// frequency against the worst-case transient skew of a mid-run snapshot.
pub(crate) const STATS_FLUSH_EVERY: u64 = 32;

/// The staged counter block. Written exclusively by the owning worker
/// (plain load+store — no RMW); concurrently loaded by `snapshot`.
/// Aligned to its own cache line inside [`ThreadStats`] so the owner's
/// per-attempt stores never contend with a concurrent snapshot walking
/// the canonical fields.
#[repr(align(128))]
#[derive(Debug, Default)]
struct PendingStats {
    commits: AtomicU64,
    aborts: AtomicU64,
    opens: AtomicU64,
    committed_ns: AtomicU64,
    response_ns: AtomicU64,
    wasted_ns: AtomicU64,
    /// Attempts staged since the last fold.
    staged: AtomicU64,
}

impl ThreadStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn record_conflict(&self, kind: crate::cm::ConflictKind, enemy_txn: u64) {
        use crate::cm::ConflictKind::*;
        match kind {
            WriteWrite => self.conflicts_ww.fetch_add(1, Ordering::Relaxed),
            ReadWrite => self.conflicts_rw.fetch_add(1, Ordering::Relaxed),
            WriteRead => self.conflicts_wr.fetch_add(1, Ordering::Relaxed),
        };
        let prev = self.last_enemy.swap(enemy_txn, Ordering::Relaxed);
        if prev == enemy_txn {
            self.repeat_conflicts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Single-writer bump of a staged cell: only the owning worker writes
    /// these, so `load + store` replaces an atomic RMW.
    #[inline]
    fn bump(cell: &AtomicU64, v: u64) {
        cell.store(
            cell.load(Ordering::Relaxed).wrapping_add(v),
            Ordering::Relaxed,
        );
    }

    /// Stage a committed attempt's deltas. Returns `true` when the staged
    /// block is due for a fold (every [`STATS_FLUSH_EVERY`] attempts).
    #[inline]
    pub(crate) fn stage_commit(&self, opens: u64, committed_ns: u64, response_ns: u64) -> bool {
        let p = &self.pending;
        Self::bump(&p.commits, 1);
        if opens > 0 {
            Self::bump(&p.opens, opens);
        }
        // Elided-clock commits stage zero durations (settled lazily via
        // `stage_lazy_durations`): skip the dead stores.
        if committed_ns > 0 {
            Self::bump(&p.committed_ns, committed_ns);
        }
        if response_ns > 0 {
            Self::bump(&p.response_ns, response_ns);
        }
        Self::bump(&p.staged, 1);
        p.staged.load(Ordering::Relaxed) >= STATS_FLUSH_EVERY
    }

    /// Stage an aborted attempt's deltas. Returns `true` when the staged
    /// block is due for a fold.
    #[inline]
    pub(crate) fn stage_abort(&self, opens: u64, wasted_ns: u64) -> bool {
        let p = &self.pending;
        Self::bump(&p.aborts, 1);
        if opens > 0 {
            Self::bump(&p.opens, opens);
        }
        Self::bump(&p.wasted_ns, wasted_ns);
        Self::bump(&p.staged, 1);
        p.staged.load(Ordering::Relaxed) >= STATS_FLUSH_EVERY
    }

    /// Lazily account committed/response time for commits whose
    /// commit-time clock read was elided (see the engine's deferred
    /// duration accounting). Owner-thread only.
    #[inline]
    pub(crate) fn stage_lazy_durations(&self, committed_ns: u64, response_ns: u64) {
        Self::bump(&self.pending.committed_ns, committed_ns);
        Self::bump(&self.pending.response_ns, response_ns);
    }

    /// Fold the staged block into the canonical counters. Called by the
    /// owning worker every [`STATS_FLUSH_EVERY`] attempts and when its
    /// context is dropped; a no-op when nothing is staged.
    pub(crate) fn flush_pending(&self) {
        let p = &self.pending;
        if p.staged.load(Ordering::Relaxed) == 0
            && p.committed_ns.load(Ordering::Relaxed) == 0
            && p.response_ns.load(Ordering::Relaxed) == 0
        {
            return;
        }
        p.staged.store(0, Ordering::Relaxed);
        // fetch_add then zero the staged cell: a snapshot racing this fold
        // may transiently double-count (never under-count) — see module docs.
        for (canonical, staged) in [
            (&self.commits, &p.commits),
            (&self.aborts, &p.aborts),
            (&self.opens, &p.opens),
            (&self.committed_ns, &p.committed_ns),
            (&self.response_ns, &p.response_ns),
            (&self.wasted_ns, &p.wasted_ns),
        ] {
            let v = staged.load(Ordering::Relaxed);
            if v != 0 {
                canonical.fetch_add(v, Ordering::Relaxed);
                staged.store(0, Ordering::Relaxed);
            }
        }
    }

    /// Fold this thread's counters into an aggregate snapshot. Includes
    /// the staged pending block, so the result is complete even while the
    /// worker is between flushes (e.g. a run truncated by a budget
    /// deadline).
    pub fn snapshot(&self) -> StatsSnapshot {
        let p = &self.pending;
        StatsSnapshot {
            commits: self.commits.load(Ordering::Relaxed) + p.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed) + p.aborts.load(Ordering::Relaxed),
            conflicts_ww: self.conflicts_ww.load(Ordering::Relaxed),
            conflicts_rw: self.conflicts_rw.load(Ordering::Relaxed),
            conflicts_wr: self.conflicts_wr.load(Ordering::Relaxed),
            repeat_conflicts: self.repeat_conflicts.load(Ordering::Relaxed),
            wasted_ns: self.wasted_ns.load(Ordering::Relaxed) + p.wasted_ns.load(Ordering::Relaxed),
            committed_ns: self.committed_ns.load(Ordering::Relaxed)
                + p.committed_ns.load(Ordering::Relaxed),
            response_ns: self.response_ns.load(Ordering::Relaxed)
                + p.response_ns.load(Ordering::Relaxed),
            wait_ns: self.wait_ns.load(Ordering::Relaxed),
            opens: self.opens.load(Ordering::Relaxed) + p.opens.load(Ordering::Relaxed),
            wall: Duration::ZERO,
        }
    }

    /// Zero all counters (between experiment repetitions). Only call at
    /// quiescence: this writes the staged block, which live workers own.
    pub fn reset(&self) {
        let p = &self.pending;
        for c in [
            &self.commits,
            &self.aborts,
            &self.conflicts_ww,
            &self.conflicts_rw,
            &self.conflicts_wr,
            &self.repeat_conflicts,
            &self.wasted_ns,
            &self.committed_ns,
            &self.response_ns,
            &self.wait_ns,
            &self.opens,
            &self.last_enemy,
            &p.commits,
            &p.aborts,
            &p.opens,
            &p.committed_ns,
            &p.response_ns,
            &p.wasted_ns,
            &p.staged,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// Aggregated, immutable view of a run's metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StatsSnapshot {
    pub commits: u64,
    pub aborts: u64,
    pub conflicts_ww: u64,
    pub conflicts_rw: u64,
    pub conflicts_wr: u64,
    pub repeat_conflicts: u64,
    pub wasted_ns: u64,
    pub committed_ns: u64,
    pub response_ns: u64,
    pub wait_ns: u64,
    pub opens: u64,
    /// Wall-clock duration of the measured interval (set by the harness).
    pub wall: Duration,
}

impl StatsSnapshot {
    /// Merge another snapshot into this one (summing counters, taking the
    /// max wall time — threads run concurrently).
    pub fn merge(&mut self, other: &StatsSnapshot) {
        self.commits += other.commits;
        self.aborts += other.aborts;
        self.conflicts_ww += other.conflicts_ww;
        self.conflicts_rw += other.conflicts_rw;
        self.conflicts_wr += other.conflicts_wr;
        self.repeat_conflicts += other.repeat_conflicts;
        self.wasted_ns += other.wasted_ns;
        self.committed_ns += other.committed_ns;
        self.response_ns += other.response_ns;
        self.wait_ns += other.wait_ns;
        self.opens += other.opens;
        self.wall = self.wall.max(other.wall);
    }

    /// All conflicts of any kind.
    pub fn conflicts(&self) -> u64 {
        self.conflicts_ww + self.conflicts_rw + self.conflicts_wr
    }

    /// Committed transactions per second of wall time.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.commits as f64 / secs
        }
    }

    /// The paper's Fig. 4 metric: aborted attempts per committed transaction.
    pub fn aborts_per_commit(&self) -> f64 {
        if self.commits == 0 {
            self.aborts as f64
        } else {
            self.aborts as f64 / self.commits as f64
        }
    }

    /// Fraction of execution time spent in attempts that aborted
    /// (the paper's *wasted work*, §IV).
    pub fn wasted_work(&self) -> f64 {
        let total = self.wasted_ns + self.committed_ns;
        if total == 0 {
            0.0
        } else {
            self.wasted_ns as f64 / total as f64
        }
    }

    /// Mean duration of a committed attempt.
    pub fn avg_committed_duration(&self) -> Duration {
        Duration::from_nanos(self.committed_ns.checked_div(self.commits).unwrap_or(0))
    }

    /// Mean time from a logical transaction's first start to its commit
    /// (the paper's *average response time*, §IV).
    pub fn avg_response_time(&self) -> Duration {
        Duration::from_nanos(self.response_ns.checked_div(self.commits).unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cm::ConflictKind;

    #[test]
    fn snapshot_roundtrip() {
        let t = ThreadStats::new();
        t.commits.store(10, Ordering::Relaxed);
        t.aborts.store(5, Ordering::Relaxed);
        t.wasted_ns.store(500, Ordering::Relaxed);
        t.committed_ns.store(1500, Ordering::Relaxed);
        let s = t.snapshot();
        assert_eq!(s.commits, 10);
        assert_eq!(s.aborts, 5);
        assert!((s.aborts_per_commit() - 0.5).abs() < 1e-12);
        assert!((s.wasted_work() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_counters_and_maxes_wall() {
        let mut a = StatsSnapshot {
            commits: 3,
            wall: Duration::from_secs(2),
            ..Default::default()
        };
        let b = StatsSnapshot {
            commits: 7,
            wall: Duration::from_secs(1),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.commits, 10);
        assert_eq!(a.wall, Duration::from_secs(2));
        assert!((a.throughput() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn conflict_kinds_recorded_separately() {
        let t = ThreadStats::new();
        t.record_conflict(ConflictKind::WriteWrite, 1);
        t.record_conflict(ConflictKind::ReadWrite, 2);
        t.record_conflict(ConflictKind::ReadWrite, 3);
        t.record_conflict(ConflictKind::WriteRead, 4);
        let s = t.snapshot();
        assert_eq!(s.conflicts_ww, 1);
        assert_eq!(s.conflicts_rw, 2);
        assert_eq!(s.conflicts_wr, 1);
        assert_eq!(s.conflicts(), 4);
    }

    #[test]
    fn repeat_conflicts_detected() {
        let t = ThreadStats::new();
        t.record_conflict(ConflictKind::WriteWrite, 9);
        t.record_conflict(ConflictKind::WriteWrite, 9); // repeat
        t.record_conflict(ConflictKind::WriteWrite, 8); // different enemy
        t.record_conflict(ConflictKind::WriteWrite, 9); // not consecutive
        let s = t.snapshot();
        assert_eq!(s.repeat_conflicts, 1);
    }

    #[test]
    fn zero_commit_edge_cases() {
        let s = StatsSnapshot {
            aborts: 4,
            ..Default::default()
        };
        assert_eq!(s.aborts_per_commit(), 4.0);
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(s.avg_response_time(), Duration::ZERO);
        assert_eq!(s.avg_committed_duration(), Duration::ZERO);
    }

    #[test]
    fn reset_zeroes_everything() {
        let t = ThreadStats::new();
        t.commits.store(10, Ordering::Relaxed);
        t.record_conflict(ConflictKind::WriteWrite, 1);
        t.reset();
        let s = t.snapshot();
        assert_eq!(s, StatsSnapshot::default());
    }

    #[test]
    fn staged_deltas_are_visible_in_snapshot_before_any_flush() {
        // The Budget-truncation guarantee: counters staged but not yet
        // folded must still appear in a snapshot.
        let t = ThreadStats::new();
        assert!(!t.stage_commit(3, 100, 200));
        assert!(!t.stage_abort(1, 50));
        let s = t.snapshot();
        assert_eq!(s.commits, 1);
        assert_eq!(s.aborts, 1);
        assert_eq!(s.opens, 4);
        assert_eq!(s.committed_ns, 100);
        assert_eq!(s.response_ns, 200);
        assert_eq!(s.wasted_ns, 50);
        // The canonical fields are still untouched.
        assert_eq!(t.commits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn flush_fires_every_k_attempts_and_folds_exactly_once() {
        let t = ThreadStats::new();
        let mut flushes = 0;
        for i in 0..(3 * STATS_FLUSH_EVERY) {
            if t.stage_commit(1, 10, 10) {
                t.flush_pending();
                flushes += 1;
            }
            // Snapshot mid-stream is always complete.
            assert_eq!(t.snapshot().commits, i + 1);
        }
        assert_eq!(flushes, 3);
        assert_eq!(t.commits.load(Ordering::Relaxed), 3 * STATS_FLUSH_EVERY);
        // Nothing staged after a flush-aligned boundary.
        t.flush_pending();
        assert_eq!(t.snapshot().commits, 3 * STATS_FLUSH_EVERY);
    }

    #[test]
    fn sharded_counter_folds_across_hints_and_resets() {
        let c = ShardedU64::new();
        // Hints past the shard count wrap via the mask, never panic.
        for hint in 0..(ShardedU64::SHARDS * 3) {
            c.add(hint, 2);
        }
        assert_eq!(c.sum(), 2 * 3 * ShardedU64::SHARDS as u64);
        c.reset();
        assert_eq!(c.sum(), 0);
    }

    #[test]
    fn sharded_counter_spreads_distinct_hints() {
        // Distinct hints below SHARDS land in distinct shards: adding via
        // hint h then summing any single shard's view is internal, so
        // assert the observable part — per-hint adds are all retained.
        let c = ShardedU64::new();
        std::thread::scope(|s| {
            for h in 0..ShardedU64::SHARDS {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.add(h, 1);
                    }
                });
            }
        });
        assert_eq!(c.sum(), 1000 * ShardedU64::SHARDS as u64);
    }

    #[test]
    fn reset_clears_staged_deltas_too() {
        let t = ThreadStats::new();
        t.stage_commit(1, 10, 10);
        t.stage_lazy_durations(5, 5);
        t.reset();
        assert_eq!(t.snapshot(), StatsSnapshot::default());
    }
}
