//! Global reader-slot indices and the per-thread transaction registry.
//!
//! The lock-free read path (see [`crate::tvar`]) gives every OS thread a
//! small, stable *slot index*. A `TVar` carries one atomic word per slot
//! index; a reader registers itself on an object by storing its attempt id
//! into its slot — one `SeqCst` store, no lock, no allocation. A writer
//! discovers read-write conflicts by scanning those words.
//!
//! A slot value alone is just a number, so liveness is decided against the
//! **registry**: each slot index has a record publishing the attempt the
//! thread is currently running (`current` id plus the `Arc<TxState>` a
//! contention manager needs). A slot word matches a *live* reader iff its
//! value equals the registry's `current` id for that index and the
//! registered state is still `Active`. Attempt ids are process-global and
//! never reused, so a stale slot can never be mistaken for a live one —
//! even across engine instances or after a slot index is recycled by
//! another thread.
//!
//! ## Lifetime protocol: epoch reclamation
//!
//! The record's `Arc<TxState>` pointer is handed off through
//! [`crate::epoch`]. The owner replaces it with a plain `swap` and
//! *retires* the previous reference into its epoch bag; a scanner
//! [`crate::epoch::pin`]s before loading the pointer, so the retired
//! reference cannot be released while the scanner might still
//! dereference it. No owner-side spin, no scanner-side guard counter —
//! the Dekker-style guarded-pointer handshake this registry originally
//! used is retired (see DESIGN.md, "Reclamation & sharding", for the
//! historical design). A scanner that races a republish and surfaces the
//! *newer* attempt's pointer is rejected by the attempt-id filter:
//! attempt ids are never reused.
//!
//! Indices are allocated from a bitmap, lowest-free-first, and released by
//! a thread-local destructor when the thread exits, so long-running
//! processes stay within a compact index range. Threads beyond
//! [`MAX_SLOTS`] (or created after a `TVar` sized its slot array) simply
//! fall back to the mutex-protected overflow reader list — slower, never
//! wrong.

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::epoch;
use crate::txstate::TxState;

/// Upper bound on concurrently registered OS threads with fast-path slots.
pub const MAX_SLOTS: usize = 256;

/// Slot arrays are never smaller than this, so processes that create
/// `TVar`s before spawning workers still get fast-path coverage for a
/// typical thread count.
const MIN_CAPACITY: usize = 16;

/// Sentinel index for threads without a slot (bitmap exhausted).
pub(crate) const NO_SLOT: usize = usize::MAX;

// ---------------------------------------------------------------------------
// Attempt ids
// ---------------------------------------------------------------------------

/// Process-global attempt id source. Ids start at 1; 0 is the "empty slot"
/// sentinel. Handed out in thread-local blocks so the hot loop does not
/// contend on one cache line.
static NEXT_ATTEMPT_BLOCK: AtomicU64 = AtomicU64::new(1);

const ATTEMPT_BLOCK: u64 = 1 << 12;

thread_local! {
    /// (next id, end of block) for this thread.
    static ATTEMPT_IDS: std::cell::Cell<(u64, u64)> = const { std::cell::Cell::new((0, 0)) };
}

/// A fresh, process-globally unique attempt id (never 0, never reused).
pub(crate) fn next_attempt_id() -> u64 {
    ATTEMPT_IDS.with(|c| {
        let (next, end) = c.get();
        if next < end {
            c.set((next + 1, end));
            next
        } else {
            let start = NEXT_ATTEMPT_BLOCK.fetch_add(ATTEMPT_BLOCK, Ordering::Relaxed);
            c.set((start + 1, start + ATTEMPT_BLOCK));
            start
        }
    })
}

// ---------------------------------------------------------------------------
// Slot index allocation
// ---------------------------------------------------------------------------

/// Slot indices are grouped into shards of 64; each shard's *active-set
/// mask* (one bit per allocated index) lives on its own padded cache line.
/// [`crate::tvar::TVarInner::conflicting_reader`] iterates set bits of
/// these masks instead of walking the full slot-word array, so the scan is
/// O(active threads) and an empty shard costs one load.
pub(crate) const SHARD_BITS: usize = 6;
pub(crate) const SHARD_SLOTS: usize = 1 << SHARD_BITS;
pub(crate) const SLOT_SHARDS: usize = MAX_SLOTS / SHARD_SLOTS;

#[repr(align(128))]
struct SlotShard {
    /// Bit `b` set ⇔ index `shard * 64 + b` is allocated to a live
    /// thread. All operations are `SeqCst`: scanners use the mask as a
    /// filter in the Dekker handshake with [`crate::tvar`]'s fast read
    /// path (see [`shard_mask`]).
    mask: AtomicU64,
}

static SHARDS: [SlotShard; SLOT_SHARDS] = {
    #[allow(clippy::declare_interior_mutable_const)]
    const S: SlotShard = SlotShard {
        mask: AtomicU64::new(0),
    };
    [S; SLOT_SHARDS]
};

/// High-water mark of `index + 1` over all slot indices ever allocated.
static SLOT_HWM: AtomicUsize = AtomicUsize::new(0);

/// Capacity floor requested via [`reserve_reader_slots`].
static SLOT_FLOOR: AtomicUsize = AtomicUsize::new(MIN_CAPACITY);

/// Raise the slot-array capacity floor for `TVar`s created from now on.
///
/// [`crate::Stm::new`] calls this with its worker count, so engines built
/// before their workload allocate enough fast-path slots for every worker.
///
/// Ordering contract with [`slot_capacity`]: the `Release` max pairs with
/// the `Acquire` loads there, so once any observer sees a `TVar` created
/// after this call returns *through a synchronizing edge*, it also sees
/// the raised floor. In the common single-path case no edge is even
/// needed: `Stm::new` reserves before its worker threads exist, and
/// `thread::spawn`/`scope` already synchronize the spawning thread's
/// writes into the workers. The fallback for a racing thread that still
/// loads a stale floor is benign by construction — its `TVar` merely has
/// fewer fast-path words, and indices beyond an array's length use the
/// mutex-protected overflow list (slower, never wrong).
pub fn reserve_reader_slots(n: usize) {
    SLOT_FLOOR.fetch_max(n.min(MAX_SLOTS), Ordering::Release);
}

/// Number of slot words a freshly created `TVar` should carry.
pub(crate) fn slot_capacity() -> usize {
    SLOT_FLOOR
        .load(Ordering::Acquire)
        .max(SLOT_HWM.load(Ordering::Acquire))
        .min(MAX_SLOTS)
}

/// One `SeqCst` load of shard `s`'s allocation mask: the active-set word
/// conflict scans iterate instead of the full slot array. `SeqCst` is
/// load-bearing — see the Dekker argument in
/// [`crate::tvar::TVarInner::conflicting_reader`].
#[inline]
pub(crate) fn shard_mask(s: usize) -> u64 {
    SHARDS[s].mask.load(Ordering::SeqCst)
}

/// Allocate the lowest free slot index. The mask CAS is `SeqCst` so, in
/// the SC total order, the bit is visible before every later `SeqCst`
/// operation of the owning thread — in particular before any reader-slot
/// registration store it performs with this index.
fn alloc_index() -> usize {
    for (s, shard) in SHARDS.iter().enumerate() {
        let mut cur = shard.mask.load(Ordering::Relaxed);
        while cur != u64::MAX {
            let bit = cur.trailing_ones() as usize;
            match shard.mask.compare_exchange_weak(
                cur,
                cur | (1 << bit),
                Ordering::SeqCst,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    let idx = (s << SHARD_BITS) | bit;
                    SLOT_HWM.fetch_max(idx + 1, Ordering::Release);
                    return idx;
                }
                Err(actual) => cur = actual,
            }
        }
    }
    NO_SLOT
}

/// Release a slot index. Callers ([`SlotGuard::drop`]) unpublish first,
/// so by the time the bit clears every slot word still carrying one of
/// this thread's attempt ids is verifiably dead (its attempts can never
/// be live again — ids are not reused).
fn free_index(idx: usize) {
    SHARDS[idx >> SHARD_BITS]
        .mask
        .fetch_and(!(1 << (idx % SHARD_SLOTS)), Ordering::SeqCst);
}

struct SlotGuard {
    idx: usize,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        if self.idx != NO_SLOT {
            // The thread is exiting: clear `current` so every stale slot
            // word is verifiably dead, and retire the published state
            // through the epoch layer (a scanner may still be pinned on
            // it). The epoch TLS hands the retired reference to the
            // orphan list if its own destructor already ran.
            unpublish(self.idx);
            free_index(self.idx);
        }
    }
}

thread_local! {
    static MY_SLOT: SlotGuard = SlotGuard { idx: alloc_index() };
}

/// Test-only: a directly claimed slot index, bypassing the thread-local
/// guard. Allocation is lowest-free-first and tests never hold 256 live
/// threads, so a *high* index (e.g. `MAX_SLOTS - 1`, the last shard) is
/// never handed out organically — claiming it exercises shard-boundary
/// behavior deterministically. Dropping the claim unpublishes and frees
/// the index.
#[cfg(test)]
pub(crate) struct TestSlotClaim {
    pub(crate) idx: usize,
}

#[cfg(test)]
impl TestSlotClaim {
    /// Claim index `idx` if free; `None` if another claimant holds it.
    pub(crate) fn claim(idx: usize) -> Option<Self> {
        assert!(idx < MAX_SLOTS);
        let shard = &SHARDS[idx >> SHARD_BITS];
        let bit = 1u64 << (idx % SHARD_SLOTS);
        let mut cur = shard.mask.load(Ordering::SeqCst);
        loop {
            if cur & bit != 0 {
                return None;
            }
            match shard
                .mask
                .compare_exchange(cur, cur | bit, Ordering::SeqCst, Ordering::Relaxed)
            {
                Ok(_) => {
                    SLOT_HWM.fetch_max(idx + 1, Ordering::Release);
                    return Some(TestSlotClaim { idx });
                }
                Err(actual) => cur = actual,
            }
        }
    }
}

#[cfg(test)]
impl Drop for TestSlotClaim {
    fn drop(&mut self) {
        unpublish(self.idx);
        free_index(self.idx);
    }
}

/// This OS thread's slot index, allocated on first use ([`NO_SLOT`] if the
/// bitmap is exhausted or the thread is shutting down).
pub(crate) fn my_slot_index() -> usize {
    MY_SLOT.try_with(|g| g.idx).unwrap_or(NO_SLOT)
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// One thread's published attempt. Padded to its own cache line: the
/// owner republishes here every transaction, and without the alignment
/// four neighbouring threads' records would share a line and turn every
/// transaction boundary into cross-core traffic.
#[repr(align(128))]
struct ThreadRec {
    /// Attempt id currently running on this slot's thread (0 = none).
    current: AtomicU64,
    /// The matching state, for contention-manager hand-off; owns one
    /// strong count while non-null. Replaced by owner `swap`; the
    /// previous reference is retired via [`crate::epoch`], and scanners
    /// hold an epoch pin across the load + strong-count bump, so the
    /// reference is never released while a scanner can still reach it.
    state: AtomicPtr<TxState>,
}

impl ThreadRec {
    const fn new() -> Self {
        ThreadRec {
            current: AtomicU64::new(0),
            state: AtomicPtr::new(std::ptr::null_mut()),
        }
    }
}

static REGISTRY: [ThreadRec; MAX_SLOTS] = {
    #[allow(clippy::declare_interior_mutable_const)]
    const R: ThreadRec = ThreadRec::new();
    [R; MAX_SLOTS]
};

/// Retire the registry's previous strong reference into the epoch layer.
fn retire_prev(prev: *mut TxState) {
    if !prev.is_null() {
        // SAFETY: `prev` was published via `Arc::into_raw` by this slot's
        // owner and unlinked by the caller's swap, so this reconstructs
        // the registry's own strong reference exactly once.
        epoch::retire_arc(unsafe { Arc::from_raw(prev) });
    }
}

/// Publish `state` as the attempt currently running on slot `idx`.
///
/// Must happen before the attempt's first object access: a writer that
/// finds our slot word on an object must be able to resolve it here.
/// Production code always goes through [`republish`] (which also retires
/// whatever the slot still holds); the split publish remains for unit
/// tests that drive the registry directly.
#[cfg(test)]
pub(crate) fn publish(idx: usize, state: &Arc<TxState>) {
    if idx >= MAX_SLOTS {
        return;
    }
    let rec = &REGISTRY[idx];
    let raw = Arc::into_raw(Arc::clone(state)).cast_mut();
    let prev = rec.state.swap(raw, Ordering::AcqRel);
    // The owner always unpublishes before the next publish; a leftover
    // pointer can only mean a test-sequencing bug, but never leak it.
    debug_assert!(prev.is_null(), "publish over a still-published state");
    retire_prev(prev);
    rec.current.store(state.attempt_id, Ordering::SeqCst);
}

/// Withdraw the attempt published on slot `idx` (attempt over). The
/// registry's strong reference is retired — released once every scanner
/// that could have loaded it has unpinned (two epoch advances).
pub(crate) fn unpublish(idx: usize) {
    if idx >= MAX_SLOTS {
        return;
    }
    let rec = &REGISTRY[idx];
    rec.current.store(0, Ordering::SeqCst);
    let prev = rec.state.swap(std::ptr::null_mut(), Ordering::AcqRel);
    retire_prev(prev);
}

/// Replace the attempt published on slot `idx` with `state` in one step:
/// the fused form of `unpublish(idx)` + `publish(idx, state)` the engine
/// uses both between back-to-back attempts of one retry loop and at the
/// start of every transaction (the commit path leaves its attempt
/// published rather than withdrawing it). One pointer swap plus one bag
/// push — no wait for concurrent scanners: a scanner that catches the
/// *new* pointer under the old attempt id is rejected by `live_reader`'s
/// id filter (attempt ids are never reused), and one still dereferencing
/// the *old* pointer is protected by its epoch pin until the retired
/// reference becomes freeable.
pub(crate) fn republish(idx: usize, state: &Arc<TxState>) {
    if idx >= MAX_SLOTS {
        return;
    }
    let rec = &REGISTRY[idx];
    let raw = Arc::into_raw(Arc::clone(state)).cast_mut();
    let prev = rec.state.swap(raw, Ordering::AcqRel);
    rec.current.store(state.attempt_id, Ordering::SeqCst);
    retire_prev(prev);
}

/// Resolve a slot word: the state for attempt `attempt_id` on slot `idx`,
/// if that attempt is still the one running there. The caller still has to
/// check `is_active()` — a returned state may have just committed/aborted.
pub(crate) fn live_reader(idx: usize, attempt_id: u64) -> Option<Arc<TxState>> {
    if idx >= MAX_SLOTS {
        return None;
    }
    let rec = &REGISTRY[idx];
    if rec.current.load(Ordering::SeqCst) != attempt_id {
        return None;
    }
    // Pin before loading the pointer: the owner's republish retires the
    // previous reference *after* its swap, so whatever we load here stays
    // allocated until we unpin — bumping the strong count is race-free.
    let _guard = epoch::pin();
    let raw = rec.state.load(Ordering::Acquire);
    if raw.is_null() {
        return None;
    }
    // SAFETY: `raw` was published from `Arc::into_raw` and, under the
    // pin, its registry reference cannot have been released yet, so the
    // allocation is live and holds at least one strong count.
    let got = unsafe {
        Arc::increment_strong_count(raw);
        Arc::from_raw(raw)
    };
    // A republish racing between the `current` check and the load can
    // surface a newer attempt's state: the id filter rejects it.
    (got.attempt_id == attempt_id).then_some(got)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clockns;

    fn state(attempt_id: u64) -> Arc<TxState> {
        Arc::new(TxState::new(
            attempt_id,
            attempt_id,
            0,
            0,
            attempt_id,
            attempt_id,
            clockns::now(),
            0,
        ))
    }

    /// Drive epoch quiescence until `cond` holds (other tests in this
    /// binary pin transiently, so single advances may fail spuriously).
    fn quiesce_until(mut cond: impl FnMut() -> bool) -> bool {
        for _ in 0..100_000 {
            epoch::quiesce();
            if cond() {
                return true;
            }
            std::thread::yield_now();
        }
        false
    }

    #[test]
    fn attempt_ids_are_unique_across_threads() {
        let mut all: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| (0..1000).map(|_| next_attempt_id()).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        all.sort_unstable();
        let before = all.len();
        all.dedup();
        assert_eq!(before, all.len(), "attempt ids must never repeat");
        assert!(all.iter().all(|&a| a != 0), "0 is the empty-slot sentinel");
    }

    #[test]
    fn slot_indices_are_distinct_while_threads_live() {
        let barrier = std::sync::Barrier::new(4);
        let indices: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let barrier = &barrier;
                    s.spawn(move || {
                        let idx = my_slot_index();
                        barrier.wait(); // hold all four slots concurrently
                        idx
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "live threads share a slot: {indices:?}");
    }

    #[test]
    fn registry_roundtrip_and_staleness() {
        let idx = my_slot_index();
        assert_ne!(idx, NO_SLOT);
        let st = state(next_attempt_id());
        publish(idx, &st);
        let got = live_reader(idx, st.attempt_id).expect("published reader is live");
        assert_eq!(got.attempt_id, st.attempt_id);
        // A different attempt id on the same slot is dead.
        assert!(live_reader(idx, st.attempt_id + 1).is_none());
        unpublish(idx);
        assert!(live_reader(idx, st.attempt_id).is_none());
    }

    #[test]
    fn republish_swaps_attempts_and_retires_the_old_state() {
        let idx = my_slot_index();
        assert_ne!(idx, NO_SLOT);
        let first = state(next_attempt_id());
        publish(idx, &first);
        assert_eq!(Arc::strong_count(&first), 2, "registry holds a clone");
        let second = state(next_attempt_id());
        republish(idx, &second);
        // Old attempt: immediately unresolvable …
        assert!(live_reader(idx, first.attempt_id).is_none());
        // … and its registry reference is released through the epoch
        // layer once no scanner can still be dereferencing it.
        assert!(
            quiesce_until(|| Arc::strong_count(&first) == 1),
            "the retired registry reference must drain via the epoch bag"
        );
        // New attempt: live, exactly as after a fresh publish.
        let got = live_reader(idx, second.attempt_id).expect("republished attempt is live");
        assert_eq!(got.attempt_id, second.attempt_id);
        drop(got);
        unpublish(idx);
        assert!(live_reader(idx, second.attempt_id).is_none());
        assert!(
            quiesce_until(|| Arc::strong_count(&second) == 1),
            "unpublish must retire the final registry reference too"
        );
    }

    #[test]
    fn scanner_pin_keeps_a_swapped_state_reachable() {
        // A scanner's returned Arc stays valid across the owner's
        // republish + epoch drains: the strong count it bumped under the
        // pin keeps the allocation alive independently of the registry.
        let idx = my_slot_index();
        assert_ne!(idx, NO_SLOT);
        let first = state(next_attempt_id());
        publish(idx, &first);
        let held = live_reader(idx, first.attempt_id).expect("live before republish");
        let second = state(next_attempt_id());
        republish(idx, &second);
        quiesce_until(|| Arc::strong_count(&first) == 2);
        assert_eq!(held.attempt_id, first.attempt_id);
        assert_eq!(
            Arc::strong_count(&held),
            2,
            "scanner's ref + the test's own binding"
        );
        drop(held);
        unpublish(idx);
        let _ = quiesce_until(|| Arc::strong_count(&second) == 1);
    }

    #[test]
    fn reserve_raises_capacity() {
        reserve_reader_slots(33);
        assert!(slot_capacity() >= 33);
        // Clamped to the hard bound.
        reserve_reader_slots(100_000);
        assert!(slot_capacity() <= MAX_SLOTS);
    }
}
