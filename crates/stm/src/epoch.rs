//! Epoch-based reclamation: the one lifetime protocol for every
//! deferred-free structure in the engine.
//!
//! Three bespoke protocols used to guard cross-thread memory hand-off:
//! the registry's guarded-pointer Dekker handshake (`slots.rs`), the
//! deferred-withdrawal carry threaded through the retry loop (`stm.rs`),
//! and the leak-on-race segment publication of the dynamic frame table
//! (`wtm-window`). They are all the same problem — *free this allocation
//! once no concurrent reader can still hold a raw pointer into it* — so
//! this module solves it once, crossbeam-style:
//!
//! * A global epoch counter ([`global_epoch`]) advances by CAS when every
//!   *pinned* thread is pinned in the current epoch.
//! * A reader [`pin`]s before dereferencing shared raw pointers: one
//!   store to its own cache-line-padded epoch slot, one `SeqCst` fence,
//!   one recheck load. No RMW, no lock, no shared-line write.
//! * A writer unlinks a pointer, then [`retire_arc`]s (or
//!   [`retire_boxed_slice`]s) it into its thread-local *bag*, stamped
//!   with the current epoch `r`. The item is freed once the global epoch
//!   reaches `r + 2`: any reader that could have loaded the old pointer
//!   was pinned at an epoch `<= r` (and blocks advance past `r + 1`),
//!   while a reader pinned at `>= r + 1` is ordered after the unlink by
//!   the `SeqCst` fences in [`pin`] and `retire` and can only see the new
//!   pointer.
//! * Freeing is amortized: [`quiesce`] runs at transaction boundaries
//!   (the engine is trivially quiescent there), tries one advance, and
//!   drains the front of the bag. Steady-state cost is one *active-set*
//!   scan — a `SeqCst` load per 64-slot shard mask plus one slot load per
//!   allocated slot, O(active threads) rather than O(capacity) — and a
//!   couple of `VecDeque` operations; no allocation (the bag's capacity
//!   is reserved up front), no lock, which is what keeps the
//!   `write_path_allocs` and `lockstat` gates green.
//!
//! ## Thread exit
//!
//! A thread's bag must not die with it: its TLS destructor hands any
//! un-freed items to the global *orphan* list, drained by whichever
//! surviving thread quiesces next. The orphan list is behind a `Mutex`,
//! but the hot path only reads an atomic count (zero in steady state) —
//! the lock is touched exclusively during teardown hand-off. If TLS is
//! already gone (destructor ordering), [`pin`] falls back to a global
//! pin counter that blocks all advance — correct, and only reachable on
//! the cold teardown path.
//!
//! Global retired/freed accounting uses [`ShardedU64`] so the counters
//! themselves don't become the process-wide cache line this module
//! exists to remove.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::stats::ShardedU64;

/// Upper bound on threads with fast-path epoch slots; later threads fall
/// back to the advance-blocking global pin counter (correct, cold).
pub const MAX_EPOCH_THREADS: usize = 256;

/// Epochs start at 2 so `item.epoch + 2 <= global` never underflows and
/// slot value 0 can mean "unpinned".
static GLOBAL: AtomicU64 = AtomicU64::new(2);

/// One per-thread epoch announcement, padded so pin/unpin traffic from
/// neighbouring threads never false-shares.
#[repr(align(128))]
struct EpochSlot {
    /// 0 = unpinned; otherwise the global epoch observed at pin time.
    epoch: AtomicU64,
}

static SLOTS: [EpochSlot; MAX_EPOCH_THREADS] = {
    #[allow(clippy::declare_interior_mutable_const)]
    const S: EpochSlot = EpochSlot {
        epoch: AtomicU64::new(0),
    };
    [S; MAX_EPOCH_THREADS]
};

/// Slots are grouped into shards of 64; each shard's *active-set mask*
/// (one bit per allocated slot) lives on its own cache line so that
/// allocation churn in one thread group never invalidates the line the
/// advance scan of another group reads.
pub(crate) const SHARD_BITS: usize = 6;
const SHARD_SLOTS: usize = 1 << SHARD_BITS;
const EPOCH_SHARDS: usize = MAX_EPOCH_THREADS / SHARD_SLOTS;

#[repr(align(128))]
struct EpochShard {
    /// Bit `b` set ⇔ slot `shard * 64 + b` is allocated to a live thread.
    /// All operations are `SeqCst`: the mask is the advance scan's
    /// active-set filter, and skipping a shard on `mask == 0` is only
    /// sound inside the SC total order (see [`try_advance`]).
    mask: AtomicU64,
}

static SHARDS: [EpochShard; EPOCH_SHARDS] = {
    #[allow(clippy::declare_interior_mutable_const)]
    const S: EpochShard = EpochShard {
        mask: AtomicU64::new(0),
    };
    [S; EPOCH_SHARDS]
};

const NO_EPOCH_SLOT: usize = usize::MAX;

/// Pins taken after this thread's TLS was destroyed (or with the slot
/// bitmap exhausted). Any nonzero value blocks every advance — the
/// maximally conservative reader.
static FALLBACK_PINS: AtomicUsize = AtomicUsize::new(0);

/// Process-wide retired/freed accounting (diagnostics + garbage-bound
/// tests), sharded so bumps from different threads stay off one line.
static RETIRED: ShardedU64 = ShardedU64::new();
static FREED: ShardedU64 = ShardedU64::new();

/// Allocate the lowest free slot index. The mask CAS is `SeqCst` so the
/// bit set is ordered, in the SC total order, before every later `SeqCst`
/// operation of the owning thread — in particular before its first epoch
/// store, which is what lets [`try_advance`] trust a zero mask.
fn alloc_index() -> usize {
    for (s, shard) in SHARDS.iter().enumerate() {
        let mut cur = shard.mask.load(Ordering::Relaxed);
        while cur != u64::MAX {
            let bit = cur.trailing_ones() as usize;
            match shard.mask.compare_exchange_weak(
                cur,
                cur | (1 << bit),
                Ordering::SeqCst,
                Ordering::Relaxed,
            ) {
                Ok(_) => return (s << SHARD_BITS) | bit,
                Err(actual) => cur = actual,
            }
        }
    }
    NO_EPOCH_SLOT
}

/// Release a slot index. Callers clear the slot's epoch word (store 0)
/// first, so a scanner that still sees the bit finds an unpinned slot and
/// one that misses it skips a slot that was provably unpinned.
fn free_index(idx: usize) {
    SHARDS[idx >> SHARD_BITS]
        .mask
        .fetch_and(!(1 << (idx % SHARD_SLOTS)), Ordering::SeqCst);
}

/// Test-only: a directly claimed slot index, bypassing the thread-local
/// participant. Allocation is lowest-free-first and tests never run 256
/// concurrently live threads, so a *high* index (e.g. 255, the last
/// shard) is never handed out organically — claiming it exercises the
/// shard-boundary paths deterministically. Dropping the claim unpins the
/// slot and returns the index.
#[cfg(test)]
pub(crate) struct RawSlotClaim {
    idx: usize,
}

#[cfg(test)]
impl RawSlotClaim {
    /// Claim slot `idx` if free. `None` if another claimant holds it.
    pub(crate) fn claim(idx: usize) -> Option<Self> {
        assert!(idx < MAX_EPOCH_THREADS);
        let shard = &SHARDS[idx >> SHARD_BITS];
        let bit = 1u64 << (idx % SHARD_SLOTS);
        let mut cur = shard.mask.load(Ordering::SeqCst);
        loop {
            if cur & bit != 0 {
                return None;
            }
            match shard
                .mask
                .compare_exchange(cur, cur | bit, Ordering::SeqCst, Ordering::Relaxed)
            {
                Ok(_) => return Some(RawSlotClaim { idx }),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Pin the claimed slot at `epoch`, as a stalled reader would.
    pub(crate) fn pin_at(&self, epoch: u64) {
        SLOTS[self.idx].epoch.store(epoch, Ordering::SeqCst);
    }
}

#[cfg(test)]
impl Drop for RawSlotClaim {
    fn drop(&mut self) {
        SLOTS[self.idx].epoch.store(0, Ordering::SeqCst);
        free_index(self.idx);
    }
}

// ---------------------------------------------------------------------------
// Deferred-drop bags
// ---------------------------------------------------------------------------

/// One retired allocation: a type-erased pointer plus the monomorphized
/// drop shim that reconstructs and drops it.
struct BagItem {
    /// Global epoch at retire time; freeable once `global >= epoch + 2`.
    epoch: u64,
    ptr: *mut (),
    /// Per-shim payload (slice length for boxed slices; unused for Arcs).
    aux: usize,
    drop_fn: unsafe fn(*mut (), usize),
}

// SAFETY: the retire_* constructors require `T: Send`, so the erased
// allocation may be dropped from whichever thread drains it (including
// the orphan path).
unsafe impl Send for BagItem {}

impl BagItem {
    fn free(self) {
        FREED.add(0, 1);
        // SAFETY: `ptr`/`aux` were produced together with `drop_fn` by one
        // of the retire_* constructors and are consumed exactly once.
        unsafe { (self.drop_fn)(self.ptr, self.aux) }
    }
}

/// Garbage of exited threads, drained by survivors' [`quiesce`] calls.
static ORPHANS: Mutex<Vec<BagItem>> = Mutex::new(Vec::new());
/// Mirror of `ORPHANS.len()`, maintained under the lock; lets the hot
/// path skip the mutex entirely while the list is empty.
static ORPHAN_COUNT: AtomicUsize = AtomicUsize::new(0);

fn orphan_push(items: impl IntoIterator<Item = BagItem>) {
    let mut v = ORPHANS.lock().unwrap_or_else(|e| e.into_inner());
    v.extend(items);
    ORPHAN_COUNT.store(v.len(), Ordering::Release);
}

fn drain_orphans(global: u64) {
    // Collect eligible items under the lock, free them outside it: a drop
    // shim is allowed to retire again (which takes the lock on the
    // orphan fallback path).
    let eligible: Vec<BagItem> = {
        let Ok(mut v) = ORPHANS.try_lock() else {
            return; // another thread is already draining
        };
        let mut out = Vec::new();
        let mut i = 0;
        while i < v.len() {
            if v[i].epoch + 2 <= global {
                out.push(v.swap_remove(i));
            } else {
                i += 1;
            }
        }
        ORPHAN_COUNT.store(v.len(), Ordering::Release);
        out
    };
    for it in eligible {
        it.free();
    }
}

/// Reserved bag capacity: steady state retires and frees one item per
/// transaction, so the queue depth stays around the two-epoch lag and
/// never reallocates (the zero-alloc write path depends on this).
const BAG_RESERVE: usize = 64;

/// Once the bag backs up this far (readers stalling the advance), every
/// further retire also attempts a collection.
const COLLECT_THRESHOLD: usize = 64;

struct Participant {
    idx: usize,
    /// Pin nesting depth; the slot is cleared at the outermost unpin.
    depth: Cell<usize>,
    bag: RefCell<VecDeque<BagItem>>,
}

impl Drop for Participant {
    fn drop(&mut self) {
        let items: Vec<BagItem> = self.bag.borrow_mut().drain(..).collect();
        if !items.is_empty() {
            orphan_push(items);
        }
        if self.idx != NO_EPOCH_SLOT {
            SLOTS[self.idx].epoch.store(0, Ordering::SeqCst);
            free_index(self.idx);
        }
    }
}

thread_local! {
    static PARTICIPANT: Participant = Participant {
        idx: alloc_index(),
        depth: Cell::new(0),
        bag: RefCell::new(VecDeque::with_capacity(BAG_RESERVE)),
    };
}

// ---------------------------------------------------------------------------
// Pinning
// ---------------------------------------------------------------------------

/// An active pin: while any [`Guard`] lives on a thread, no allocation
/// retired at the pinned epoch (or later) can be freed. Cheap, reentrant,
/// and deliberately `!Send` — the pin lives in this thread's slot.
pub struct Guard {
    fallback: bool,
    _not_send: PhantomData<*mut ()>,
}

/// Pin the current thread into the global epoch. Dereference shared raw
/// pointers (registry states, frame-table segments) only while the
/// returned guard is alive.
pub fn pin() -> Guard {
    let slot_pinned = PARTICIPANT.try_with(|p| {
        if p.idx == NO_EPOCH_SLOT {
            return false;
        }
        let depth = p.depth.get();
        p.depth.set(depth + 1);
        if depth == 0 {
            let slot = &SLOTS[p.idx].epoch;
            let mut e = GLOBAL.load(Ordering::Relaxed);
            loop {
                slot.store(e, Ordering::SeqCst);
                fence(Ordering::SeqCst);
                // Recheck: if the global moved between the load and our
                // announcement, re-announce the newer epoch so an
                // in-flight advance can't strand us one epoch behind
                // without noticing us.
                let g = GLOBAL.load(Ordering::SeqCst);
                if g == e {
                    break;
                }
                e = g;
            }
        }
        true
    });
    match slot_pinned {
        Ok(true) => Guard {
            fallback: false,
            _not_send: PhantomData,
        },
        // TLS destroyed (thread teardown) or slot bitmap exhausted: block
        // every advance for the guard's lifetime instead.
        _ => {
            FALLBACK_PINS.fetch_add(1, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            Guard {
                fallback: true,
                _not_send: PhantomData,
            }
        }
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if self.fallback {
            FALLBACK_PINS.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let _ = PARTICIPANT.try_with(|p| {
            let depth = p.depth.get() - 1;
            p.depth.set(depth);
            if depth == 0 {
                SLOTS[p.idx].epoch.store(0, Ordering::Release);
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Advance + retire
// ---------------------------------------------------------------------------

/// The current global epoch (diagnostics/tests).
pub fn global_epoch() -> u64 {
    GLOBAL.load(Ordering::SeqCst)
}

/// Try to advance the global epoch by one; returns the (possibly
/// unchanged) epoch afterwards. Succeeds iff every pinned slot is pinned
/// in the current epoch and no fallback pin is active. Lock-free; safe to
/// race from any number of threads.
///
/// The scan is O(active threads), not O(capacity): one `SeqCst` load of
/// each shard's allocation mask decides 64 slots at once (an empty shard
/// costs exactly that one load), and only set bits dereference a padded
/// slot line.
///
/// ## Why skipping by mask is safe
///
/// The hazard is an advance that misses a *newly allocated* pin because
/// its mask load ran before the allocating CAS in the SC total order.
/// Every operation involved is `SeqCst`, and the pinning thread's order
/// is: mask CAS `M` → epoch store `S(e)` → fence → recheck load `R` of
/// `GLOBAL`. Suppose a pin stabilized at epoch `e` (its final `R`
/// observed `e`) and an advance `e → e+1` (CAS `C1`) missed its mask bit,
/// i.e. its mask load `L1 <S M`. Then `L1 <S M <S S <S R`; and `C1 <S R`
/// is impossible (`R` observed `e`, and `GLOBAL` is monotonic), so
/// `C1 >S R`. At worst the epoch is now `e+1` with our slot pinned at `e`
/// — the exact race the pin recheck loop already budgets for, and freeing
/// needs `retired + 2 <= global`, so nothing retired while we could hold
/// its pointer is freeable yet. The *next* advance `e+1 → e+2` cannot
/// also miss us: it first loads `GLOBAL` and must observe `e+1`, which
/// puts that load SC-after `C1`, hence SC-after `R >S M` — so its mask
/// load sees our bit, and the slot load that follows sees our store
/// `S(e)` (`S <S R <S C1`), a pin at `e != e+1`, which blocks it. A pin
/// therefore stalls the epoch at most one step past its epoch, exactly
/// the slack the two-epoch free rule provides.
pub fn try_advance() -> u64 {
    let cur = GLOBAL.load(Ordering::SeqCst);
    if FALLBACK_PINS.load(Ordering::SeqCst) != 0 {
        return cur;
    }
    for (s, shard) in SHARDS.iter().enumerate() {
        let mut mask = shard.mask.load(Ordering::SeqCst);
        while mask != 0 {
            let bit = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            #[cfg(debug_assertions)]
            crate::probe::count_epoch_slot_load();
            let e = SLOTS[(s << SHARD_BITS) | bit].epoch.load(Ordering::SeqCst);
            if e != 0 && e != cur {
                return cur;
            }
        }
    }
    match GLOBAL.compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst) {
        Ok(_) => cur + 1,
        Err(seen) => seen,
    }
}

/// Retire an `Arc` reference: the strong count drops once every thread
/// that could have loaded the raw pointer before it was unlinked has left
/// its critical section.
pub fn retire_arc<T: Send + Sync + 'static>(arc: Arc<T>) {
    unsafe fn drop_arc<T>(ptr: *mut (), _aux: usize) {
        // SAFETY: `ptr` came from `Arc::into_raw` in `retire_arc` and is
        // consumed exactly once.
        drop(unsafe { Arc::from_raw(ptr as *const T) });
    }
    let raw = Arc::into_raw(arc) as *mut ();
    retire_with_fallback(raw, 0, drop_arc::<T>);
}

/// Retire a boxed slice (the frame table's growth segments).
pub fn retire_boxed_slice<T: Send + 'static>(b: Box<[T]>) {
    unsafe fn drop_slice<T>(ptr: *mut (), len: usize) {
        // SAFETY: `ptr`/`len` came from `Box::into_raw` of a `Box<[T]>`
        // of length `len` in `retire_boxed_slice`, consumed exactly once.
        drop(unsafe { Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr as *mut T, len)) });
    }
    let len = b.len();
    let raw = Box::into_raw(b) as *mut T as *mut ();
    retire_with_fallback(raw, len, drop_slice::<T>);
}

fn retire_with_fallback(ptr: *mut (), aux: usize, drop_fn: unsafe fn(*mut (), usize)) {
    // Order the caller's unlink before the epoch read: an advance that a
    // later reader pins into is then ordered after the unlink, so that
    // reader cannot see the retired pointer (the second half of the
    // `r + 2` free rule; the first half is pinned readers at `<= r`
    // blocking advance past `r + 1`).
    fence(Ordering::SeqCst);
    let mut item = Some(BagItem {
        epoch: GLOBAL.load(Ordering::SeqCst),
        ptr,
        aux,
        drop_fn,
    });
    let pushed = PARTICIPANT.try_with(|p| {
        RETIRED.add(p.idx, 1);
        let len = {
            let mut bag = p.bag.borrow_mut();
            bag.push_back(item.take().expect("retire item consumed once"));
            bag.len()
        };
        if len >= COLLECT_THRESHOLD {
            collect_local(p);
        }
    });
    if pushed.is_err() {
        // TLS gone (thread teardown): `try_with` never ran the closure,
        // so the item is still here — hand it straight to the orphans.
        RETIRED.add(0, 1);
        orphan_push(item.take());
    }
}

/// Drain the front of `p`'s bag after one advance attempt.
fn collect_local(p: &Participant) {
    let global = try_advance();
    loop {
        // Pop outside the free call: a drop shim may legally retire more
        // garbage, which re-borrows the bag.
        let item = {
            let mut bag = p.bag.borrow_mut();
            match bag.front() {
                Some(it) if it.epoch + 2 <= global => bag.pop_front(),
                _ => None,
            }
        };
        match item {
            Some(it) => it.free(),
            None => break,
        }
    }
}

/// Transaction-boundary hook: the calling thread holds no pins and no
/// shared raw pointers, so try one epoch advance and free whatever became
/// eligible. Steady-state cost: one advance scan (one mask load per
/// shard plus one slot load per *allocated* slot) and a couple of deque
/// ops; no lock unless orphans exist, no allocation.
pub fn quiesce() {
    let _ = PARTICIPANT.try_with(|p| {
        if p.depth.get() != 0 {
            // Called under an active pin (reentrant engine path): epochs
            // only advance at genuine quiescence, skip.
            return;
        }
        collect_local(p);
        if ORPHAN_COUNT.load(Ordering::Acquire) != 0 {
            drain_orphans(GLOBAL.load(Ordering::SeqCst));
        }
    });
}

/// Hand this thread's whole bag to the orphan list immediately, so
/// survivors can free it without waiting for this thread's TLS
/// destructors (used by the `TxState` pool's drop hook — robust to any
/// TLS destructor ordering).
pub(crate) fn flush_thread() {
    let _ = PARTICIPANT.try_with(|p| {
        let items: Vec<BagItem> = p.bag.borrow_mut().drain(..).collect();
        if !items.is_empty() {
            orphan_push(items);
        }
    });
}

/// Total allocations ever retired (process-wide, diagnostics/tests).
pub fn retired_count() -> u64 {
    RETIRED.sum()
}

/// Total retired allocations already freed (process-wide).
pub fn freed_count() -> u64 {
    FREED.sum()
}

/// Items waiting in this thread's bag (tests).
pub fn pending_local() -> usize {
    PARTICIPANT.try_with(|p| p.bag.borrow().len()).unwrap_or(0)
}

/// Items waiting on the orphan list (tests/diagnostics).
pub fn orphan_count() -> usize {
    ORPHAN_COUNT.load(Ordering::Acquire)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::mpsc;

    /// Heap payload whose drop is observable.
    struct Canary(Arc<AtomicBool>);
    impl Drop for Canary {
        fn drop(&mut self) {
            self.0.store(true, Ordering::SeqCst);
        }
    }

    fn canary() -> (Arc<Canary>, Arc<AtomicBool>) {
        let dropped = Arc::new(AtomicBool::new(false));
        (Arc::new(Canary(Arc::clone(&dropped))), dropped)
    }

    /// Retry helper: other unit tests in this binary pin transiently, so
    /// single advance attempts may fail spuriously; loop with yields.
    fn quiesce_until(mut cond: impl FnMut() -> bool) -> bool {
        for _ in 0..100_000 {
            quiesce();
            if cond() {
                return true;
            }
            std::thread::yield_now();
        }
        false
    }

    #[test]
    fn retired_arc_is_freed_after_two_advances() {
        let (c, dropped) = canary();
        retire_arc(c);
        assert!(!dropped.load(Ordering::SeqCst), "free must be deferred");
        assert!(
            quiesce_until(|| dropped.load(Ordering::SeqCst)),
            "retired arc must be freed once the epoch advances twice"
        );
    }

    #[test]
    fn pinned_reader_blocks_the_free() {
        // A stalled thread pinned in epoch e blocks advance past e + 1,
        // so anything retired at >= e stays allocated while it stalls.
        let (stall_tx, stall_rx) = mpsc::channel::<()>();
        let (pinned_tx, pinned_rx) = mpsc::channel::<u64>();
        let stalled = std::thread::spawn(move || {
            let _g = pin();
            pinned_tx.send(global_epoch()).unwrap();
            stall_rx.recv().unwrap(); // hold the pin until released
        });
        let pin_epoch = pinned_rx.recv().unwrap();
        let (c, dropped) = canary();
        retire_arc(c);
        // Drive advances hard: the stalled pin caps the epoch.
        for _ in 0..1000 {
            quiesce();
        }
        assert!(
            global_epoch() <= pin_epoch + 1,
            "a pinned slot must stop the epoch one step past its pin"
        );
        assert!(
            !dropped.load(Ordering::SeqCst),
            "garbage must not be freed while a pinned reader stalls"
        );
        stall_tx.send(()).unwrap();
        stalled.join().unwrap();
        assert!(
            quiesce_until(|| dropped.load(Ordering::SeqCst)),
            "garbage must drain once the stalled reader unpins"
        );
    }

    #[test]
    fn pins_are_reentrant() {
        let g1 = pin();
        let e = global_epoch();
        let g2 = pin();
        drop(g2);
        // Outer pin still active: advance past e + 1 must be impossible.
        for _ in 0..100 {
            try_advance();
        }
        assert!(global_epoch() <= e + 1);
        drop(g1);
    }

    #[test]
    fn thread_exit_hands_garbage_to_survivors() {
        let (c, dropped) = canary();
        std::thread::spawn(move || {
            retire_arc(c);
            // Exit immediately: the TLS destructor must orphan the bag.
        })
        .join()
        .unwrap();
        assert!(
            quiesce_until(|| dropped.load(Ordering::SeqCst)),
            "an exited thread's garbage must be freed by survivors"
        );
    }

    #[test]
    fn retired_boxed_slice_is_freed() {
        // Drop observability via a canary element.
        struct Elem(Arc<AtomicBool>);
        impl Drop for Elem {
            fn drop(&mut self) {
                self.0.store(true, Ordering::SeqCst);
            }
        }
        let dropped = Arc::new(AtomicBool::new(false));
        let slice: Box<[Elem]> = vec![Elem(Arc::clone(&dropped))].into_boxed_slice();
        retire_boxed_slice(slice);
        assert!(
            quiesce_until(|| dropped.load(Ordering::SeqCst)),
            "retired slice must be freed after two advances"
        );
    }

    #[test]
    fn stalled_pin_in_the_highest_shard_still_blocks_advance() {
        // Slot 255 lives in the last shard; organic lowest-free-first
        // allocation never reaches it in a test process, so a pin there
        // is only visible to the advance scan if the scan truly covers
        // every shard's mask — a scan that stopped at the populated low
        // shards would sail past it.
        let claim = RawSlotClaim::claim(MAX_EPOCH_THREADS - 1)
            .expect("index 255 is never organically allocated");
        // Announce like pin() does — re-announce until stable, so a
        // concurrent test's advance can't leave the pin already stale.
        let mut e = global_epoch();
        loop {
            claim.pin_at(e);
            let g = global_epoch();
            if g == e {
                break;
            }
            e = g;
        }
        for _ in 0..1000 {
            try_advance();
        }
        assert!(
            global_epoch() <= e + 1,
            "a pin in the last shard must stop the epoch one step past its pin"
        );
        drop(claim);
        // Released: the epoch can move again.
        let before = global_epoch();
        assert!(
            quiesce_until(|| global_epoch() > before),
            "advance must resume once the high-shard pin is released"
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    fn advance_scan_is_bounded_by_active_threads() {
        // Pin once so this thread's slot is allocated, then count the
        // slot loads of a single advance attempt. Other tests in this
        // binary hold slots too, but far fewer than the 256-slot
        // capacity a flat scan would walk: the bound below fails for the
        // O(capacity) scan and passes with head-room for the O(active)
        // one.
        let g = pin();
        drop(g);
        crate::probe::take_epoch_slot_loads();
        try_advance();
        let loads = crate::probe::take_epoch_slot_loads();
        assert!(loads >= 1, "our own allocated slot must be scanned");
        assert!(
            loads <= (MAX_EPOCH_THREADS / 4) as u64,
            "advance scan must be O(active threads), not O(capacity): {loads} slot loads"
        );
    }

    #[test]
    fn accounting_freed_never_exceeds_retired() {
        let (c, _dropped) = canary();
        retire_arc(c);
        quiesce_until(|| freed_count() > 0);
        assert!(freed_count() <= retired_count());
        assert!(retired_count() >= 1);
    }
}
