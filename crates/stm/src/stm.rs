//! Engine handle, per-thread contexts, and the greedy retry loop.
//!
//! [`Stm`] bundles the contention manager, the logical clock, and one
//! [`ThreadStats`] per worker. Worker thread `i` obtains a [`ThreadCtx`]
//! via [`Stm::thread`] and runs transactions with
//! [`ThreadCtx::atomic`]: the closure is retried until it commits, a new
//! [`TxState`] per attempt, *immediately* after every abort — the greedy
//! contention-management model the paper assumes ("if a transaction aborts
//! it then immediately restarts and attempts to commit again", §II-A).
//!
//! The retry loop is allocation-lean: the `TxState` allocation is recycled
//! through a per-thread pool whenever nothing else still references the
//! previous attempt (`Arc::get_mut` proves exclusivity — a locator or
//! registry clone in flight forces a fresh allocation, so recycling can
//! never resurrect an attempt some competitor still sees). Attempt ids
//! come from the process-global source in [`crate::slots`] — never reused,
//! so recycled records are indistinguishable from fresh ones. Timestamps
//! use the coarse [`crate::clockns`] clock: one call at transaction start
//! and one per attempt end instead of several `Instant::now()` syscalls.

use std::sync::Arc;

use crate::clock::LogicalClock;
use crate::clockns;
use crate::cm::ContentionManager;
use crate::slots;
use crate::stats::{StatsSnapshot, ThreadStats};
use crate::txn::{TxError, TxResult, Txn};
use crate::txstate::TxState;

/// The STM engine: one per experiment run.
pub struct Stm {
    cm: Arc<dyn ContentionManager>,
    clock: LogicalClock,
    threads: Box<[Arc<ThreadStats>]>,
}

impl Stm {
    /// Build an engine for `num_threads` workers using contention policy `cm`.
    pub fn new(cm: Arc<dyn ContentionManager>, num_threads: usize) -> Self {
        assert!(num_threads >= 1, "need at least one thread");
        // Make sure TVars created from here on carry a fast-path reader
        // slot for every worker this engine will run.
        slots::reserve_reader_slots(num_threads);
        Stm {
            cm,
            clock: LogicalClock::new(),
            threads: (0..num_threads)
                .map(|_| Arc::new(ThreadStats::new()))
                .collect(),
        }
    }

    /// The installed contention manager.
    pub fn cm(&self) -> &Arc<dyn ContentionManager> {
        &self.cm
    }

    /// Number of worker slots.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// The execution context for worker `thread_id` (0-based).
    pub fn thread(&self, thread_id: usize) -> ThreadCtx<'_> {
        assert!(
            thread_id < self.threads.len(),
            "thread id {thread_id} out of range ({} workers)",
            self.threads.len()
        );
        ThreadCtx {
            stm: self,
            thread_id,
        }
    }

    /// Metrics of one worker.
    pub fn thread_stats(&self, thread_id: usize) -> &Arc<ThreadStats> {
        &self.threads[thread_id]
    }

    /// Sum of all workers' metrics. `wall` is left zero — the harness
    /// stamps the measured interval.
    pub fn aggregate(&self) -> StatsSnapshot {
        let mut total = StatsSnapshot::default();
        for t in self.threads.iter() {
            total.merge(&t.snapshot());
        }
        total
    }

    /// Zero all metrics (between repetitions).
    pub fn reset_stats(&self) {
        for t in self.threads.iter() {
            t.reset();
        }
    }

    /// The engine's logical clock (timestamps for Greedy/Priority).
    pub fn clock(&self) -> &LogicalClock {
        &self.clock
    }
}

thread_local! {
    /// One recycled `TxState` allocation per OS thread. `None` while an
    /// attempt is running (or before the first attempt on this thread).
    static STATE_POOL: std::cell::Cell<Option<Arc<TxState>>> =
        const { std::cell::Cell::new(None) };
}

/// A `TxState` for the next attempt: the pooled allocation reset in place
/// when nothing else references it, a fresh allocation otherwise.
#[allow(clippy::too_many_arguments)]
fn state_for_attempt(
    attempt_id: u64,
    txn_id: u64,
    thread_id: usize,
    attempt: u32,
    ts: u64,
    attempt_ts: u64,
    first_start_ns: u64,
    karma: u64,
) -> Arc<TxState> {
    let pooled = STATE_POOL.with(|p| p.take());
    if let Some(mut arc) = pooled {
        if let Some(st) = Arc::get_mut(&mut arc) {
            st.reset_for_attempt(
                attempt_id,
                txn_id,
                thread_id,
                attempt,
                ts,
                attempt_ts,
                first_start_ns,
                karma,
            );
            return arc;
        }
        // A locator (or a scanner's transient clone) still holds the old
        // attempt: it must keep seeing that attempt's terminal status, so
        // the allocation cannot be reused. Drop our reference instead.
    }
    Arc::new(TxState::new(
        attempt_id,
        txn_id,
        thread_id,
        attempt,
        ts,
        attempt_ts,
        first_start_ns,
        karma,
    ))
}

/// Return a finished attempt's state to this thread's pool.
fn release_state(state: Arc<TxState>) {
    // `try_with`: during thread teardown the pool may already be gone.
    let _ = STATE_POOL.try_with(|p| p.set(Some(state)));
}

/// Per-worker execution context; cheap to construct, not `Send` across
/// workers (each worker must use its own `thread_id`).
pub struct ThreadCtx<'a> {
    stm: &'a Stm,
    thread_id: usize,
}

impl<'a> ThreadCtx<'a> {
    /// This worker's index.
    pub fn thread_id(&self) -> usize {
        self.thread_id
    }

    /// The engine.
    pub fn stm(&self) -> &'a Stm {
        self.stm
    }

    pub(crate) fn cm(&self) -> &Arc<dyn ContentionManager> {
        &self.stm.cm
    }

    pub(crate) fn stats(&self) -> &ThreadStats {
        &self.stm.threads[self.thread_id]
    }

    /// Run `body` as a transaction, retrying until it commits, and return
    /// its result. The greedy retry loop of the paper: no inter-attempt
    /// delay is added by the engine itself; back-off, random window delays,
    /// and the like are entirely the contention manager's business.
    pub fn atomic<R>(&self, mut body: impl FnMut(&mut Txn) -> TxResult<R>) -> R {
        match self.atomic_with_budget(usize::MAX, &mut body) {
            Some(r) => r,
            None => unreachable!("unbounded atomic cannot exhaust its budget"),
        }
    }

    /// Like [`atomic`](Self::atomic) but additionally records the access
    /// footprint of the *committed* attempt: `(object id, is_write)` in
    /// open order. Used by the trace-driven simulation pipeline.
    pub fn atomic_traced<R>(
        &self,
        mut body: impl FnMut(&mut Txn) -> TxResult<R>,
    ) -> (R, Vec<(u64, bool)>) {
        let mut trace = Vec::new();
        let r = self
            .atomic_inner(usize::MAX, &mut body, Some(&mut trace))
            .expect("unbounded atomic cannot exhaust its budget");
        (r, trace)
    }

    /// Like [`atomic`](Self::atomic) but gives up after `max_attempts`
    /// aborted attempts, returning `None`. Useful in tests and in
    /// experiment shutdown paths.
    ///
    /// The body always runs at least once (a budget of 0 behaves like a
    /// budget of 1); for `max_attempts >= 1` the closure runs *exactly*
    /// `max_attempts` times before giving up.
    pub fn atomic_with_budget<R>(
        &self,
        max_attempts: usize,
        body: &mut impl FnMut(&mut Txn) -> TxResult<R>,
    ) -> Option<R> {
        self.atomic_inner(max_attempts, body, None)
    }

    fn atomic_inner<R>(
        &self,
        max_attempts: usize,
        body: &mut impl FnMut(&mut Txn) -> TxResult<R>,
        mut trace: Option<&mut Vec<(u64, bool)>>,
    ) -> Option<R> {
        let ts = self.stm.clock.next();
        let first_start_ns = clockns::now();
        let slot_idx = slots::my_slot_index();
        // The logical-transaction id is simply the first attempt's id:
        // globally unique, and saves a second id counter on the hot path.
        let mut txn_id = 0;
        let mut karma: u64 = 0;
        let mut attempt: u32 = 0;
        loop {
            let attempt_ts = if attempt == 0 {
                ts
            } else {
                self.stm.clock.next()
            };
            let attempt_id = slots::next_attempt_id();
            if attempt == 0 {
                txn_id = attempt_id;
            }
            let state = state_for_attempt(
                attempt_id,
                txn_id,
                self.thread_id,
                attempt,
                ts,
                attempt_ts,
                first_start_ns,
                karma,
            );
            self.stm.cm.on_begin(&state, attempt > 0);
            // Make the attempt resolvable by writers scanning reader-slot
            // words; must precede the first object access in `body`.
            slots::publish(slot_idx, &state);
            let t0 = state.attempt_start_ns;
            #[cfg(feature = "trace")]
            wtm_trace::emit(wtm_trace::Event::instant(
                wtm_trace::EventKind::TxBegin,
                t0,
                self.thread_id as u32,
                txn_id,
                attempt as u64,
            ));
            let mut txn = Txn::new(Arc::clone(&state), self, slot_idx);
            if trace.is_some() {
                txn.enable_tracing();
            }
            let outcome = match body(&mut txn) {
                Ok(r) => txn.commit().map(|()| r),
                Err(e) => Err(e),
            };
            // Withdraw from the registry before pooling: the registry's
            // clone would otherwise keep the allocation non-exclusive.
            slots::unpublish(slot_idx);
            let opens = txn.opens_count();
            match outcome {
                Ok(r) => {
                    if let Some(sink) = trace.as_deref_mut() {
                        *sink = txn.take_footprint();
                    }
                    drop(txn);
                    let stats = self.stats();
                    if opens > 0 {
                        stats
                            .opens
                            .fetch_add(opens, std::sync::atomic::Ordering::Relaxed);
                    }
                    stats
                        .commits
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let now = clockns::now();
                    stats
                        .committed_ns
                        .fetch_add(now.saturating_sub(t0), std::sync::atomic::Ordering::Relaxed);
                    stats.response_ns.fetch_add(
                        now.saturating_sub(first_start_ns),
                        std::sync::atomic::Ordering::Relaxed,
                    );
                    #[cfg(feature = "trace")]
                    wtm_trace::emit(wtm_trace::Event::span(
                        wtm_trace::EventKind::Commit,
                        now,
                        now.saturating_sub(t0),
                        self.thread_id as u32,
                        txn_id,
                        attempt as u64,
                    ));
                    self.stm.cm.on_commit(&state);
                    release_state(state);
                    return Some(r);
                }
                Err(TxError::Aborted) => {
                    // Make sure the state is terminal even if the closure
                    // bailed without the CM aborting us (e.g. user bail-out).
                    let engine_bail = state.abort();
                    // `engine_bail` = nobody else aborted us and the body
                    // returned a bare `Err`: a user bail-out by taxonomy.
                    #[cfg(feature = "trace")]
                    let reason = if engine_bail {
                        wtm_trace::ABORT_USER
                    } else {
                        txn.abort_reason()
                    };
                    #[cfg(not(feature = "trace"))]
                    let _ = engine_bail;
                    drop(txn);
                    let stats = self.stats();
                    if opens > 0 {
                        stats
                            .opens
                            .fetch_add(opens, std::sync::atomic::Ordering::Relaxed);
                    }
                    stats
                        .aborts
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let now = clockns::now();
                    stats
                        .wasted_ns
                        .fetch_add(now.saturating_sub(t0), std::sync::atomic::Ordering::Relaxed);
                    #[cfg(feature = "trace")]
                    wtm_trace::emit(wtm_trace::Event::span(
                        wtm_trace::EventKind::Abort,
                        now,
                        now.saturating_sub(t0),
                        self.thread_id as u32,
                        txn_id,
                        reason,
                    ));
                    karma = state.karma();
                    self.stm.cm.on_abort(&state);
                    release_state(state);
                    attempt += 1;
                    if attempt as usize >= max_attempts {
                        return None;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cm::{AbortEnemyManager, AbortSelfManager};
    use crate::tvar::TVar;

    #[test]
    fn single_thread_counter_increments() {
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let tv: TVar<u64> = TVar::new(0);
        let ctx = stm.thread(0);
        for _ in 0..100 {
            ctx.atomic(|tx| {
                let v = *tx.read(&tv)?;
                tx.write(&tv, v + 1)
            });
        }
        assert_eq!(*tv.sample(), 100);
        let snap = stm.aggregate();
        assert_eq!(snap.commits, 100);
        assert_eq!(snap.aborts, 0);
    }

    #[test]
    fn read_your_writes() {
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let tv: TVar<u64> = TVar::new(5);
        let ctx = stm.thread(0);
        let observed = ctx.atomic(|tx| {
            tx.write(&tv, 9)?;
            let v = *tx.read(&tv)?;
            Ok(v)
        });
        assert_eq!(observed, 9);
        assert_eq!(*tv.sample(), 9);
    }

    #[test]
    fn modify_applies_function() {
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let tv: TVar<Vec<u32>> = TVar::new(vec![1, 2]);
        let ctx = stm.thread(0);
        ctx.atomic(|tx| tx.modify(&tv, |v| v.push(3)));
        assert_eq!(*tv.sample(), vec![1, 2, 3]);
    }

    #[test]
    fn multi_object_transaction_is_atomic() {
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let a: TVar<i64> = TVar::new(100);
        let b: TVar<i64> = TVar::new(0);
        let ctx = stm.thread(0);
        ctx.atomic(|tx| {
            let va = *tx.read(&a)?;
            let vb = *tx.read(&b)?;
            tx.write(&a, va - 30)?;
            tx.write(&b, vb + 30)
        });
        assert_eq!(*a.sample() + *b.sample(), 100);
        assert_eq!(*b.sample(), 30);
    }

    #[test]
    fn concurrent_counter_no_lost_updates_abort_self() {
        concurrent_counter(Arc::new(AbortSelfManager));
    }

    #[test]
    fn concurrent_counter_no_lost_updates_abort_enemy() {
        concurrent_counter(Arc::new(AbortEnemyManager));
    }

    fn concurrent_counter(cm: Arc<dyn ContentionManager>) {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 200;
        let stm = Stm::new(cm, THREADS);
        let tv: TVar<u64> = TVar::new(0);
        std::thread::scope(|s| {
            for i in 0..THREADS {
                let ctx = stm.thread(i);
                let tv = tv.clone();
                s.spawn(move || {
                    for _ in 0..PER_THREAD {
                        ctx.atomic(|tx| {
                            let v = *tx.read(&tv)?;
                            tx.write(&tv, v + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(*tv.sample(), THREADS as u64 * PER_THREAD);
        let snap = stm.aggregate();
        assert_eq!(snap.commits, THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn budgeted_atomic_gives_up() {
        // A transaction that always self-aborts exhausts its budget.
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let ctx = stm.thread(0);
        let out: Option<()> = ctx.atomic_with_budget(3, &mut |tx| Err(tx.abort_self()));
        assert!(out.is_none());
        assert!(stm.aggregate().aborts >= 3);
    }

    #[test]
    fn budget_is_an_exact_attempt_count() {
        // Regression: `attempt > max_attempts` used to allow
        // `max_attempts + 1` runs of the body.
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let ctx = stm.thread(0);
        let mut runs = 0u64;
        let out: Option<()> = ctx.atomic_with_budget(3, &mut |tx| {
            runs += 1;
            Err(tx.abort_self())
        });
        assert!(out.is_none());
        assert_eq!(runs, 3, "budget of 3 must run the body exactly 3 times");
        assert_eq!(stm.aggregate().aborts, 3);

        // Budget 0 still runs the body once (do-while semantics relied on
        // by rollback tests).
        let mut runs0 = 0u64;
        let out0: Option<()> = ctx.atomic_with_budget(0, &mut |tx| {
            runs0 += 1;
            Err(tx.abort_self())
        });
        assert!(out0.is_none());
        assert_eq!(runs0, 1);
    }

    #[test]
    fn txstate_pool_recycles_read_only_states() {
        // After a read-only commit nothing references the TxState, so the
        // next attempt on this thread must reuse the allocation. Cover
        // every slot index so the read takes the fast path regardless of
        // which harness thread runs this test (the overflow list would
        // hold a `Weak` and legitimately block recycling).
        slots::reserve_reader_slots(slots::MAX_SLOTS);
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let tv: TVar<u64> = TVar::new(7);
        let ctx = stm.thread(0);
        ctx.atomic(|tx| tx.read(&tv).map(|v| *v)); // prime the pool
        let mut first = 0usize;
        ctx.atomic(|tx| {
            first = Arc::as_ptr(tx.state()) as usize;
            tx.read(&tv).map(|v| *v)
        });
        let mut second = 0usize;
        ctx.atomic(|tx| {
            second = Arc::as_ptr(tx.state()) as usize;
            tx.read(&tv).map(|v| *v)
        });
        assert_eq!(first, second, "read-only TxState must be recycled");
    }

    #[test]
    fn stats_reset_between_runs() {
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let tv: TVar<u64> = TVar::new(0);
        let ctx = stm.thread(0);
        ctx.atomic(|tx| tx.write(&tv, 1));
        assert_eq!(stm.aggregate().commits, 1);
        stm.reset_stats();
        assert_eq!(stm.aggregate().commits, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn thread_id_out_of_range_panics() {
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let _ = stm.thread(1);
    }
}
