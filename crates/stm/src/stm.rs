//! Engine handle, per-thread contexts, and the greedy retry loop.
//!
//! [`Stm`] bundles the contention manager, the logical clock, and one
//! [`ThreadStats`] per worker. Worker thread `i` obtains a [`ThreadCtx`]
//! via [`Stm::thread`] and runs transactions with
//! [`ThreadCtx::atomic`]: the closure is retried until it commits, a new
//! [`TxState`] per attempt, *immediately* after every abort — the greedy
//! contention-management model the paper assumes ("if a transaction aborts
//! it then immediately restarts and attempts to commit again", §II-A).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::clock::LogicalClock;
use crate::cm::ContentionManager;
use crate::stats::{StatsSnapshot, ThreadStats};
use crate::txn::{TxError, TxResult, Txn};
use crate::txstate::TxState;

/// The STM engine: one per experiment run.
pub struct Stm {
    cm: Arc<dyn ContentionManager>,
    clock: LogicalClock,
    attempt_ids: AtomicU64,
    txn_ids: AtomicU64,
    threads: Box<[Arc<ThreadStats>]>,
}

impl Stm {
    /// Build an engine for `num_threads` workers using contention policy `cm`.
    pub fn new(cm: Arc<dyn ContentionManager>, num_threads: usize) -> Self {
        assert!(num_threads >= 1, "need at least one thread");
        Stm {
            cm,
            clock: LogicalClock::new(),
            attempt_ids: AtomicU64::new(1),
            txn_ids: AtomicU64::new(1),
            threads: (0..num_threads)
                .map(|_| Arc::new(ThreadStats::new()))
                .collect(),
        }
    }

    /// The installed contention manager.
    pub fn cm(&self) -> &Arc<dyn ContentionManager> {
        &self.cm
    }

    /// Number of worker slots.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// The execution context for worker `thread_id` (0-based).
    pub fn thread(&self, thread_id: usize) -> ThreadCtx<'_> {
        assert!(
            thread_id < self.threads.len(),
            "thread id {thread_id} out of range ({} workers)",
            self.threads.len()
        );
        ThreadCtx {
            stm: self,
            thread_id,
        }
    }

    /// Metrics of one worker.
    pub fn thread_stats(&self, thread_id: usize) -> &Arc<ThreadStats> {
        &self.threads[thread_id]
    }

    /// Sum of all workers' metrics. `wall` is left zero — the harness
    /// stamps the measured interval.
    pub fn aggregate(&self) -> StatsSnapshot {
        let mut total = StatsSnapshot::default();
        for t in self.threads.iter() {
            total.merge(&t.snapshot());
        }
        total
    }

    /// Zero all metrics (between repetitions).
    pub fn reset_stats(&self) {
        for t in self.threads.iter() {
            t.reset();
        }
    }

    /// The engine's logical clock (timestamps for Greedy/Priority).
    pub fn clock(&self) -> &LogicalClock {
        &self.clock
    }
}

/// Per-worker execution context; cheap to construct, not `Send` across
/// workers (each worker must use its own `thread_id`).
pub struct ThreadCtx<'a> {
    stm: &'a Stm,
    thread_id: usize,
}

impl<'a> ThreadCtx<'a> {
    /// This worker's index.
    pub fn thread_id(&self) -> usize {
        self.thread_id
    }

    /// The engine.
    pub fn stm(&self) -> &'a Stm {
        self.stm
    }

    pub(crate) fn cm(&self) -> &Arc<dyn ContentionManager> {
        &self.stm.cm
    }

    pub(crate) fn stats(&self) -> &ThreadStats {
        &self.stm.threads[self.thread_id]
    }

    /// Run `body` as a transaction, retrying until it commits, and return
    /// its result. The greedy retry loop of the paper: no inter-attempt
    /// delay is added by the engine itself; back-off, random window delays,
    /// and the like are entirely the contention manager's business.
    pub fn atomic<R>(&self, mut body: impl FnMut(&mut Txn) -> TxResult<R>) -> R {
        match self.atomic_with_budget(usize::MAX, &mut body) {
            Some(r) => r,
            None => unreachable!("unbounded atomic cannot exhaust its budget"),
        }
    }

    /// Like [`atomic`](Self::atomic) but additionally records the access
    /// footprint of the *committed* attempt: `(object id, is_write)` in
    /// open order. Used by the trace-driven simulation pipeline.
    pub fn atomic_traced<R>(
        &self,
        mut body: impl FnMut(&mut Txn) -> TxResult<R>,
    ) -> (R, Vec<(u64, bool)>) {
        let mut trace = Vec::new();
        let r = self
            .atomic_inner(usize::MAX, &mut body, Some(&mut trace))
            .expect("unbounded atomic cannot exhaust its budget");
        (r, trace)
    }

    /// Like [`atomic`](Self::atomic) but gives up after `max_attempts`
    /// aborted attempts, returning `None`. Useful in tests and in
    /// experiment shutdown paths.
    pub fn atomic_with_budget<R>(
        &self,
        max_attempts: usize,
        body: &mut impl FnMut(&mut Txn) -> TxResult<R>,
    ) -> Option<R> {
        self.atomic_inner(max_attempts, body, None)
    }

    fn atomic_inner<R>(
        &self,
        max_attempts: usize,
        body: &mut impl FnMut(&mut Txn) -> TxResult<R>,
        mut trace: Option<&mut Vec<(u64, bool)>>,
    ) -> Option<R> {
        let txn_id = self.stm.txn_ids.fetch_add(1, Ordering::Relaxed);
        let ts = self.stm.clock.next();
        let first_start = Instant::now();
        let mut karma: u64 = 0;
        let mut attempt: u32 = 0;
        loop {
            let attempt_ts = if attempt == 0 {
                ts
            } else {
                self.stm.clock.next()
            };
            let state = Arc::new(TxState::new(
                self.stm.attempt_ids.fetch_add(1, Ordering::Relaxed),
                txn_id,
                self.thread_id,
                attempt,
                ts,
                attempt_ts,
                first_start,
                karma,
            ));
            self.stm.cm.on_begin(&state, attempt > 0);
            let t0 = Instant::now();
            let mut txn = Txn::new(Arc::clone(&state), self);
            if trace.is_some() {
                txn.enable_tracing();
            }
            let outcome = match body(&mut txn) {
                Ok(r) => txn.commit().map(|()| r),
                Err(e) => Err(e),
            };
            match outcome {
                Ok(r) => {
                    if let Some(sink) = trace.as_deref_mut() {
                        *sink = txn.take_footprint();
                    }
                    let stats = self.stats();
                    stats.commits.fetch_add(1, Ordering::Relaxed);
                    stats
                        .committed_ns
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    stats.response_ns.fetch_add(
                        first_start.elapsed().as_nanos() as u64,
                        Ordering::Relaxed,
                    );
                    self.stm.cm.on_commit(&state);
                    return Some(r);
                }
                Err(TxError::Aborted) => {
                    // Make sure the state is terminal even if the closure
                    // bailed without the CM aborting us (e.g. user bail-out).
                    state.abort();
                    let stats = self.stats();
                    stats.aborts.fetch_add(1, Ordering::Relaxed);
                    stats
                        .wasted_ns
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    karma = state.karma();
                    self.stm.cm.on_abort(&state);
                    attempt += 1;
                    if attempt as usize > max_attempts {
                        return None;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cm::{AbortEnemyManager, AbortSelfManager};
    use crate::tvar::TVar;

    #[test]
    fn single_thread_counter_increments() {
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let tv: TVar<u64> = TVar::new(0);
        let ctx = stm.thread(0);
        for _ in 0..100 {
            ctx.atomic(|tx| {
                let v = *tx.read(&tv)?;
                tx.write(&tv, v + 1)
            });
        }
        assert_eq!(*tv.sample(), 100);
        let snap = stm.aggregate();
        assert_eq!(snap.commits, 100);
        assert_eq!(snap.aborts, 0);
    }

    #[test]
    fn read_your_writes() {
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let tv: TVar<u64> = TVar::new(5);
        let ctx = stm.thread(0);
        let observed = ctx.atomic(|tx| {
            tx.write(&tv, 9)?;
            let v = *tx.read(&tv)?;
            Ok(v)
        });
        assert_eq!(observed, 9);
        assert_eq!(*tv.sample(), 9);
    }

    #[test]
    fn modify_applies_function() {
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let tv: TVar<Vec<u32>> = TVar::new(vec![1, 2]);
        let ctx = stm.thread(0);
        ctx.atomic(|tx| tx.modify(&tv, |v| v.push(3)));
        assert_eq!(*tv.sample(), vec![1, 2, 3]);
    }

    #[test]
    fn multi_object_transaction_is_atomic() {
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let a: TVar<i64> = TVar::new(100);
        let b: TVar<i64> = TVar::new(0);
        let ctx = stm.thread(0);
        ctx.atomic(|tx| {
            let va = *tx.read(&a)?;
            let vb = *tx.read(&b)?;
            tx.write(&a, va - 30)?;
            tx.write(&b, vb + 30)
        });
        assert_eq!(*a.sample() + *b.sample(), 100);
        assert_eq!(*b.sample(), 30);
    }

    #[test]
    fn concurrent_counter_no_lost_updates_abort_self() {
        concurrent_counter(Arc::new(AbortSelfManager));
    }

    #[test]
    fn concurrent_counter_no_lost_updates_abort_enemy() {
        concurrent_counter(Arc::new(AbortEnemyManager));
    }

    fn concurrent_counter(cm: Arc<dyn ContentionManager>) {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 200;
        let stm = Stm::new(cm, THREADS);
        let tv: TVar<u64> = TVar::new(0);
        std::thread::scope(|s| {
            for i in 0..THREADS {
                let ctx = stm.thread(i);
                let tv = tv.clone();
                s.spawn(move || {
                    for _ in 0..PER_THREAD {
                        ctx.atomic(|tx| {
                            let v = *tx.read(&tv)?;
                            tx.write(&tv, v + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(*tv.sample(), THREADS as u64 * PER_THREAD);
        let snap = stm.aggregate();
        assert_eq!(snap.commits, THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn budgeted_atomic_gives_up() {
        // A transaction that always self-aborts exhausts its budget.
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let ctx = stm.thread(0);
        let out: Option<()> = ctx.atomic_with_budget(3, &mut |tx| {
            Err(tx.abort_self())
        });
        assert!(out.is_none());
        assert!(stm.aggregate().aborts >= 3);
    }

    #[test]
    fn stats_reset_between_runs() {
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let tv: TVar<u64> = TVar::new(0);
        let ctx = stm.thread(0);
        ctx.atomic(|tx| tx.write(&tv, 1));
        assert_eq!(stm.aggregate().commits, 1);
        stm.reset_stats();
        assert_eq!(stm.aggregate().commits, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn thread_id_out_of_range_panics() {
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let _ = stm.thread(1);
    }
}
