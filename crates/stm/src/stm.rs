//! Engine handle, per-thread contexts, and the greedy retry loop.
//!
//! [`Stm`] bundles the contention manager, the logical clock, and one
//! [`ThreadStats`] per worker. Worker thread `i` obtains a [`ThreadCtx`]
//! via [`Stm::thread`] and runs transactions with
//! [`ThreadCtx::atomic`]: the closure is retried until it commits, a new
//! [`TxState`] per attempt, *immediately* after every abort — the greedy
//! contention-management model the paper assumes ("if a transaction aborts
//! it then immediately restarts and attempts to commit again", §II-A).
//!
//! The retry loop is allocation-lean: the `TxState` allocation is recycled
//! through a per-thread pool whenever nothing else still references the
//! previous attempt (`Arc::get_mut` proves exclusivity — a locator or
//! registry clone in flight forces a fresh allocation, so recycling can
//! never resurrect an attempt some competitor still sees). The registry's
//! reference to a finished attempt is retired through [`crate::epoch`] by
//! the next attempt's republish and released after two epoch advances;
//! each attempt start calls [`crate::epoch::quiesce`] (the thread is
//! trivially quiescent there), so a steady loop cycles through the three
//! pool slots without ever allocating. Attempt ids come from the
//! process-global source in [`crate::slots`] — never reused, so recycled
//! records are indistinguishable from fresh ones. Timestamps use the
//! coarse [`crate::clockns`] clock: one call at transaction start and one
//! per attempt end instead of several `Instant::now()` syscalls.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::clock::LogicalClock;
use crate::clockns;
use crate::cm::ContentionManager;
use crate::dispatch::CmDispatch;
use crate::engine::{EngineKind, LazyRead};
use crate::slots;
use crate::stats::{StatsSnapshot, ThreadStats};
use crate::txn::{TxError, TxResult, Txn};
use crate::txstate::TxState;

/// The STM engine: one per experiment run.
pub struct Stm {
    cm: CmDispatch,
    engine: EngineKind,
    clock: LogicalClock,
    threads: Box<[Arc<ThreadStats>]>,
    /// Bumped by every [`Stm::reset_stats`]. Thread contexts stamp their
    /// pending (GV5 lazily-settled) commits with the epoch they were
    /// queued under; a settle that observes a newer epoch discards them
    /// instead of leaking pre-reset durations into the new window.
    reset_epoch: AtomicU64,
}

impl Stm {
    /// Build an engine for `num_threads` workers using contention policy
    /// `cm`, dispatched virtually (the extensibility path — any
    /// [`ContentionManager`] works). Built-in managers run faster through
    /// [`Stm::with_dispatch`], which dispatches monomorphically.
    pub fn new(cm: Arc<dyn ContentionManager>, num_threads: usize) -> Self {
        Self::with_dispatch(CmDispatch::Dyn(cm), num_threads)
    }

    /// Build an engine for `num_threads` workers with a [`CmDispatch`]
    /// contention policy: built-in managers are called directly on the hot
    /// hooks (no virtual dispatch). Use [`crate::managers::make_dispatch`]
    /// to construct one by name. Runs the eager (paper-default) protocol;
    /// use [`Stm::with_engine`] to choose.
    pub fn with_dispatch(cm: impl Into<CmDispatch>, num_threads: usize) -> Self {
        Self::with_engine(cm, num_threads, EngineKind::Eager)
    }

    /// Build an engine for `num_threads` workers with an explicit
    /// concurrency-control protocol ([`EngineKind`]): eager DSTM2-style
    /// (the paper's substrate) or TL2/STO-style lazy commit-time locking.
    pub fn with_engine(cm: impl Into<CmDispatch>, num_threads: usize, engine: EngineKind) -> Self {
        assert!(num_threads >= 1, "need at least one thread");
        // Make sure TVars created from here on carry a fast-path reader
        // slot for every worker this engine will run.
        slots::reserve_reader_slots(num_threads);
        Stm {
            cm: cm.into(),
            engine,
            clock: LogicalClock::new(),
            threads: (0..num_threads)
                .map(|_| Arc::new(ThreadStats::new()))
                .collect(),
            reset_epoch: AtomicU64::new(0),
        }
    }

    /// The installed contention manager.
    pub fn cm(&self) -> &CmDispatch {
        &self.cm
    }

    /// Which concurrency-control protocol this engine runs.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// Number of worker slots.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// The execution context for worker `thread_id` (0-based).
    pub fn thread(&self, thread_id: usize) -> ThreadCtx<'_> {
        assert!(
            thread_id < self.threads.len(),
            "thread id {thread_id} out of range ({} workers)",
            self.threads.len()
        );
        ThreadCtx {
            stm: self,
            thread_id,
            pend_commits: Cell::new(0),
            pend_t0_sum: Cell::new(0),
            pend_first_sum: Cell::new(0),
            pend_epoch: Cell::new(self.reset_epoch.load(Ordering::Relaxed)),
            trace_buf: Cell::new(None),
            reads_buf: Cell::new(None),
            #[cfg(debug_assertions)]
            read_versions_buf: Cell::new(None),
        }
    }

    /// Metrics of one worker.
    pub fn thread_stats(&self, thread_id: usize) -> &Arc<ThreadStats> {
        &self.threads[thread_id]
    }

    /// Sum of all workers' metrics. `wall` is left zero — the harness
    /// stamps the measured interval.
    pub fn aggregate(&self) -> StatsSnapshot {
        let mut total = StatsSnapshot::default();
        for t in self.threads.iter() {
            total.merge(&t.snapshot());
        }
        total
    }

    /// Zero all metrics (between repetitions).
    ///
    /// Also invalidates every thread context's *pending* commits — the
    /// ones whose commit-time clock read was elided (the GV5 lazy settle).
    /// Without the epoch bump those would settle their durations at the
    /// thread's next clock read, *after* this reset, silently leaking
    /// pre-reset work into the new measurement window.
    pub fn reset_stats(&self) {
        self.reset_epoch.fetch_add(1, Ordering::SeqCst);
        for t in self.threads.iter() {
            t.reset();
        }
    }

    /// The engine's logical clock (timestamps for Greedy/Priority).
    pub fn clock(&self) -> &LogicalClock {
        &self.clock
    }
}

/// Recycled `TxState` allocations for one OS thread. Three slots, not
/// one, because a released state can still be shared for a while: the
/// registry's reference is retired into the epoch bag by the *next*
/// transaction's republish and released two epoch advances later, and a
/// multi-object committer stays installed in each written locator until a
/// later access collapses it. A state parks here until those references
/// drain (with one quiescence per transaction boundary: exactly two
/// transactions later) while the other slots serve the interim
/// transactions — steady-state loops, including ones that interleave
/// single- and multi-object writers, then cycle a bounded set of
/// allocations and never touch the heap (see the `write_path_allocs`
/// integration test).
struct StatePool {
    slots: [std::cell::Cell<Option<Arc<TxState>>>; 3],
}

impl Drop for StatePool {
    fn drop(&mut self) {
        // Thread exit. Drop the pooled references first (each is just a
        // strong-count decrement — any still-shared state stays alive via
        // its registry/epoch-bag reference), then hand this thread's
        // epoch bag to the global orphan list so surviving threads can
        // release the deferred registry references instead of leaking
        // them — regardless of the order TLS destructors run in (the
        // drop-order regression test exercises exactly this).
        for slot in &self.slots {
            drop(slot.take());
        }
        crate::epoch::flush_thread();
    }
}

thread_local! {
    static STATE_POOL: StatePool = const {
        StatePool {
            slots: [
                std::cell::Cell::new(None),
                std::cell::Cell::new(None),
                std::cell::Cell::new(None),
            ],
        }
    };
}

/// A `TxState` for the next attempt: the pooled allocation reset in place
/// when nothing else references it, a fresh allocation otherwise.
#[allow(clippy::too_many_arguments)]
fn state_for_attempt(
    attempt_id: u64,
    txn_id: u64,
    thread_id: usize,
    attempt: u32,
    ts: u64,
    attempt_ts: u64,
    first_start_ns: u64,
    karma: u64,
) -> Arc<TxState> {
    let pooled = STATE_POOL.with(|p| {
        for slot in &p.slots {
            if let Some(mut arc) = slot.take() {
                if Arc::get_mut(&mut arc).is_some() {
                    return Some(arc);
                }
                // A locator (or a scanner's transient clone) still holds
                // this attempt: it must keep seeing the attempt's terminal
                // status, so the allocation cannot be reused *yet*. Leave
                // it parked until those references drain.
                slot.set(Some(arc));
            }
        }
        None
    });
    if let Some(mut arc) = pooled {
        let st = Arc::get_mut(&mut arc).expect("pooled state became shared");
        st.reset_for_attempt(
            attempt_id,
            txn_id,
            thread_id,
            attempt,
            ts,
            attempt_ts,
            first_start_ns,
            karma,
        );
        return arc;
    }
    Arc::new(TxState::new(
        attempt_id,
        txn_id,
        thread_id,
        attempt,
        ts,
        attempt_ts,
        first_start_ns,
        karma,
    ))
}

/// Return a finished attempt's state to this thread's pool.
fn release_state(state: Arc<TxState>) {
    // `try_with`: during thread teardown the pool may already be gone.
    let _ = STATE_POOL.try_with(|p| {
        let mut state = Some(state);
        for slot in &p.slots {
            let cur = slot.take();
            if cur.is_none() {
                slot.set(state.take());
                break;
            }
            slot.set(cur);
        }
        // Every slot parked (deep retry chains): drop the extra state.
    });
}

/// Per-worker execution context; cheap to construct, one per worker
/// (each worker must use its own `thread_id`).
pub struct ThreadCtx<'a> {
    stm: &'a Stm,
    thread_id: usize,
    /// Commits whose commit-time clock read was elided: count plus the
    /// sums of their attempt-start and first-start stamps. Settled into
    /// the stats at this thread's next clock read (the next transaction's
    /// start, or the next abort) or at context drop — a TL2 "GV5"-style
    /// lazy bump that trades one clock read per commit for a small,
    /// bounded overestimate of their durations (the inter-transaction
    /// gap). Tracing builds never pend: events need exact stamps.
    pend_commits: Cell<u64>,
    pend_t0_sum: Cell<u64>,
    pend_first_sum: Cell<u64>,
    /// The engine's reset epoch the queued commits were pended under. A
    /// settle that finds [`Stm::reset_stats`] has bumped the epoch since
    /// then drops them: their durations belong to the previous window.
    pend_epoch: Cell<u64>,
    /// Pooled footprint buffer for traced attempts: an aborted attempt's
    /// buffer comes back here and the next attempt reuses its capacity.
    trace_buf: Cell<Option<Vec<(u64, bool)>>>,
    /// Pooled read-set buffer for the lazy engine (stays `None`-cycling
    /// with zero capacity under the eager engine, which never reads it).
    reads_buf: Cell<Option<Vec<LazyRead>>>,
    /// Pooled buffer for the debug-only opacity self-check in `Txn`.
    #[cfg(debug_assertions)]
    read_versions_buf: Cell<Option<Vec<(u64, usize, bool)>>>,
}

impl Drop for ThreadCtx<'_> {
    fn drop(&mut self) {
        if self.pend_commits.get() > 0 {
            self.settle_pending_commits(clockns::now());
        }
        self.stats().flush_pending();
    }
}

impl<'a> ThreadCtx<'a> {
    /// This worker's index.
    pub fn thread_id(&self) -> usize {
        self.thread_id
    }

    /// The engine.
    pub fn stm(&self) -> &'a Stm {
        self.stm
    }

    pub(crate) fn cm(&self) -> &CmDispatch {
        &self.stm.cm
    }

    pub(crate) fn stats(&self) -> &ThreadStats {
        &self.stm.threads[self.thread_id]
    }

    /// Queue a commit for lazy duration accounting (its commit-time clock
    /// read was elided). Trace builds read the clock eagerly at every
    /// commit (events need real timestamps), so nothing pends there.
    #[cfg_attr(feature = "trace", allow(dead_code))]
    #[inline]
    fn pend_commit(&self, t0: u64, first_start_ns: u64) {
        if self.pend_commits.get() == 0 {
            // First pend of a batch: remember which measurement window
            // (reset epoch) it belongs to.
            self.pend_epoch.set(
                self.stm
                    .reset_epoch
                    .load(std::sync::atomic::Ordering::Relaxed),
            );
        }
        self.pend_commits.set(self.pend_commits.get() + 1);
        self.pend_t0_sum.set(self.pend_t0_sum.get() + t0);
        self.pend_first_sum
            .set(self.pend_first_sum.get() + first_start_ns);
    }

    /// Account all queued commits as if they committed at `now` — unless
    /// a stats reset intervened, in which case their durations belong to
    /// the zeroed window and are discarded.
    #[inline]
    fn settle_pending_commits(&self, now: u64) {
        let n = self.pend_commits.get();
        if n == 0 {
            return;
        }
        self.pend_commits.set(0);
        let t0_sum = self.pend_t0_sum.replace(0);
        let first_sum = self.pend_first_sum.replace(0);
        if self.pend_epoch.get()
            != self
                .stm
                .reset_epoch
                .load(std::sync::atomic::Ordering::Relaxed)
        {
            return;
        }
        let committed = (n * now).saturating_sub(t0_sum);
        let response = (n * now).saturating_sub(first_sum);
        self.stats().stage_lazy_durations(committed, response);
    }

    /// Take the pooled footprint buffer (cleared), or a fresh one.
    pub(crate) fn take_trace_buf(&self) -> Vec<(u64, bool)> {
        match self.trace_buf.take() {
            Some(mut v) => {
                v.clear();
                v
            }
            None => Vec::new(),
        }
    }

    /// Return a footprint buffer to the pool for the next attempt.
    pub(crate) fn put_trace_buf(&self, buf: Vec<(u64, bool)>) {
        if buf.capacity() > 0 {
            self.trace_buf.set(Some(buf));
        }
    }

    /// Take the pooled lazy read-set buffer (cleared), or a fresh one.
    pub(crate) fn take_reads_buf(&self) -> Vec<LazyRead> {
        match self.reads_buf.take() {
            Some(mut v) => {
                v.clear();
                v
            }
            None => Vec::new(),
        }
    }

    /// Return a read-set buffer to the pool for the next attempt. Cleared
    /// here (not just on take) so pooled entries don't pin their source
    /// objects' `Arc`s between attempts.
    pub(crate) fn put_reads_buf(&self, mut buf: Vec<LazyRead>) {
        buf.clear();
        if buf.capacity() > 0 {
            self.reads_buf.set(Some(buf));
        }
    }

    /// Take the pooled opacity-check buffer (cleared), or a fresh one.
    #[cfg(debug_assertions)]
    pub(crate) fn take_read_versions_buf(&self) -> Vec<(u64, usize, bool)> {
        match self.read_versions_buf.take() {
            Some(mut v) => {
                v.clear();
                v
            }
            None => Vec::new(),
        }
    }

    /// Return an opacity-check buffer to the pool for the next attempt.
    #[cfg(debug_assertions)]
    pub(crate) fn put_read_versions_buf(&self, buf: Vec<(u64, usize, bool)>) {
        if buf.capacity() > 0 {
            self.read_versions_buf.set(Some(buf));
        }
    }

    /// Run `body` as a transaction, retrying until it commits, and return
    /// its result. The greedy retry loop of the paper: no inter-attempt
    /// delay is added by the engine itself; back-off, random window delays,
    /// and the like are entirely the contention manager's business.
    pub fn atomic<R>(&self, mut body: impl FnMut(&mut Txn) -> TxResult<R>) -> R {
        match self.atomic_with_budget(usize::MAX, &mut body) {
            Some(r) => r,
            None => unreachable!("unbounded atomic cannot exhaust its budget"),
        }
    }

    /// Like [`atomic`](Self::atomic) but additionally records the access
    /// footprint of the *committed* attempt: `(object id, is_write)` in
    /// open order. Used by the trace-driven simulation pipeline.
    pub fn atomic_traced<R>(
        &self,
        mut body: impl FnMut(&mut Txn) -> TxResult<R>,
    ) -> (R, Vec<(u64, bool)>) {
        let mut trace = Vec::new();
        let r = self
            .atomic_inner(usize::MAX, &mut body, Some(&mut trace))
            .expect("unbounded atomic cannot exhaust its budget");
        (r, trace)
    }

    /// Like [`atomic`](Self::atomic) but gives up after `max_attempts`
    /// aborted attempts, returning `None`. Useful in tests and in
    /// experiment shutdown paths.
    ///
    /// The body always runs at least once (a budget of 0 behaves like a
    /// budget of 1); for `max_attempts >= 1` the closure runs *exactly*
    /// `max_attempts` times before giving up.
    pub fn atomic_with_budget<R>(
        &self,
        max_attempts: usize,
        body: &mut impl FnMut(&mut Txn) -> TxResult<R>,
    ) -> Option<R> {
        self.atomic_inner(max_attempts, body, None)
    }

    fn atomic_inner<R>(
        &self,
        max_attempts: usize,
        body: &mut impl FnMut(&mut Txn) -> TxResult<R>,
        mut trace: Option<&mut Vec<(u64, bool)>>,
    ) -> Option<R> {
        let ts = self.stm.clock.next();
        let first_start_ns = clockns::now();
        // A clock read is in hand: account any earlier commits whose
        // commit-time read was elided.
        self.settle_pending_commits(first_start_ns);
        let slot_idx = slots::my_slot_index();
        // The logical-transaction id is simply the first attempt's id:
        // globally unique, and saves a second id counter on the hot path.
        let mut txn_id = 0;
        let mut karma: u64 = 0;
        let mut attempt: u32 = 0;
        loop {
            // Attempt boundary: this thread holds no pins and no shared
            // raw pointers, so let the epoch layer advance and release
            // retired registry references — which is what turns the
            // pool's parked states exclusive again (quiesce *before* the
            // pool scan below).
            crate::epoch::quiesce();
            let attempt_ts = if attempt == 0 {
                ts
            } else {
                self.stm.clock.next()
            };
            let attempt_id = slots::next_attempt_id();
            if attempt == 0 {
                txn_id = attempt_id;
            }
            let state = state_for_attempt(
                attempt_id,
                txn_id,
                self.thread_id,
                attempt,
                ts,
                attempt_ts,
                first_start_ns,
                karma,
            );
            self.stm.cm.on_begin(&state, attempt > 0);
            // Make the attempt resolvable by writers scanning reader-slot
            // words; must precede the first object access in `body`. The
            // fused republish withdraws whatever the slot still publishes —
            // the previous attempt of this retry loop, or the *committed*
            // attempt of the previous `atomic` call (the commit path leaves
            // it published rather than paying a withdraw of its own; stale
            // registry entries are harmless because scanners check
            // `is_active`) — retiring the old reference into the epoch
            // bag and installing the new attempt with one pointer swap.
            slots::republish(slot_idx, &state);
            let t0 = state.attempt_start_ns;
            #[cfg(feature = "trace")]
            wtm_trace::emit(wtm_trace::Event::instant(
                wtm_trace::EventKind::TxBegin,
                t0,
                self.thread_id as u32,
                txn_id,
                attempt as u64,
            ));
            let mut txn = Txn::new(Arc::clone(&state), self, slot_idx);
            if trace.is_some() {
                txn.enable_tracing();
            }
            let outcome = match body(&mut txn) {
                Ok(r) => txn.commit().map(|()| r),
                Err(e) => Err(e),
            };
            let opens = txn.opens_count();
            match outcome {
                Ok(r) => {
                    // The committed attempt stays published: this thread's
                    // next transaction withdraws it as part of its own
                    // republish, saving a full guard-drain + swap here. The
                    // parked state stays shared for one extra transaction
                    // (the pool holds two slots exactly so this costs no
                    // allocation).
                    if let Some(sink) = trace.as_deref_mut() {
                        *sink = txn.take_footprint();
                    }
                    txn.release_buffers();
                    drop(txn);
                    let stats = self.stats();
                    // Elide the commit-time clock read: the durations are
                    // settled lazily at this thread's next clock read (a
                    // TL2 GV5-style deferred bump). Tracing builds keep
                    // the eager read for exact event stamps.
                    #[cfg(not(feature = "trace"))]
                    let flush_due = {
                        self.pend_commit(t0, first_start_ns);
                        stats.stage_commit(opens, 0, 0)
                    };
                    #[cfg(feature = "trace")]
                    let flush_due = {
                        let now = clockns::now();
                        self.settle_pending_commits(now);
                        wtm_trace::emit(wtm_trace::Event::span(
                            wtm_trace::EventKind::Commit,
                            now,
                            now.saturating_sub(t0),
                            self.thread_id as u32,
                            txn_id,
                            attempt as u64,
                        ));
                        stats.stage_commit(
                            opens,
                            now.saturating_sub(t0),
                            now.saturating_sub(first_start_ns),
                        )
                    };
                    if flush_due {
                        stats.flush_pending();
                    }
                    self.stm.cm.on_commit(&state);
                    release_state(state);
                    return Some(r);
                }
                Err(TxError::Aborted) => {
                    // Make sure the state is terminal even if the closure
                    // bailed without the CM aborting us (e.g. user bail-out).
                    let engine_bail = state.abort();
                    // `engine_bail` = nobody else aborted us and the body
                    // returned a bare `Err`: a user bail-out by taxonomy.
                    #[cfg(feature = "trace")]
                    let reason = if engine_bail {
                        wtm_trace::ABORT_USER
                    } else {
                        txn.abort_reason()
                    };
                    #[cfg(not(feature = "trace"))]
                    let _ = engine_bail;
                    // Roll back eagerly: fold the abort into every still-
                    // owned locator so enemies stop seeing this attempt
                    // and its allocation can recycle.
                    txn.release_write_set();
                    txn.release_buffers();
                    drop(txn);
                    let stats = self.stats();
                    let now = clockns::now();
                    self.settle_pending_commits(now);
                    if stats.stage_abort(opens, now.saturating_sub(t0)) {
                        stats.flush_pending();
                    }
                    #[cfg(feature = "trace")]
                    wtm_trace::emit(wtm_trace::Event::span(
                        wtm_trace::EventKind::Abort,
                        now,
                        now.saturating_sub(t0),
                        self.thread_id as u32,
                        txn_id,
                        reason,
                    ));
                    karma = state.karma();
                    self.stm.cm.on_abort(&state);
                    attempt += 1;
                    if attempt as usize >= max_attempts {
                        slots::unpublish(slot_idx);
                        release_state(state);
                        return None;
                    }
                    // Park the state right away: the registry still
                    // references it, but that reference is retired by the
                    // next iteration's republish and drained by its
                    // quiesce — no deferred-withdrawal carry across loop
                    // iterations anymore.
                    release_state(state);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cm::{AbortEnemyManager, AbortSelfManager};
    use crate::tvar::TVar;

    #[test]
    fn single_thread_counter_increments() {
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let tv: TVar<u64> = TVar::new(0);
        let ctx = stm.thread(0);
        for _ in 0..100 {
            ctx.atomic(|tx| {
                let v = *tx.read(&tv)?;
                tx.write(&tv, v + 1)
            });
        }
        assert_eq!(*tv.sample(), 100);
        let snap = stm.aggregate();
        assert_eq!(snap.commits, 100);
        assert_eq!(snap.aborts, 0);
    }

    #[test]
    fn read_your_writes() {
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let tv: TVar<u64> = TVar::new(5);
        let ctx = stm.thread(0);
        let observed = ctx.atomic(|tx| {
            tx.write(&tv, 9)?;
            let v = *tx.read(&tv)?;
            Ok(v)
        });
        assert_eq!(observed, 9);
        assert_eq!(*tv.sample(), 9);
    }

    #[test]
    fn modify_applies_function() {
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let tv: TVar<Vec<u32>> = TVar::new(vec![1, 2]);
        let ctx = stm.thread(0);
        ctx.atomic(|tx| tx.modify(&tv, |v| v.push(3)));
        assert_eq!(*tv.sample(), vec![1, 2, 3]);
    }

    #[test]
    fn multi_object_transaction_is_atomic() {
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let a: TVar<i64> = TVar::new(100);
        let b: TVar<i64> = TVar::new(0);
        let ctx = stm.thread(0);
        ctx.atomic(|tx| {
            let va = *tx.read(&a)?;
            let vb = *tx.read(&b)?;
            tx.write(&a, va - 30)?;
            tx.write(&b, vb + 30)
        });
        assert_eq!(*a.sample() + *b.sample(), 100);
        assert_eq!(*b.sample(), 30);
    }

    #[test]
    fn concurrent_counter_no_lost_updates_abort_self() {
        concurrent_counter(Arc::new(AbortSelfManager));
    }

    #[test]
    fn concurrent_counter_no_lost_updates_abort_enemy() {
        concurrent_counter(Arc::new(AbortEnemyManager));
    }

    fn concurrent_counter(cm: Arc<dyn ContentionManager>) {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 200;
        let stm = Stm::new(cm, THREADS);
        let tv: TVar<u64> = TVar::new(0);
        std::thread::scope(|s| {
            for i in 0..THREADS {
                let ctx = stm.thread(i);
                let tv = tv.clone();
                s.spawn(move || {
                    for _ in 0..PER_THREAD {
                        ctx.atomic(|tx| {
                            let v = *tx.read(&tv)?;
                            tx.write(&tv, v + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(*tv.sample(), THREADS as u64 * PER_THREAD);
        let snap = stm.aggregate();
        assert_eq!(snap.commits, THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn budgeted_atomic_gives_up() {
        // A transaction that always self-aborts exhausts its budget.
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let ctx = stm.thread(0);
        let out: Option<()> = ctx.atomic_with_budget(3, &mut |tx| Err(tx.abort_self()));
        assert!(out.is_none());
        assert!(stm.aggregate().aborts >= 3);
    }

    #[test]
    fn budget_is_an_exact_attempt_count() {
        // Regression: `attempt > max_attempts` used to allow
        // `max_attempts + 1` runs of the body.
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let ctx = stm.thread(0);
        let mut runs = 0u64;
        let out: Option<()> = ctx.atomic_with_budget(3, &mut |tx| {
            runs += 1;
            Err(tx.abort_self())
        });
        assert!(out.is_none());
        assert_eq!(runs, 3, "budget of 3 must run the body exactly 3 times");
        assert_eq!(stm.aggregate().aborts, 3);

        // Budget 0 still runs the body once (do-while semantics relied on
        // by rollback tests).
        let mut runs0 = 0u64;
        let out0: Option<()> = ctx.atomic_with_budget(0, &mut |tx| {
            runs0 += 1;
            Err(tx.abort_self())
        });
        assert!(out0.is_none());
        assert_eq!(runs0, 1);
    }

    /// Run `txns` transactions via `body` and count distinct `TxState`
    /// allocations, retrying a few rounds: a transient epoch pin from a
    /// concurrently running test can delay a bag drain and legitimately
    /// force an extra allocation in one round, but a quiet round must
    /// cycle within the pool bound.
    fn assert_pool_cycles(
        ctx: &ThreadCtx<'_>,
        bound: usize,
        mut body: impl FnMut(&mut Txn, &mut Vec<usize>) -> TxResult<()>,
    ) {
        let mut best = usize::MAX;
        for _ in 0..5 {
            let mut ptrs = Vec::new();
            for _ in 0..8 {
                ctx.atomic(|tx| {
                    ptrs.push(Arc::as_ptr(tx.state()) as usize);
                    body(tx, &mut ptrs)
                });
            }
            ptrs.sort_unstable();
            ptrs.dedup();
            best = best.min(ptrs.len());
            if best <= bound {
                return;
            }
        }
        panic!("TxStates must be recycled (best round saw {best} distinct allocations in 8 txns)");
    }

    #[test]
    fn txstate_pool_recycles_read_only_states() {
        // After a read-only commit the TxState is referenced only by the
        // pool, the registry, and (for one epoch lag) the epoch bag, so a
        // steady loop must cycle through the three pool slots: the
        // registry reference retired at transaction k drains at k + 2.
        // Cover every slot index so the read takes the fast path
        // regardless of which harness thread runs this test (the overflow
        // list would hold a `Weak` and legitimately block recycling).
        slots::reserve_reader_slots(slots::MAX_SLOTS);
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let tv: TVar<u64> = TVar::new(7);
        let ctx = stm.thread(0);
        for _ in 0..6 {
            ctx.atomic(|tx| tx.read(&tv).map(|v| *v)); // prime the pool
        }
        assert_pool_cycles(&ctx, 3, |tx, _| tx.read(&tv).map(|_| ()));
    }

    #[test]
    fn stats_reset_between_runs() {
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let tv: TVar<u64> = TVar::new(0);
        let ctx = stm.thread(0);
        ctx.atomic(|tx| tx.write(&tv, 1));
        assert_eq!(stm.aggregate().commits, 1);
        stm.reset_stats();
        assert_eq!(stm.aggregate().commits, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn thread_id_out_of_range_panics() {
        let stm = Stm::new(Arc::new(AbortSelfManager), 1);
        let _ = stm.thread(1);
    }

    #[test]
    fn write_txn_txstate_recycles_through_the_pool() {
        // The fused single-object commit collapses the locator (dropping
        // its TxState reference) and the registry's reference is retired
        // by the next transaction's republish, draining through the epoch
        // bag one transaction later — so a steady loop of write
        // transactions cycles through the three pool slots instead of
        // allocating per transaction.
        let stm = Stm::with_dispatch(CmDispatch::AbortSelf, 1);
        let tv: TVar<u64> = TVar::new(0);
        let ctx = stm.thread(0);
        for i in 0..6 {
            ctx.atomic(|tx| tx.write(&tv, i)); // prime the pool
        }
        let mut i = 0u64;
        assert_pool_cycles(&ctx, 3, move |tx, _| {
            i += 1;
            tx.write(&tv, i)
        });
    }

    #[test]
    fn consecutive_traced_attempts_reuse_the_footprint_buffer() {
        // Seed the per-thread pool with a buffer of recognizable capacity,
        // then run a traced transaction whose first attempt aborts: the
        // aborted attempt's footprint returns to the pool and the retry
        // must pick up the very same allocation — as must the committed
        // footprint handed back to the caller.
        let stm = Stm::with_dispatch(CmDispatch::AbortSelf, 1);
        let ctx = stm.thread(0);
        let seed: Vec<(u64, bool)> = Vec::with_capacity(64);
        let seed_ptr = seed.as_ptr() as usize;
        ctx.put_trace_buf(seed);
        let tvs: Vec<TVar<u64>> = (0..4).map(TVar::new).collect();
        let mut attempts = 0;
        let (_, fp) = ctx.atomic_traced(|tx| {
            for tv in &tvs {
                tx.read(tv)?;
            }
            attempts += 1;
            if attempts == 1 {
                return Err(tx.abort_self());
            }
            Ok(())
        });
        assert_eq!(attempts, 2);
        assert_eq!(fp.len(), tvs.len());
        assert_eq!(fp.capacity(), 64, "pooled capacity must carry over");
        assert_eq!(
            fp.as_ptr() as usize,
            seed_ptr,
            "both attempts must reuse the pooled buffer allocation"
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    fn read_versions_pool_clears_on_take() {
        let stm = Stm::with_dispatch(CmDispatch::AbortSelf, 1);
        let ctx = stm.thread(0);
        let mut seed: Vec<(u64, usize, bool)> = Vec::with_capacity(32);
        seed.push((1, 2, true)); // stale content must not leak into reuse
        let seed_ptr = seed.as_ptr() as usize;
        ctx.put_read_versions_buf(seed);
        let got = ctx.take_read_versions_buf();
        assert_eq!(got.as_ptr() as usize, seed_ptr);
        assert!(got.is_empty(), "pooled buffer must be cleared on take");
        assert_eq!(got.capacity(), 32);
    }

    #[test]
    fn pending_commit_durations_do_not_survive_reset_stats() {
        // Regression: commits whose commit-time clock read was elided
        // (GV5 lazy settle) used to settle their durations at the
        // thread's next clock read even if `reset_stats` had zeroed the
        // window in between — leaking pre-reset work into the new window.
        let stm = Stm::with_dispatch(CmDispatch::AbortSelf, 1);
        let tv: TVar<u64> = TVar::new(0);
        let ctx = stm.thread(0);
        ctx.atomic(|tx| tx.write(&tv, 1)); // pends its durations
        stm.reset_stats();
        // The next transaction's start settles the pending batch; with
        // the epoch bump it must be discarded, not staged.
        ctx.atomic(|tx| tx.write(&tv, 2));
        let mut body = |tx: &mut Txn| -> TxResult<()> { Err(tx.abort_self()) };
        let _ = ctx.atomic_with_budget(1, &mut body); // abort settles + flushes
        drop(ctx);
        let snap = stm.aggregate();
        assert_eq!(snap.commits, 1, "only the post-reset commit counts");
        // Every remaining pending duration belongs to the post-reset
        // commit, whose settle happened at the abort's clock read: the
        // pre-reset commit's (much earlier) start stamp must be gone.
        // With the leak, committed_ns would include `now - t0` of the
        // *first* commit as well, i.e. be roughly twice the span. We can
        // only assert the structural part deterministically:
        assert!(
            snap.committed_ns <= snap.response_ns,
            "committed duration cannot exceed response time for first-try commits"
        );

        // Direct check of the discard: pend, reset, settle via drop —
        // nothing may be staged.
        let stm2 = Stm::with_dispatch(CmDispatch::AbortSelf, 1);
        let tv2: TVar<u64> = TVar::new(0);
        let ctx2 = stm2.thread(0);
        ctx2.atomic(|tx| tx.write(&tv2, 1));
        stm2.reset_stats();
        drop(ctx2); // settles pending commits at drop time
        let snap2 = stm2.aggregate();
        assert_eq!(snap2.commits, 0);
        assert_eq!(
            snap2.committed_ns, 0,
            "durations pended before reset_stats must not leak into the new window"
        );
        assert_eq!(snap2.response_ns, 0);
    }

    #[test]
    fn lazy_engine_counter_and_read_your_writes() {
        let stm = Stm::with_engine(CmDispatch::AbortSelf, 1, crate::EngineKind::Lazy);
        assert_eq!(stm.engine(), crate::EngineKind::Lazy);
        let tv: TVar<u64> = TVar::new(0);
        let ctx = stm.thread(0);
        for _ in 0..100 {
            ctx.atomic(|tx| {
                let v = *tx.read(&tv)?;
                tx.write(&tv, v + 1)
            });
        }
        assert_eq!(*tv.sample(), 100);
        let observed = ctx.atomic(|tx| {
            tx.write(&tv, 500)?;
            Ok(*tx.read(&tv)?)
        });
        assert_eq!(observed, 500);
        ctx.atomic(|tx| tx.modify(&tv, |v| *v += 1));
        assert_eq!(*tv.sample(), 501);
        let snap = stm.aggregate();
        assert_eq!(snap.commits, 102);
        assert_eq!(snap.aborts, 0);
    }

    #[test]
    fn lazy_engine_multi_object_transaction_is_atomic() {
        let stm = Stm::with_engine(CmDispatch::AbortSelf, 1, crate::EngineKind::Lazy);
        let a: TVar<i64> = TVar::new(100);
        let b: TVar<i64> = TVar::new(0);
        let ctx = stm.thread(0);
        ctx.atomic(|tx| {
            let va = *tx.read(&a)?;
            let vb = *tx.read(&b)?;
            tx.write(&a, va - 30)?;
            tx.write(&b, vb + 30)
        });
        assert_eq!(*a.sample() + *b.sample(), 100);
        assert_eq!(*b.sample(), 30);
    }

    #[test]
    fn lazy_engine_concurrent_counter_no_lost_updates() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 200;
        let stm = Stm::with_engine(CmDispatch::AbortEnemy, THREADS, crate::EngineKind::Lazy);
        let tv: TVar<u64> = TVar::new(0);
        std::thread::scope(|s| {
            for i in 0..THREADS {
                let ctx = stm.thread(i);
                let tv = tv.clone();
                s.spawn(move || {
                    for _ in 0..PER_THREAD {
                        ctx.atomic(|tx| {
                            let v = *tx.read(&tv)?;
                            tx.write(&tv, v + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(*tv.sample(), THREADS as u64 * PER_THREAD);
        assert_eq!(stm.aggregate().commits, THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn lazy_engine_blind_writes_skip_validation_but_rmws_do_not() {
        // A blind write makes no read-set entry, so commit succeeds even
        // after a competitor overwrote the object; a read-modify-write
        // must detect the overwrite instead of losing the update.
        let stm = Stm::with_engine(CmDispatch::AbortSelf, 2, crate::EngineKind::Lazy);
        let tv: TVar<u64> = TVar::new(0);
        let ctx = stm.thread(0);
        ctx.atomic(|tx| tx.write(&tv, 7)); // blind
        assert_eq!(*tv.sample(), 7);
        // modify() under lazy is an RMW: its shadow is based on a
        // validated read, so concurrent-overwrite detection is covered by
        // the concurrent counter test; here just check single-thread
        // semantics compose with blind writes.
        ctx.atomic(|tx| {
            tx.modify(&tv, |v| *v *= 10)?;
            let v = *tx.read(&tv)?;
            tx.write(&tv, v + 1)
        });
        assert_eq!(*tv.sample(), 71);
    }

    #[test]
    fn staged_stats_are_exact_when_budget_truncates_below_flush_k() {
        // StopRule::Budget regression: a run shorter than the flush batch
        // (k = STATS_FLUSH_EVERY) must still report exact counts, because
        // snapshot() folds the staged deltas in.
        let n = (crate::stats::STATS_FLUSH_EVERY / 2).max(1);
        let stm = Stm::with_dispatch(CmDispatch::AbortSelf, 1);
        let tv: TVar<u64> = TVar::new(0);
        let ctx = stm.thread(0);
        for _ in 0..n {
            ctx.atomic(|tx| {
                let v = *tx.read(&tv)?;
                tx.write(&tv, v + 1)
            });
        }
        // One aborted attempt under budget exhaustion stages an abort too.
        let mut body = |tx: &mut Txn| -> TxResult<()> { Err(tx.abort_self()) };
        assert!(ctx.atomic_with_budget(1, &mut body).is_none());
        let snap = stm.aggregate();
        assert_eq!(snap.commits, n, "commits staged below k must be visible");
        assert_eq!(snap.aborts, 1, "aborts staged below k must be visible");
        assert_eq!(*tv.sample(), n);
    }
}
