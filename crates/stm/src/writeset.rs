//! Write-set entries with inline value storage.
//!
//! A write-set entry used to be a `Box<dyn ErasedWrite>`: one heap
//! allocation per written object per attempt, plus a virtual call for
//! every write-set scan and publish. [`WriteEntry`] removes both for the
//! common case: values whose payload fits [`INLINE_BUF_BYTES`] (any `T`
//! with size ≤ 24 bytes and alignment ≤ 8 — every List/RBTree/SkipList
//! node payload and counter in the paper's workloads) are stored *in the
//! entry itself*, next to the object handle, with monomorphized
//! publish/drop fn pointers taking the place of the vtable. Larger or
//! over-aligned types spill to the old boxed representation.
//!
//! At commit, an inline entry publishes through
//! `TVarInner::publish_value`, which recycles the object's retired
//! version `Arc` (the `spare` slot of the locator) instead of allocating
//! a fresh one — so a steady-state small-value commit performs **zero**
//! heap allocations end to end (asserted by the `write_path_allocs`
//! integration test).
//!
//! The id of the written object is hoisted into the entry header, so
//! write-set lookups (`Txn::find_write`) scan a plain `u64` field instead
//! of making one virtual `tvar_id()` call per entry.

use std::any::TypeId;
use std::mem::{align_of, size_of, MaybeUninit};
use std::sync::Arc;

use crate::tvar::{ErasedWrite, TVar, TypedWrite};
use crate::txstate::TxState;
use crate::TxObject;

/// Size of the inline payload buffer: the object handle (8 bytes) plus up
/// to 24 bytes of value.
pub(crate) const INLINE_BUF_BYTES: usize = 32;

/// Maximum alignment the inline buffer guarantees.
pub(crate) const INLINE_ALIGN: usize = 8;

/// Inline storage: `[u64; 4]` gives 32 bytes at alignment 8.
type InlineBuf = MaybeUninit<[u64; 4]>;

/// What actually lives in the inline buffer for a value of type `T`.
struct InlinePayload<T: TxObject> {
    tvar: TVar<T>,
    value: T,
}

/// An entry of a transaction's write set.
pub(crate) struct WriteEntry {
    tvar_id: u64,
    kind: EntryKind,
}

enum EntryKind {
    Inline(InlineWrite),
    Boxed(Box<dyn ErasedWrite>),
}

/// A type-erased inline entry: the monomorphized operations plus the raw
/// payload bytes. The fn pointers are the "vtable", stored flat in the
/// entry (no static to indirect through).
struct InlineWrite {
    /// Identity of the payload type, for checked downcasts. A fn pointer
    /// rather than a stored `TypeId` value so the entry stays `const`-free.
    type_id: fn() -> TypeId,
    /// Publish the inline value as the locator's `new` version.
    publish: unsafe fn(*const InlineBuf, &TxState),
    /// Fold the transaction's terminal outcome into the locator.
    release: unsafe fn(*const InlineBuf, &TxState),
    /// Single-entry fused commit: publish + status CAS + collapse under
    /// one object lock.
    commit_fused: unsafe fn(*const InlineBuf, &TxState) -> bool,
    /// Lazy engine: try to take the object's commit lock.
    lazy_lock: unsafe fn(*const InlineBuf, usize, u64) -> Option<(u64, u64)>,
    /// Lazy engine: the live commit-lock holder, if resolvable.
    lazy_owner: unsafe fn(*const InlineBuf) -> Option<Arc<TxState>>,
    /// Lazy engine: fold an eager run's leftover terminal writer.
    collapse_eager_leftover: unsafe fn(*const InlineBuf) -> bool,
    /// Lazy engine: release the commit lock without writing.
    lazy_unlock: unsafe fn(*const InlineBuf),
    /// Lazy engine: write back the inline value under the held lock.
    lazy_writeback: unsafe fn(*const InlineBuf, u64),
    /// Drop the payload in place.
    drop_in_place: unsafe fn(*mut InlineBuf),
    buf: InlineBuf,
}

// SAFETY: the payload is always an `InlinePayload<T>` with `T: TxObject`
// (so `TVar<T>` and `T` are both `Send`); the fn pointers carry no state.
unsafe impl Send for InlineWrite {}

impl Drop for InlineWrite {
    fn drop(&mut self) {
        // SAFETY: `buf` holds a valid `InlinePayload` of the type these
        // monomorphized fns were instantiated with; after this the entry
        // is gone, so nothing reads the buffer again.
        unsafe { (self.drop_in_place)(&mut self.buf) };
    }
}

unsafe fn publish_impl<T: TxObject>(buf: *const InlineBuf, me: &TxState) {
    // SAFETY (caller): `buf` holds a live `InlinePayload<T>`.
    let payload = unsafe { &*buf.cast::<InlinePayload<T>>() };
    payload.tvar.inner().publish_value(&payload.value, me);
}

unsafe fn release_impl<T: TxObject>(buf: *const InlineBuf, me: &TxState) {
    // SAFETY (caller): `buf` holds a live `InlinePayload<T>`.
    let payload = unsafe { &*buf.cast::<InlinePayload<T>>() };
    payload.tvar.inner().collapse_terminal(me);
}

unsafe fn commit_fused_impl<T: TxObject>(buf: *const InlineBuf, me: &TxState) -> bool {
    // SAFETY (caller): `buf` holds a live `InlinePayload<T>`.
    let payload = unsafe { &*buf.cast::<InlinePayload<T>>() };
    payload.tvar.inner().commit_value_fused(&payload.value, me)
}

unsafe fn lazy_lock_impl<T: TxObject>(
    buf: *const InlineBuf,
    slot_idx: usize,
    attempt_id: u64,
) -> Option<(u64, u64)> {
    // SAFETY (caller): `buf` holds a live `InlinePayload<T>`.
    let payload = unsafe { &*buf.cast::<InlinePayload<T>>() };
    payload.tvar.inner().lazy_try_lock(slot_idx, attempt_id)
}

unsafe fn lazy_owner_impl<T: TxObject>(buf: *const InlineBuf) -> Option<Arc<TxState>> {
    // SAFETY (caller): `buf` holds a live `InlinePayload<T>`.
    let payload = unsafe { &*buf.cast::<InlinePayload<T>>() };
    payload.tvar.inner().lazy_owner()
}

unsafe fn collapse_eager_leftover_impl<T: TxObject>(buf: *const InlineBuf) -> bool {
    // SAFETY (caller): `buf` holds a live `InlinePayload<T>`.
    let payload = unsafe { &*buf.cast::<InlinePayload<T>>() };
    payload.tvar.inner().collapse_eager_leftover()
}

unsafe fn lazy_unlock_impl<T: TxObject>(buf: *const InlineBuf) {
    // SAFETY (caller): `buf` holds a live `InlinePayload<T>`.
    let payload = unsafe { &*buf.cast::<InlinePayload<T>>() };
    payload.tvar.inner().lazy_unlock();
}

unsafe fn lazy_writeback_impl<T: TxObject>(buf: *const InlineBuf, wv: u64) {
    // SAFETY (caller): `buf` holds a live `InlinePayload<T>`.
    let payload = unsafe { &*buf.cast::<InlinePayload<T>>() };
    payload
        .tvar
        .inner()
        .lazy_writeback_value(&payload.value, wv);
}

unsafe fn drop_impl<T: TxObject>(buf: *mut InlineBuf) {
    // SAFETY (caller): `buf` holds a live `InlinePayload<T>`, never read
    // again after this call.
    unsafe { std::ptr::drop_in_place(buf.cast::<InlinePayload<T>>()) };
}

impl WriteEntry {
    /// Whether values of type `T` are stored inline (true iff the payload
    /// fits the buffer and needs no stricter alignment).
    #[inline]
    pub(crate) fn fits_inline<T: TxObject>() -> bool {
        size_of::<InlinePayload<T>>() <= INLINE_BUF_BYTES
            && align_of::<InlinePayload<T>>() <= INLINE_ALIGN
    }

    /// Build an inline entry. Caller must have checked
    /// [`fits_inline`](Self::fits_inline).
    pub(crate) fn new_inline<T: TxObject>(tvar: TVar<T>, value: T) -> Self {
        debug_assert!(Self::fits_inline::<T>());
        let tvar_id = tvar.id();
        let mut buf: InlineBuf = MaybeUninit::uninit();
        // SAFETY: fits_inline guarantees size and alignment; the buffer is
        // exclusively ours and the payload is dropped exactly once (in
        // `InlineWrite::drop` or when replaced).
        unsafe {
            buf.as_mut_ptr()
                .cast::<InlinePayload<T>>()
                .write(InlinePayload { tvar, value });
        }
        WriteEntry {
            tvar_id,
            kind: EntryKind::Inline(InlineWrite {
                type_id: TypeId::of::<T>,
                publish: publish_impl::<T>,
                release: release_impl::<T>,
                commit_fused: commit_fused_impl::<T>,
                lazy_lock: lazy_lock_impl::<T>,
                lazy_owner: lazy_owner_impl::<T>,
                collapse_eager_leftover: collapse_eager_leftover_impl::<T>,
                lazy_unlock: lazy_unlock_impl::<T>,
                lazy_writeback: lazy_writeback_impl::<T>,
                drop_in_place: drop_impl::<T>,
                buf,
            }),
        }
    }

    /// Build a boxed entry for a type too large (or over-aligned) to
    /// store inline.
    pub(crate) fn new_boxed<T: TxObject>(tvar: TVar<T>, shadow: Arc<T>) -> Self {
        WriteEntry {
            tvar_id: tvar.id(),
            kind: EntryKind::Boxed(Box::new(TypedWrite { tvar, shadow })),
        }
    }

    /// Id of the written object (plain field — no virtual call).
    #[inline]
    pub(crate) fn tvar_id(&self) -> u64 {
        self.tvar_id
    }

    /// True iff this entry stores its value inline (test introspection).
    #[cfg(test)]
    pub(crate) fn is_inline(&self) -> bool {
        matches!(self.kind, EntryKind::Inline(_))
    }

    /// The inline payload, if this entry is inline *and* of type `T`.
    #[inline]
    fn payload<T: TxObject>(&self) -> Option<&InlinePayload<T>> {
        match &self.kind {
            EntryKind::Inline(iw) if (iw.type_id)() == TypeId::of::<T>() => {
                // SAFETY: the type-id check proves the buffer holds an
                // `InlinePayload<T>`.
                Some(unsafe { &*iw.buf.as_ptr().cast::<InlinePayload<T>>() })
            }
            _ => None,
        }
    }

    #[inline]
    fn payload_mut<T: TxObject>(&mut self) -> Option<&mut InlinePayload<T>> {
        match &mut self.kind {
            EntryKind::Inline(iw) if (iw.type_id)() == TypeId::of::<T>() => {
                // SAFETY: as in `payload`, plus we hold `&mut self`.
                Some(unsafe { &mut *iw.buf.as_mut_ptr().cast::<InlinePayload<T>>() })
            }
            _ => None,
        }
    }

    /// Read-your-writes: a stable snapshot of the value this entry holds.
    ///
    /// For a boxed entry this is the shadow `Arc` itself; for an inline
    /// entry a snapshot is materialized on demand (rare — the benchmarks'
    /// transactions read *before* writing). Either way the returned `Arc`
    /// never changes under the caller: later writes to the object go to
    /// the inline value or clone-on-write through `Arc::make_mut`.
    pub(crate) fn read_snapshot<T: TxObject>(&self) -> Arc<T> {
        if let Some(p) = self.payload::<T>() {
            return Arc::new(p.value.clone());
        }
        match &self.kind {
            EntryKind::Boxed(b) => Arc::clone(
                &b.as_any()
                    .downcast_ref::<TypedWrite<T>>()
                    .expect("write-set entry type mismatch")
                    .shadow,
            ),
            EntryKind::Inline(_) => panic!("write-set entry type mismatch"),
        }
    }

    /// Replace the entry's value.
    pub(crate) fn set_value<T: TxObject>(&mut self, value: T) {
        if let Some(p) = self.payload_mut::<T>() {
            p.value = value;
            return;
        }
        match &mut self.kind {
            EntryKind::Boxed(b) => {
                let tw = b
                    .as_any_mut()
                    .downcast_mut::<TypedWrite<T>>()
                    .expect("write-set entry type mismatch");
                *Arc::make_mut(&mut tw.shadow) = value;
            }
            EntryKind::Inline(_) => panic!("write-set entry type mismatch"),
        }
    }

    /// Mutate the entry's value in place.
    pub(crate) fn modify_value<T: TxObject>(&mut self, f: impl FnOnce(&mut T)) {
        if let Some(p) = self.payload_mut::<T>() {
            f(&mut p.value);
            return;
        }
        match &mut self.kind {
            EntryKind::Boxed(b) => {
                let tw = b
                    .as_any_mut()
                    .downcast_mut::<TypedWrite<T>>()
                    .expect("write-set entry type mismatch");
                f(Arc::make_mut(&mut tw.shadow));
            }
            EntryKind::Inline(_) => panic!("write-set entry type mismatch"),
        }
    }

    /// Install the entry's value as the locator's `new` version, iff the
    /// committing transaction still owns the object.
    #[inline]
    pub(crate) fn publish(&self, me: &TxState) {
        match &self.kind {
            // SAFETY: `buf` holds a live `InlinePayload` of the type the
            // fn was instantiated with.
            EntryKind::Inline(iw) => unsafe { (iw.publish)(&iw.buf, me) },
            EntryKind::Boxed(b) => b.publish(me),
        }
    }

    /// Fold the (terminal) transaction's outcome into the locator:
    /// [`crate::tvar::TVarInner::collapse_terminal`]. Called once per entry
    /// right after the owner's status CAS on the abort rollback path.
    #[inline]
    pub(crate) fn release(&self, me: &TxState) {
        match &self.kind {
            // SAFETY: `buf` holds a live `InlinePayload` of the type the
            // fn was instantiated with.
            EntryKind::Inline(iw) => unsafe { (iw.release)(&iw.buf, me) },
            EntryKind::Boxed(b) => b.release(me),
        }
    }

    /// Single-entry fused commit: publish this entry's value, perform the
    /// transaction's status CAS, and collapse the locator, all under one
    /// acquisition of the object lock
    /// ([`crate::tvar::TVarInner::commit_value_fused`]). Only sound when
    /// this entry is the transaction's entire write set. Returns the CAS
    /// verdict.
    #[inline]
    pub(crate) fn commit_fused(&self, me: &TxState) -> bool {
        match &self.kind {
            // SAFETY: `buf` holds a live `InlinePayload` of the type the
            // fn was instantiated with.
            EntryKind::Inline(iw) => unsafe { (iw.commit_fused)(&iw.buf, me) },
            EntryKind::Boxed(b) => b.commit_fused(me),
        }
    }

    /// Lazy engine: try to take this object's commit lock
    /// ([`crate::tvar::TVarInner::lazy_try_lock`]).
    #[inline]
    pub(crate) fn lazy_lock(&self, slot_idx: usize, attempt_id: u64) -> Option<(u64, u64)> {
        match &self.kind {
            // SAFETY: `buf` holds a live `InlinePayload` of the type the
            // fn was instantiated with.
            EntryKind::Inline(iw) => unsafe { (iw.lazy_lock)(&iw.buf, slot_idx, attempt_id) },
            EntryKind::Boxed(b) => b.lazy_lock(slot_idx, attempt_id),
        }
    }

    /// Lazy engine: the live holder of this object's commit lock, if the
    /// registry can still name it.
    #[inline]
    pub(crate) fn lazy_owner(&self) -> Option<Arc<TxState>> {
        match &self.kind {
            // SAFETY: `buf` holds a live `InlinePayload` of the type the
            // fn was instantiated with.
            EntryKind::Inline(iw) => unsafe { (iw.lazy_owner)(&iw.buf) },
            EntryKind::Boxed(b) => b.lazy_owner(),
        }
    }

    /// Lazy engine: fold an eager run's leftover terminal writer into
    /// this object's locator ([`TVarInner::collapse_eager_leftover`]
    /// (crate::tvar::TVarInner::collapse_eager_leftover)). Returns `true`
    /// if a leftover was collapsed.
    #[inline]
    pub(crate) fn collapse_eager_leftover(&self) -> bool {
        match &self.kind {
            // SAFETY: `buf` holds a live `InlinePayload` of the type the
            // fn was instantiated with.
            EntryKind::Inline(iw) => unsafe { (iw.collapse_eager_leftover)(&iw.buf) },
            EntryKind::Boxed(b) => b.collapse_eager_leftover(),
        }
    }

    /// Lazy engine: release the commit lock without writing (failed
    /// commit).
    #[inline]
    pub(crate) fn lazy_unlock(&self) {
        match &self.kind {
            // SAFETY: `buf` holds a live `InlinePayload` of the type the
            // fn was instantiated with.
            EntryKind::Inline(iw) => unsafe { (iw.lazy_unlock)(&iw.buf) },
            EntryKind::Boxed(b) => b.lazy_unlock(),
        }
    }

    /// Lazy engine: write this entry's value back as the committed
    /// version under the held lock, stamping write version `wv`.
    #[inline]
    pub(crate) fn lazy_writeback(&self, wv: u64) {
        match &self.kind {
            // SAFETY: `buf` holds a live `InlinePayload` of the type the
            // fn was instantiated with.
            EntryKind::Inline(iw) => unsafe { (iw.lazy_writeback)(&iw.buf, wv) },
            EntryKind::Boxed(b) => b.lazy_writeback(wv),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clockns;

    #[test]
    fn inline_threshold_is_24_value_bytes() {
        assert!(WriteEntry::fits_inline::<u64>());
        assert!(WriteEntry::fits_inline::<[u8; 24]>());
        assert!(WriteEntry::fits_inline::<[u8; 1]>());
        assert!(WriteEntry::fits_inline::<()>());
        assert!(!WriteEntry::fits_inline::<[u8; 25]>());
        assert!(!WriteEntry::fits_inline::<[u64; 4]>());
        // Vec<T> is 24 bytes of header: inline (its heap payload is its
        // own business, same as under the boxed representation).
        assert!(WriteEntry::fits_inline::<Vec<u32>>());
    }

    #[test]
    fn inline_entry_roundtrips_value_and_drops_it() {
        // A droppable payload (Vec) exercises drop_in_place.
        let tv: TVar<Vec<u32>> = TVar::new(vec![1]);
        let mut e = WriteEntry::new_inline(tv.clone(), vec![1, 2]);
        assert!(e.is_inline());
        assert_eq!(e.tvar_id(), tv.id());
        assert_eq!(*e.read_snapshot::<Vec<u32>>(), vec![1, 2]);
        e.set_value::<Vec<u32>>(vec![9]);
        e.modify_value::<Vec<u32>>(|v| v.push(10));
        assert_eq!(*e.read_snapshot::<Vec<u32>>(), vec![9, 10]);
        drop(e); // must drop the inline Vec (Miri/asan would catch a leak)
    }

    #[test]
    fn boxed_entry_roundtrips_value() {
        let tv: TVar<[u64; 8]> = TVar::new([0; 8]);
        let mut e = WriteEntry::new_boxed(tv.clone(), Arc::new([1u64; 8]));
        assert!(!e.is_inline());
        assert_eq!(e.tvar_id(), tv.id());
        e.set_value([2u64; 8]);
        e.modify_value::<[u64; 8]>(|v| v[0] = 7);
        let snap = e.read_snapshot::<[u64; 8]>();
        assert_eq!(snap[0], 7);
        assert_eq!(snap[1], 2);
    }

    #[test]
    fn snapshot_is_stable_across_later_writes() {
        let tv: TVar<u64> = TVar::new(0);
        let mut e = WriteEntry::new_inline(tv, 5u64);
        let snap = e.read_snapshot::<u64>();
        e.set_value(6u64);
        assert_eq!(*snap, 5, "snapshot must not see later writes");
        assert_eq!(*e.read_snapshot::<u64>(), 6);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn wrong_type_downcast_panics() {
        let tv: TVar<u64> = TVar::new(0);
        let e = WriteEntry::new_inline(tv, 1u64);
        let _ = e.read_snapshot::<u32>();
    }

    #[test]
    fn publish_installs_only_while_owner() {
        let tv: TVar<u64> = TVar::new(3);
        let me = Arc::new(TxState::new(11, 11, 0, 0, 1, 1, clockns::now(), 0));
        let e = WriteEntry::new_inline(tv.clone(), 42u64);
        // Not the owner: publish is a no-op.
        e.publish(&me);
        assert_eq!(*tv.sample(), 3);
        // Install ourselves as the writer, then publish and commit.
        {
            let mut st = tv.inner().state.lock();
            tv.inner().lock_snapshot();
            st.writer = Some(Arc::clone(&me));
        }
        e.publish(&me);
        assert!(me.try_commit());
        assert_eq!(*tv.sample(), 42);
    }
}
