//! Monomorphic contention-manager dispatch.
//!
//! Every conflict used to pay a virtual call through
//! `Arc<dyn ContentionManager>`, and so did the per-attempt hooks
//! (`on_begin`, `on_open`, `on_commit`, `on_abort`) — five indirect calls
//! on the hot path even for trivial managers whose verdict is a couple of
//! field comparisons. [`CmDispatch`] replaces the fat pointer with an enum
//! over the built-in managers: the `match` compiles to a jump table and
//! each arm is a direct, inlinable call into the concrete manager.
//! Out-of-tree managers still work through the [`CmDispatch::Dyn`]
//! fallback, which keeps the old virtual dispatch behind one branch.
//!
//! ## Dispatch table
//!
//! | hook        | overridden by                                             | everyone else |
//! |-------------|------------------------------------------------------------|---------------|
//! | `resolve`   | every manager                                              | —             |
//! | `on_begin`  | Polite, RandomizedRounds, Eruption, ATS, STO-Timid, `Dyn`  | no-op         |
//! | `on_open`   | STO-Timid, `Dyn`                                           | no-op         |
//! | `on_commit` | Kindergarten, ATS, `Dyn`                                   | no-op         |
//! | `on_abort`  | ATS, STO-Timid, `Dyn`                                      | no-op         |
//!
//! `on_open` runs once per object open — the hottest hook of all. Only
//! STO-Timid (whose timid-phase graduation counts opens) and the `Dyn`
//! fallback implement it, so for every other manager it compiles down to
//! a two-way branch and a pair of no-op arms.
//!
//! Stateful managers sit behind an `Arc` inside their variant, so cloning
//! a `CmDispatch` shares manager state exactly like cloning the old
//! `Arc<dyn ContentionManager>` did.

use std::sync::Arc;

use crate::cm::{AbortEnemyManager, AbortSelfManager, ConflictKind, ContentionManager, Resolution};
use crate::managers::{
    Ats, Backoff, Eruption, Greedy, Karma, Kindergarten, Polite, Polka, Priority, RandomizedRounds,
    StoTimid, Timestamp,
};
use crate::txstate::TxState;

/// A contention manager the engine can call without virtual dispatch.
///
/// Built-in managers get their own variant (zero-sized policies are held
/// by value, stateful ones behind an `Arc`); anything else rides in
/// [`CmDispatch::Dyn`] at the old virtual-call cost.
#[derive(Clone)]
pub enum CmDispatch {
    /// Always sacrifice the caller ([`AbortSelfManager`], alias Timid).
    AbortSelf,
    /// Always kill the competitor ([`AbortEnemyManager`], alias Aggressive).
    AbortEnemy,
    /// The classic Aggressive policy.
    Aggressive,
    /// The classic Timid policy.
    Timid,
    /// Timestamp-ordered, never waits for a waiting enemy.
    Greedy,
    /// Static priority = start time; younger yields.
    Priority,
    /// Timestamp with bounded waiting.
    Timestamp(Arc<Timestamp>),
    /// Exponential backoff.
    Backoff(Arc<Backoff>),
    /// Karma priorities (opens accumulated across retries).
    Karma(Arc<Karma>),
    /// Karma + exponential backoff (the paper's published-best baseline).
    Polka(Arc<Polka>),
    /// Bounded politeness then aggression.
    Polite(Arc<Polite>),
    /// Schneider & Wattenhofer's randomized-rounds manager.
    RandomizedRounds(Arc<RandomizedRounds>),
    /// Pressure propagation along conflict chains.
    Eruption(Arc<Eruption>),
    /// One-on-one alternation ledger.
    Kindergarten(Arc<Kindergarten>),
    /// Adaptive transaction scheduling.
    Ats(Arc<Ats>),
    /// STO's timid-phase timestamp policy with randomized backoff.
    StoTimid(Arc<StoTimid>),
    /// Extensibility fallback: any other [`ContentionManager`] behind the
    /// old virtual dispatch.
    Dyn(Arc<dyn ContentionManager>),
}

impl CmDispatch {
    /// Decide the outcome of a conflict (see
    /// [`ContentionManager::resolve`]).
    #[inline]
    pub fn resolve(&self, me: &TxState, enemy: &TxState, kind: ConflictKind) -> Resolution {
        match self {
            CmDispatch::AbortSelf => Resolution::AbortSelf,
            CmDispatch::AbortEnemy => Resolution::AbortEnemy,
            CmDispatch::Aggressive => Resolution::AbortEnemy,
            CmDispatch::Timid => Resolution::AbortSelf,
            CmDispatch::Greedy => Greedy.resolve(me, enemy, kind),
            CmDispatch::Priority => Priority.resolve(me, enemy, kind),
            CmDispatch::Timestamp(m) => m.resolve(me, enemy, kind),
            CmDispatch::Backoff(m) => m.resolve(me, enemy, kind),
            CmDispatch::Karma(m) => m.resolve(me, enemy, kind),
            CmDispatch::Polka(m) => m.resolve(me, enemy, kind),
            CmDispatch::Polite(m) => m.resolve(me, enemy, kind),
            CmDispatch::RandomizedRounds(m) => m.resolve(me, enemy, kind),
            CmDispatch::Eruption(m) => m.resolve(me, enemy, kind),
            CmDispatch::Kindergarten(m) => m.resolve(me, enemy, kind),
            CmDispatch::Ats(m) => m.resolve(me, enemy, kind),
            CmDispatch::StoTimid(m) => m.resolve(me, enemy, kind),
            CmDispatch::Dyn(m) => m.resolve(me, enemy, kind),
        }
    }

    /// A new attempt is starting (see [`ContentionManager::on_begin`]).
    #[inline]
    pub fn on_begin(&self, tx: &Arc<TxState>, is_retry: bool) {
        match self {
            CmDispatch::Polite(m) => m.on_begin(tx, is_retry),
            CmDispatch::RandomizedRounds(m) => m.on_begin(tx, is_retry),
            CmDispatch::Eruption(m) => m.on_begin(tx, is_retry),
            CmDispatch::Ats(m) => m.on_begin(tx, is_retry),
            CmDispatch::StoTimid(m) => m.on_begin(tx, is_retry),
            CmDispatch::Dyn(m) => m.on_begin(tx, is_retry),
            _ => {}
        }
    }

    /// An object was opened (see [`ContentionManager::on_open`]). Only
    /// STO-Timid and the `Dyn` fallback hook this, so for every other
    /// manager the cost is a two-way branch.
    #[inline]
    pub fn on_open(&self, tx: &TxState) {
        match self {
            CmDispatch::StoTimid(m) => m.on_open(tx),
            CmDispatch::Dyn(m) => m.on_open(tx),
            _ => {}
        }
    }

    /// The transaction committed (see [`ContentionManager::on_commit`]).
    #[inline]
    pub fn on_commit(&self, tx: &TxState) {
        match self {
            CmDispatch::Kindergarten(m) => m.on_commit(tx),
            CmDispatch::Ats(m) => m.on_commit(tx),
            CmDispatch::Dyn(m) => m.on_commit(tx),
            _ => {}
        }
    }

    /// This attempt aborted (see [`ContentionManager::on_abort`]).
    #[inline]
    pub fn on_abort(&self, tx: &TxState) {
        match self {
            CmDispatch::Ats(m) => m.on_abort(tx),
            CmDispatch::StoTimid(m) => m.on_abort(tx),
            CmDispatch::Dyn(m) => m.on_abort(tx),
            _ => {}
        }
    }

    /// Human-readable policy name (used in experiment reports).
    pub fn name(&self) -> &str {
        match self {
            CmDispatch::AbortSelf => "AbortSelf",
            CmDispatch::AbortEnemy => "AbortEnemy",
            CmDispatch::Aggressive => "Aggressive",
            CmDispatch::Timid => "Timid",
            CmDispatch::Greedy => "Greedy",
            CmDispatch::Priority => "Priority",
            CmDispatch::Timestamp(m) => m.name(),
            CmDispatch::Backoff(m) => m.name(),
            CmDispatch::Karma(m) => m.name(),
            CmDispatch::Polka(m) => m.name(),
            CmDispatch::Polite(m) => m.name(),
            CmDispatch::RandomizedRounds(m) => m.name(),
            CmDispatch::Eruption(m) => m.name(),
            CmDispatch::Kindergarten(m) => m.name(),
            CmDispatch::Ats(m) => m.name(),
            CmDispatch::StoTimid(m) => m.name(),
            CmDispatch::Dyn(m) => m.name(),
        }
    }
}

impl From<Arc<dyn ContentionManager>> for CmDispatch {
    fn from(cm: Arc<dyn ContentionManager>) -> Self {
        CmDispatch::Dyn(cm)
    }
}

impl From<AbortSelfManager> for CmDispatch {
    fn from(_: AbortSelfManager) -> Self {
        CmDispatch::AbortSelf
    }
}

impl From<AbortEnemyManager> for CmDispatch {
    fn from(_: AbortEnemyManager) -> Self {
        CmDispatch::AbortEnemy
    }
}

impl std::fmt::Debug for CmDispatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CmDispatch({})", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clockns;

    fn state(id: u64, ts: u64) -> Arc<TxState> {
        Arc::new(TxState::new(id, id, 0, 0, ts, ts, clockns::now(), 0))
    }

    #[test]
    fn enum_verdicts_match_trait_verdicts() {
        // Every classic manager must behave identically whether reached
        // through its enum variant or through the Dyn fallback.
        for name in crate::managers::classic_names() {
            let dispatch = crate::managers::make_dispatch(name, 4).unwrap();
            let dynamic = CmDispatch::Dyn(crate::managers::make_manager(name, 4).unwrap());
            assert_eq!(dispatch.name(), dynamic.name(), "{name}");
            // Deterministic managers must agree on a clear-cut case:
            // an old transaction (ts=1) vs a young one (ts=1000).
            if matches!(*name, "Greedy" | "Priority" | "Aggressive" | "Timid") {
                let old = state(1, 1);
                let young = state(2, 1000);
                let via_enum = dispatch.resolve(&old, &young, ConflictKind::WriteWrite);
                let via_dyn = dynamic.resolve(&old, &young, ConflictKind::WriteWrite);
                assert_eq!(via_enum, via_dyn, "{name}");
            }
        }
    }

    #[test]
    fn trivial_managers_have_fixed_verdicts() {
        let me = state(1, 1);
        let enemy = state(2, 2);
        assert_eq!(
            CmDispatch::AbortSelf.resolve(&me, &enemy, ConflictKind::WriteWrite),
            Resolution::AbortSelf
        );
        assert_eq!(
            CmDispatch::AbortEnemy.resolve(&me, &enemy, ConflictKind::WriteWrite),
            Resolution::AbortEnemy
        );
        assert_eq!(CmDispatch::AbortSelf.name(), "AbortSelf");
    }

    #[test]
    fn from_conversions() {
        assert!(matches!(
            CmDispatch::from(AbortSelfManager),
            CmDispatch::AbortSelf
        ));
        let dynamic: Arc<dyn ContentionManager> = Arc::new(AbortEnemyManager);
        assert!(matches!(CmDispatch::from(dynamic), CmDispatch::Dyn(_)));
    }
}
