//! A tiny vector with inline storage for the transaction write set.
//!
//! Write sets are almost always a handful of objects (the paper's
//! workloads average 2–6 writes per transaction), so the first
//! [`INLINE_CAP`] entries live inside the `Txn` itself and the common case
//! allocates nothing; only larger transactions spill into a heap `Vec`.
//! Implemented with safe code (`Option` per inline cell — the entries are
//! boxes, so the niche makes each cell pointer-sized anyway).

/// Number of entries stored inline before spilling to the heap.
pub(crate) const INLINE_CAP: usize = 8;

pub(crate) struct InlineVec<T> {
    inline: [Option<T>; INLINE_CAP],
    spill: Vec<T>,
    len: usize,
}

impl<T> InlineVec<T> {
    pub(crate) fn new() -> Self {
        InlineVec {
            inline: std::array::from_fn(|_| None),
            spill: Vec::new(),
            len: 0,
        }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub(crate) fn push(&mut self, value: T) {
        if self.len < INLINE_CAP {
            self.inline[self.len] = Some(value);
        } else {
            self.spill.push(value);
        }
        self.len += 1;
    }

    #[inline]
    pub(crate) fn get(&self, idx: usize) -> Option<&T> {
        if idx >= self.len {
            None
        } else if idx < INLINE_CAP {
            self.inline[idx].as_ref()
        } else {
            self.spill.get(idx - INLINE_CAP)
        }
    }

    #[inline]
    pub(crate) fn get_mut(&mut self, idx: usize) -> Option<&mut T> {
        if idx >= self.len {
            None
        } else if idx < INLINE_CAP {
            self.inline[idx].as_mut()
        } else {
            self.spill.get_mut(idx - INLINE_CAP)
        }
    }

    /// Iterate in insertion order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &T> {
        self.inline[..self.len.min(INLINE_CAP)]
            .iter()
            .filter_map(Option::as_ref)
            .chain(self.spill.iter())
    }

    /// Index of the first element matching `pred`.
    #[inline]
    pub(crate) fn position(&self, pred: impl FnMut(&T) -> bool) -> Option<usize> {
        self.iter().position(pred)
    }
}

impl<T> std::ops::Index<usize> for InlineVec<T> {
    type Output = T;
    #[inline]
    fn index(&self, idx: usize) -> &T {
        self.get(idx).expect("InlineVec index out of bounds")
    }
}

impl<T> std::ops::IndexMut<usize> for InlineVec<T> {
    #[inline]
    fn index_mut(&mut self, idx: usize) -> &mut T {
        self.get_mut(idx).expect("InlineVec index out of bounds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_across_the_spill_boundary() {
        let mut v: InlineVec<String> = InlineVec::new();
        for i in 0..INLINE_CAP + 5 {
            v.push(format!("e{i}"));
            assert_eq!(v.len(), i + 1);
        }
        for i in 0..INLINE_CAP + 5 {
            assert_eq!(v[i], format!("e{i}"));
        }
        assert!(v.get(INLINE_CAP + 5).is_none());
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut v: InlineVec<usize> = InlineVec::new();
        for i in 0..INLINE_CAP * 2 {
            v.push(i);
        }
        let collected: Vec<usize> = v.iter().copied().collect();
        assert_eq!(collected, (0..INLINE_CAP * 2).collect::<Vec<_>>());
    }

    #[test]
    fn position_finds_inline_and_spilled() {
        let mut v: InlineVec<u32> = InlineVec::new();
        for i in 0..INLINE_CAP as u32 + 3 {
            v.push(i * 10);
        }
        assert_eq!(v.position(|&x| x == 0), Some(0));
        assert_eq!(v.position(|&x| x == 70), Some(7));
        assert_eq!(v.position(|&x| x == 100), Some(10)); // spilled
        assert_eq!(v.position(|&x| x == 5), None);
    }

    #[test]
    fn index_mut_updates_in_place() {
        let mut v: InlineVec<u32> = InlineVec::new();
        for i in 0..INLINE_CAP as u32 + 1 {
            v.push(i);
        }
        v[0] += 100;
        v[INLINE_CAP] += 100;
        assert_eq!(v[0], 100);
        assert_eq!(v[INLINE_CAP], 100 + INLINE_CAP as u32);
    }
}
