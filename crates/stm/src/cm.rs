//! Contention management interface.
//!
//! In an eager-conflict-management STM the engine calls the contention
//! manager the instant a transaction discovers a conflict (DSTM2's design,
//! which the paper's evaluation relies on). The manager inspects the two
//! parties and decides who yields. It may also *wait* — sleeping or
//! spinning inside [`ContentionManager::resolve`] — before deciding, which
//! is how Polka/Karma/Backoff style managers are expressed.
//!
//! The engine guarantees:
//!
//! * `resolve` is called **outside** all object locks, so a manager may
//!   block without deadlocking the engine;
//! * `me` is the calling (active) transaction and `enemy` was active when
//!   the conflict was observed — but may have committed or aborted since,
//!   which is why managers should re-check `enemy.status()` in wait loops
//!   and return [`Resolution::Retry`] when the enemy is gone;
//! * after `AbortEnemy`, the engine performs the abort CAS itself; the
//!   manager must not abort anybody directly.

use std::sync::Arc;

use crate::txstate::TxState;

/// What kind of access collision was discovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConflictKind {
    /// `me` wants to write an object currently written by `enemy`.
    WriteWrite,
    /// `me` wants to read an object currently written by `enemy`.
    ReadWrite,
    /// `me` wants to write an object currently read by `enemy`
    /// (visible-reads configuration).
    WriteRead,
}

/// The contention manager's verdict for one conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Kill the enemy transaction and proceed.
    AbortEnemy,
    /// Kill the calling transaction (it will retry from scratch).
    AbortSelf,
    /// Re-examine the object: the enemy may have finished, or the manager
    /// waited and wants the engine to re-detect the conflict.
    Retry,
}

/// A pluggable conflict-resolution policy.
///
/// One instance is shared by every thread of an [`crate::Stm`]; managers
/// keep per-thread state internally (indexed by `TxState::thread_id`) when
/// they need it.
pub trait ContentionManager: Send + Sync {
    /// Decide the outcome of a conflict between `me` (the caller, active)
    /// and `enemy`. May block/backoff internally before answering.
    fn resolve(&self, me: &TxState, enemy: &TxState, kind: ConflictKind) -> Resolution;

    /// A new attempt is starting. `is_retry` is false for the first attempt
    /// of a logical transaction.
    fn on_begin(&self, _tx: &Arc<TxState>, _is_retry: bool) {}

    /// The transaction successfully opened an object (read or write).
    fn on_open(&self, _tx: &TxState) {}

    /// The transaction committed.
    fn on_commit(&self, _tx: &TxState) {}

    /// This attempt aborted (self- or enemy-initiated).
    fn on_abort(&self, _tx: &TxState) {}

    /// Human-readable policy name (used in experiment reports).
    fn name(&self) -> &str;
}

/// Trivial manager that always sacrifices the caller. Equivalent to the
/// classic *Timid* policy; mainly useful in tests — it is livelock-prone
/// under symmetric contention but can never kill a competitor.
#[derive(Debug, Default)]
pub struct AbortSelfManager;

impl ContentionManager for AbortSelfManager {
    fn resolve(&self, _me: &TxState, _enemy: &TxState, _kind: ConflictKind) -> Resolution {
        Resolution::AbortSelf
    }

    fn name(&self) -> &str {
        "AbortSelf"
    }
}

/// Trivial manager that always kills the competitor. Equivalent to the
/// classic *Aggressive* policy.
#[derive(Debug, Default)]
pub struct AbortEnemyManager;

impl ContentionManager for AbortEnemyManager {
    fn resolve(&self, _me: &TxState, _enemy: &TxState, _kind: ConflictKind) -> Resolution {
        Resolution::AbortEnemy
    }

    fn name(&self) -> &str {
        "AbortEnemy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clockns;

    fn state(id: u64) -> TxState {
        TxState::new(id, id, 0, 0, id, id, clockns::now(), 0)
    }

    #[test]
    fn abort_self_manager_always_self() {
        let cm = AbortSelfManager;
        let a = state(1);
        let b = state(2);
        for kind in [
            ConflictKind::WriteWrite,
            ConflictKind::ReadWrite,
            ConflictKind::WriteRead,
        ] {
            assert_eq!(cm.resolve(&a, &b, kind), Resolution::AbortSelf);
        }
        assert_eq!(cm.name(), "AbortSelf");
    }

    #[test]
    fn abort_enemy_manager_always_enemy() {
        let cm = AbortEnemyManager;
        let a = state(1);
        let b = state(2);
        for kind in [
            ConflictKind::WriteWrite,
            ConflictKind::ReadWrite,
            ConflictKind::WriteRead,
        ] {
            assert_eq!(cm.resolve(&a, &b, kind), Resolution::AbortEnemy);
        }
        assert_eq!(cm.name(), "AbortEnemy");
    }
}
