//! Cheap monotonic nanosecond timestamps for the hot loop.
//!
//! The retry loop stamps every attempt (wasted-work, committed-duration,
//! and response-time metrics) and the window manager samples τ from those
//! stamps. Calling `Instant::now()` for each of them costs a vDSO
//! `clock_gettime` per call — several of which used to land on every
//! attempt. [`now`] replaces them with one coarse-but-monotonic source:
//!
//! * on `x86_64`, a calibrated `rdtsc` (~a few ns per call, invariant-TSC
//!   assumed, as on every CPU from the last decade);
//! * elsewhere, `Instant` deltas against a process-global epoch.
//!
//! The result is *coarse* in the sense that it trades clock-domain
//! guarantees for speed: cross-core TSC skew of a few tens of ns is
//! acceptable because the values only feed statistics and τ calibration,
//! never correctness decisions. Code that genuinely sleeps or enforces
//! deadlines (the contention managers' back-off waits) keeps using
//! `Instant`.

use std::sync::OnceLock;
use std::time::Instant;

/// Nanoseconds elapsed since the first use of this module.
///
/// Monotonic per thread; across threads it may disagree by the TSC skew of
/// the machine (typically well under a microsecond). Statistics only.
#[inline]
pub fn now() -> u64 {
    imp::now()
}

/// Force the one-time calibration against `Instant` to happen *now*.
///
/// The first [`now`] call on x86_64 pays a ~2 ms busy calibration window.
/// Code that derives time-based state from consecutive `now()` readings —
/// the window manager's static frame clock measures frame indices as
/// `(now() − start) / Φ` — calls this at construction so the stall lands
/// in setup, not inside the first measured frame. Idempotent and cheap
/// after the first call; returns the current timestamp.
pub fn warmup() -> u64 {
    imp::now()
}

/// Process-global epoch for the fallback path and for TSC calibration.
fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

#[cfg(target_arch = "x86_64")]
mod imp {
    use super::epoch;
    use std::sync::OnceLock;

    /// ns-per-tick scale and the tick value at calibration time.
    struct Calib {
        tsc0: u64,
        ns0: u64,
        ns_per_tick: f64,
    }

    #[inline]
    fn rdtsc() -> u64 {
        // SAFETY: `_rdtsc` has no preconditions on x86_64.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    fn calib() -> &'static Calib {
        static CALIB: OnceLock<Calib> = OnceLock::new();
        CALIB.get_or_init(|| {
            // Measure the tick rate against Instant over a short busy window.
            // 2 ms keeps the relative calibration error well under 0.1%.
            let epoch = epoch();
            let t0 = std::time::Instant::now();
            let c0 = rdtsc();
            while t0.elapsed() < std::time::Duration::from_millis(2) {
                std::hint::spin_loop();
            }
            let c1 = rdtsc();
            let dt = t0.elapsed();
            let ticks = (c1.wrapping_sub(c0)).max(1);
            Calib {
                tsc0: c0,
                ns0: (t0.duration_since(*epoch)).as_nanos() as u64,
                ns_per_tick: dt.as_nanos() as f64 / ticks as f64,
            }
        })
    }

    #[inline]
    pub fn now() -> u64 {
        let c = calib();
        let ticks = rdtsc().wrapping_sub(c.tsc0);
        c.ns0 + (ticks as f64 * c.ns_per_tick) as u64
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod imp {
    use super::epoch;

    #[inline]
    pub fn now() -> u64 {
        epoch().elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn now_is_monotonic_on_one_thread() {
        let mut prev = now();
        for _ in 0..10_000 {
            let t = now();
            assert!(t >= prev, "clock went backwards: {prev} -> {t}");
            prev = t;
        }
    }

    #[test]
    fn now_tracks_wall_time() {
        let a = now();
        std::thread::sleep(Duration::from_millis(20));
        let b = now();
        let dt = b - a;
        // Within [10ms, 500ms]: generous bounds that survive loaded CI
        // machines while still catching a broken calibration (off by 10x).
        assert!(
            (10_000_000..500_000_000).contains(&dt),
            "20ms sleep measured as {dt} ns"
        );
    }
}
