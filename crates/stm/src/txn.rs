//! The transaction API: open-for-read, open-for-write, commit.
//!
//! Conflict handling is **eager**: the instant an open discovers a
//! competing active transaction, the contention manager is consulted
//! (outside the object lock) and its verdict applied. This mirrors DSTM2's
//! eager conflict management, the configuration the paper evaluates.
//!
//! ## Correctness argument (opacity)
//!
//! With visible reads, a writer can only install itself on an object with
//! *no other active reader or writer*; it must first wait for, or abort,
//! every conflicting transaction. Therefore while a transaction `R` is
//! active, no competitor can commit a change to any object `R` has read —
//! so every value `R` observed remains part of one consistent committed
//! snapshot, and no re-validation is needed at commit. Commit itself is a
//! single status CAS racing against enemy aborts: exactly one side wins.

use std::sync::Arc;
use std::time::Instant;

use crate::cm::{ConflictKind, Resolution};
use crate::stm::ThreadCtx;
use crate::tvar::{ErasedWrite, TVar, TypedWrite};
use crate::txstate::TxState;
use crate::TxObject;

/// Why a transactional operation could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxError {
    /// The transaction was aborted (by itself via the contention manager,
    /// or by an enemy). Propagate it out of the atomic closure with `?`;
    /// the engine retries automatically.
    Aborted,
}

impl std::fmt::Display for TxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxError::Aborted => write!(f, "transaction aborted"),
        }
    }
}

impl std::error::Error for TxError {}

/// Result alias used throughout the transactional API.
pub type TxResult<T> = Result<T, TxError>;

/// An in-flight transaction attempt. Created by
/// [`ThreadCtx::atomic`](crate::stm::ThreadCtx::atomic); user code receives
/// `&mut Txn` inside the atomic closure.
pub struct Txn<'a> {
    state: Arc<TxState>,
    writes: Vec<Box<dyn ErasedWrite>>,
    ctx: &'a ThreadCtx<'a>,
    /// When tracing, the `(object id, is_write)` access footprint of this
    /// attempt (reads of own writes are not re-recorded).
    footprint: Option<Vec<(u64, bool)>>,
}

impl<'a> Txn<'a> {
    pub(crate) fn new(state: Arc<TxState>, ctx: &'a ThreadCtx<'a>) -> Self {
        Txn {
            state,
            writes: Vec::new(),
            ctx,
            footprint: None,
        }
    }

    pub(crate) fn enable_tracing(&mut self) {
        self.footprint = Some(Vec::new());
    }

    pub(crate) fn take_footprint(&mut self) -> Vec<(u64, bool)> {
        self.footprint.take().unwrap_or_default()
    }

    /// The shared record describing this attempt.
    pub fn state(&self) -> &Arc<TxState> {
        &self.state
    }

    /// Number of objects in the write set.
    pub fn write_set_len(&self) -> usize {
        self.writes.len()
    }

    #[inline]
    fn check_alive(&self) -> TxResult<()> {
        if self.state.is_active() {
            Ok(())
        } else {
            Err(TxError::Aborted)
        }
    }

    /// Open `tvar` for reading and return the observed version.
    ///
    /// The returned `Arc<T>` is a stable snapshot: it never changes even if
    /// the object is later rewritten. If this transaction already wrote the
    /// object, its own shadow copy is returned (read-your-writes).
    pub fn read<T: TxObject>(&mut self, tvar: &TVar<T>) -> TxResult<Arc<T>> {
        self.check_alive()?;
        if let Some(idx) = self.find_write(tvar.id()) {
            let tw = self.writes[idx]
                .as_any()
                .downcast_ref::<TypedWrite<T>>()
                .expect("write-set entry type mismatch");
            return Ok(Arc::clone(&tw.shadow));
        }
        loop {
            self.check_alive()?;
            let enemy = {
                let mut st = tvar.inner().state.lock();
                match &st.writer {
                    Some(w) if w.is_active() && w.attempt_id != self.state.attempt_id => {
                        Some(Arc::clone(w))
                    }
                    _ => {
                        let val = st.effective();
                        st.register_reader(&self.state);
                        drop(st);
                        self.note_open();
                        if let Some(fp) = &mut self.footprint {
                            fp.push((tvar.id(), false));
                        }
                        return Ok(val);
                    }
                }
            };
            if let Some(enemy) = enemy {
                self.handle_conflict(&enemy, ConflictKind::ReadWrite)?;
            }
        }
    }

    /// Open `tvar` for writing and replace its value with `value`.
    pub fn write<T: TxObject>(&mut self, tvar: &TVar<T>, value: T) -> TxResult<()> {
        let idx = self.acquire(tvar)?;
        let tw = self.writes[idx]
            .as_any_mut()
            .downcast_mut::<TypedWrite<T>>()
            .expect("write-set entry type mismatch");
        *Arc::make_mut(&mut tw.shadow) = value;
        Ok(())
    }

    /// Open `tvar` for writing and mutate the shadow copy in place.
    pub fn modify<T: TxObject>(
        &mut self,
        tvar: &TVar<T>,
        f: impl FnOnce(&mut T),
    ) -> TxResult<()> {
        let idx = self.acquire(tvar)?;
        let tw = self.writes[idx]
            .as_any_mut()
            .downcast_mut::<TypedWrite<T>>()
            .expect("write-set entry type mismatch");
        f(Arc::make_mut(&mut tw.shadow));
        Ok(())
    }

    /// Abort this transaction voluntarily (e.g. explicit early exit in a
    /// benchmark). The engine will retry the atomic closure.
    pub fn abort_self(&self) -> TxError {
        self.state.abort();
        TxError::Aborted
    }

    fn find_write(&self, id: u64) -> Option<usize> {
        // Write sets are small (a handful of objects); linear scan beats a
        // hash map here.
        self.writes.iter().position(|w| w.tvar_id() == id)
    }

    /// Acquire write ownership of `tvar`, resolving write-write and
    /// write-read conflicts through the contention manager. Returns the
    /// index of the write-set entry.
    fn acquire<T: TxObject>(&mut self, tvar: &TVar<T>) -> TxResult<usize> {
        if let Some(idx) = self.find_write(tvar.id()) {
            return Ok(idx);
        }
        loop {
            self.check_alive()?;
            let conflict = {
                let mut st = tvar.inner().state.lock();
                let writer_enemy = match &st.writer {
                    Some(w) if w.is_active() && w.attempt_id != self.state.attempt_id => {
                        Some((Arc::clone(w), ConflictKind::WriteWrite))
                    }
                    _ => None,
                };
                match writer_enemy {
                    Some(c) => Some(c),
                    None => match st.conflicting_reader(&self.state) {
                        Some(r) => Some((r, ConflictKind::WriteRead)),
                        None => {
                            // Clear: collapse the locator and install ourselves.
                            let cur = st.effective();
                            st.old = Arc::clone(&cur);
                            st.new = None;
                            st.writer = Some(Arc::clone(&self.state));
                            drop(st);
                            let shadow = Arc::new((*cur).clone());
                            self.writes.push(Box::new(TypedWrite {
                                tvar: tvar.clone(),
                                shadow,
                            }));
                            self.note_open();
                            if let Some(fp) = &mut self.footprint {
                                fp.push((tvar.id(), true));
                            }
                            return Ok(self.writes.len() - 1);
                        }
                    },
                }
            };
            if let Some((enemy, kind)) = conflict {
                self.handle_conflict(&enemy, kind)?;
            }
        }
    }

    /// Apply the contention manager to one discovered conflict.
    ///
    /// On `Ok(())` the caller must re-examine the object: the enemy was
    /// killed, finished on its own, or the manager asked for a re-check.
    fn handle_conflict(&self, enemy: &Arc<TxState>, kind: ConflictKind) -> TxResult<()> {
        let stats = self.ctx.stats();
        stats.record_conflict(kind, enemy.txn_id);
        if !enemy.is_active() {
            return Ok(()); // resolved itself while we took the slow path
        }
        let t0 = Instant::now();
        let res = self.ctx.cm().resolve(&self.state, enemy, kind);
        let waited = t0.elapsed().as_nanos() as u64;
        if waited > 0 {
            stats
                .wait_ns
                .fetch_add(waited, std::sync::atomic::Ordering::Relaxed);
        }
        match res {
            Resolution::AbortEnemy => {
                enemy.abort();
                Ok(())
            }
            Resolution::AbortSelf => {
                self.state.abort();
                Err(TxError::Aborted)
            }
            Resolution::Retry => {
                if enemy.is_active() {
                    std::thread::yield_now();
                }
                self.check_alive()
            }
        }
    }

    #[inline]
    fn note_open(&self) {
        self.state.add_karma();
        self.ctx
            .stats()
            .opens
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.ctx.cm().on_open(&self.state);
    }

    /// Publish shadow copies and attempt the commit CAS.
    pub(crate) fn commit(&mut self) -> TxResult<()> {
        self.check_alive()?;
        // Publish every shadow before the status CAS: a competitor that
        // observes `Committed` must find all `new` versions in place.
        for w in &self.writes {
            w.publish(&self.state);
        }
        if self.state.try_commit() {
            Ok(())
        } else {
            Err(TxError::Aborted)
        }
    }
}
