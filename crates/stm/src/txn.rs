//! The transaction API: open-for-read, open-for-write, commit.
//!
//! Conflict handling is **eager**: the instant an open discovers a
//! competing active transaction, the contention manager is consulted
//! (outside the object lock) and its verdict applied. This mirrors DSTM2's
//! eager conflict management, the configuration the paper evaluates.
//!
//! Reads take the lock-free path in [`crate::tvar`] first: register in the
//! object's reader-slot word, then clone the seqlock-guarded snapshot. The
//! object mutex is only taken when a writer is installed (the contended
//! case, where the contention manager gets involved anyway) or the thread
//! has no slot. Either way the read is *visible* before the value is
//! returned, so the eager conflict semantics are identical on both paths.
//!
//! ## Correctness argument (opacity)
//!
//! With visible reads, a writer can only install itself on an object with
//! *no other active reader or writer*; it must first wait for, or abort,
//! every conflicting transaction. Therefore while a transaction `R` is
//! active, no competitor can commit a change to any object `R` has read —
//! so every value `R` observed remains part of one consistent committed
//! snapshot, and no re-validation is needed at commit. Commit itself is a
//! single status CAS racing against enemy aborts: exactly one side wins.
//! The fast read path preserves the writer side of this argument through
//! the slot-scan handshake: a reader is globally visible (`SeqCst` slot
//! store) *before* it checks the seqlock word, and a writer flips the
//! seqlock word *before* it scans the slots — so a reader that obtained a
//! snapshot lock-free is always seen by any later writer.

use std::sync::Arc;

use crate::clockns;
use crate::cm::{ConflictKind, Resolution};
use crate::inline_vec::InlineVec;
use crate::stm::ThreadCtx;
use crate::tvar::TVar;
use crate::txstate::TxState;
use crate::writeset::WriteEntry;
use crate::TxObject;

/// Why a transactional operation could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxError {
    /// The transaction was aborted (by itself via the contention manager,
    /// or by an enemy). Propagate it out of the atomic closure with `?`;
    /// the engine retries automatically.
    Aborted,
}

impl std::fmt::Display for TxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxError::Aborted => write!(f, "transaction aborted"),
        }
    }
}

impl std::error::Error for TxError {}

/// Result alias used throughout the transactional API.
pub type TxResult<T> = Result<T, TxError>;

/// An in-flight transaction attempt. Created by
/// [`ThreadCtx::atomic`](crate::stm::ThreadCtx::atomic); user code receives
/// `&mut Txn` inside the atomic closure.
pub struct Txn<'a> {
    state: Arc<TxState>,
    writes: InlineVec<WriteEntry>,
    ctx: &'a ThreadCtx<'a>,
    /// This thread's global reader-slot index ([`crate::slots::NO_SLOT`]
    /// when the thread has none — mutex-path reads only).
    slot_idx: usize,
    /// Objects opened this attempt; flushed to the stats once at attempt
    /// end instead of one atomic RMW per open.
    opens: u64,
    /// When tracing, the `(object id, is_write)` access footprint of this
    /// attempt (reads of own writes are not re-recorded).
    footprint: Option<Vec<(u64, bool)>>,
    /// Debug-only opacity self-check: `(tvar id, version ptr, via fast
    /// path)` per first read. A re-read observing a different version
    /// within one attempt is an opacity violation and panics immediately,
    /// instead of letting the workload detonate later.
    #[cfg(debug_assertions)]
    read_versions: Vec<(u64, usize, bool)>,
    /// Trace taxonomy of how this attempt died. Defaults to "killed by an
    /// enemy"; refined at the abort site (CM self-abort, user bail-out).
    #[cfg(feature = "trace")]
    abort_reason: std::cell::Cell<u64>,
}

impl<'a> Txn<'a> {
    pub(crate) fn new(state: Arc<TxState>, ctx: &'a ThreadCtx<'a>, slot_idx: usize) -> Self {
        Txn {
            state,
            writes: InlineVec::new(),
            ctx,
            slot_idx,
            opens: 0,
            footprint: None,
            #[cfg(debug_assertions)]
            read_versions: ctx.take_read_versions_buf(),
            #[cfg(feature = "trace")]
            abort_reason: std::cell::Cell::new(wtm_trace::ABORT_KILLED),
        }
    }

    /// Return the pooled per-attempt buffers to the thread context so the
    /// next attempt reuses their capacity. Called by the engine right
    /// before the `Txn` is dropped.
    pub(crate) fn release_buffers(&mut self) {
        if let Some(fp) = self.footprint.take() {
            self.ctx.put_trace_buf(fp);
        }
        #[cfg(debug_assertions)]
        self.ctx
            .put_read_versions_buf(std::mem::take(&mut self.read_versions));
    }

    /// How this attempt aborted (trace taxonomy; see `wtm_trace::ABORT_*`).
    #[cfg(feature = "trace")]
    pub(crate) fn abort_reason(&self) -> u64 {
        self.abort_reason.get()
    }

    /// Record a read and verify it is consistent with any earlier read of
    /// the same object in this attempt (debug builds only).
    #[cfg(debug_assertions)]
    fn check_read_version<T: TxObject>(&mut self, tvar: &TVar<T>, val: &Arc<T>, fast: bool) {
        let ptr = Arc::as_ptr(val) as *const () as usize;
        if let Some((_, seen, seen_fast)) = self
            .read_versions
            .iter()
            .find(|(id, _, _)| *id == tvar.id())
        {
            if *seen != ptr {
                panic!(
                    "opacity violation: attempt {} re-read tvar {} and observed a \
                     different version (first via {} path, now via {} path); {}",
                    self.state.attempt_id,
                    tvar.id(),
                    if *seen_fast { "fast" } else { "mutex" },
                    if fast { "fast" } else { "mutex" },
                    tvar.inner()
                        .debug_dump(self.slot_idx, self.state.attempt_id),
                );
            }
        } else {
            self.read_versions.push((tvar.id(), ptr, fast));
        }
    }

    pub(crate) fn enable_tracing(&mut self) {
        self.footprint = Some(self.ctx.take_trace_buf());
    }

    pub(crate) fn take_footprint(&mut self) -> Vec<(u64, bool)> {
        self.footprint.take().unwrap_or_default()
    }

    /// Objects opened during this attempt (batched `opens` statistic).
    pub(crate) fn opens_count(&self) -> u64 {
        self.opens
    }

    /// The shared record describing this attempt.
    pub fn state(&self) -> &Arc<TxState> {
        &self.state
    }

    /// Number of objects in the write set.
    pub fn write_set_len(&self) -> usize {
        self.writes.len()
    }

    #[inline]
    fn check_alive(&self) -> TxResult<()> {
        if self.state.is_active() {
            Ok(())
        } else {
            Err(TxError::Aborted)
        }
    }

    /// Open `tvar` for reading and return the observed version.
    ///
    /// The returned `Arc<T>` is a stable snapshot: it never changes even if
    /// the object is later rewritten. If this transaction already wrote the
    /// object, its own shadow copy is returned (read-your-writes).
    pub fn read<T: TxObject>(&mut self, tvar: &TVar<T>) -> TxResult<Arc<T>> {
        self.check_alive()?;
        if let Some(idx) = self.find_write(tvar.id()) {
            return Ok(self.writes[idx].read_snapshot::<T>());
        }
        // Lock-free fast path: slot registration + guarded snapshot clone.
        if let Some(val) = tvar.inner().fast_read(self.slot_idx, self.state.attempt_id) {
            // Doomed-reader validation: an enemy writer aborts us *before*
            // committing over our read set, so being Active *after* the
            // snapshot clone proves `val` is consistent with every earlier
            // read. Without this, an abort landing between the entry
            // `check_alive` and the clone lets a doomed transaction mix
            // pre- and post-commit versions (a zombie read).
            self.check_alive()?;
            self.note_open();
            if let Some(fp) = &mut self.footprint {
                fp.push((tvar.id(), false));
            }
            #[cfg(debug_assertions)]
            self.check_read_version(tvar, &val, true);
            return Ok(val);
        }
        loop {
            self.check_alive()?;
            let enemy = {
                let mut st = tvar.inner().state.lock();
                match &st.writer {
                    Some(w) if w.is_active() && w.attempt_id != self.state.attempt_id => {
                        Some(Arc::clone(w))
                    }
                    _ => {
                        if st.writer.is_some() {
                            // Terminal writer: fold its outcome into `old`
                            // and re-arm the fast path for everyone. The
                            // displaced version (and an aborted writer's
                            // orphaned shadow) go to the recycling slot.
                            let cur = st.effective();
                            let prev = std::mem::replace(&mut st.old, cur);
                            let orphan = st.new.take();
                            st.writer = None;
                            tvar.inner().unlock_snapshot(&st.old);
                            st.retire(prev);
                            if let Some(orphan) = orphan {
                                st.retire(orphan);
                            }
                        }
                        let val = Arc::clone(&st.old);
                        tvar.inner()
                            .register_reader_locked(&mut st, self.slot_idx, &self.state);
                        drop(st);
                        // Doomed-reader validation (see fast path above): the
                        // entry `check_alive` races with an enemy's abort, so
                        // re-validate now that the value is in hand.
                        self.check_alive()?;
                        self.note_open();
                        if let Some(fp) = &mut self.footprint {
                            fp.push((tvar.id(), false));
                        }
                        #[cfg(debug_assertions)]
                        self.check_read_version(tvar, &val, false);
                        return Ok(val);
                    }
                }
            };
            if let Some(enemy) = enemy {
                self.handle_conflict(&enemy, ConflictKind::ReadWrite)?;
            }
        }
    }

    /// Open `tvar` for writing and replace its value with `value`.
    pub fn write<T: TxObject>(&mut self, tvar: &TVar<T>, value: T) -> TxResult<()> {
        // Hand the value to `acquire` so a fresh open stores it directly
        // instead of cloning the current version only to overwrite it.
        self.acquire(tvar, Some(value)).map(|_| ())
    }

    /// Open `tvar` for writing and mutate the shadow copy in place.
    pub fn modify<T: TxObject>(&mut self, tvar: &TVar<T>, f: impl FnOnce(&mut T)) -> TxResult<()> {
        let idx = self.acquire(tvar, None)?;
        self.writes[idx].modify_value::<T>(f);
        Ok(())
    }

    /// Abort this transaction voluntarily (e.g. explicit early exit in a
    /// benchmark). The engine will retry the atomic closure.
    pub fn abort_self(&self) -> TxError {
        self.state.abort();
        #[cfg(feature = "trace")]
        self.abort_reason.set(wtm_trace::ABORT_USER);
        TxError::Aborted
    }

    fn find_write(&self, id: u64) -> Option<usize> {
        // Write sets are small (a handful of objects); linear scan beats a
        // hash map here.
        self.writes.position(|w| w.tvar_id() == id)
    }

    /// Acquire write ownership of `tvar`, resolving write-write and
    /// write-read conflicts through the contention manager. Returns the
    /// index of the write-set entry. When `value` is given it becomes the
    /// entry's value; otherwise the entry starts as a clone of the current
    /// version (open-for-modify).
    fn acquire<T: TxObject>(&mut self, tvar: &TVar<T>, mut value: Option<T>) -> TxResult<usize> {
        if let Some(idx) = self.find_write(tvar.id()) {
            if let Some(v) = value {
                self.writes[idx].set_value(v);
            }
            return Ok(idx);
        }
        loop {
            self.check_alive()?;
            let conflict = {
                let mut st = tvar.inner().state.lock();
                let writer_enemy = match &st.writer {
                    Some(w) if w.is_active() && w.attempt_id != self.state.attempt_id => {
                        Some((Arc::clone(w), ConflictKind::WriteWrite))
                    }
                    _ => None,
                };
                match writer_enemy {
                    Some(c) => Some(c),
                    None => {
                        // `seq` is even iff no writer is installed; flip it
                        // odd *before* the reader scan (Dekker handshake)
                        // and keep it odd for our whole ownership. With a
                        // terminal writer still installed it is already
                        // odd from that writer's period — flipping again
                        // would wrongly re-open the fast path.
                        let was_unlocked = st.writer.is_none();
                        if was_unlocked {
                            tvar.inner().lock_snapshot();
                        }
                        match tvar.inner().conflicting_reader(&mut st, &self.state) {
                            Some(r) => {
                                if was_unlocked {
                                    tvar.inner().unlock_snapshot_unchanged();
                                }
                                Some((r, ConflictKind::WriteRead))
                            }
                            None => {
                                // Clear: collapse any terminal writer, then
                                // install ourselves. With no writer (the
                                // common case) `old` already is the current
                                // version and the collapse dance is skipped.
                                if st.writer.is_some() {
                                    let cur = st.effective();
                                    let prev = std::mem::replace(&mut st.old, cur);
                                    let orphan = st.new.take();
                                    st.retire(prev);
                                    if let Some(orphan) = orphan {
                                        st.retire(orphan);
                                    }
                                }
                                st.writer = Some(Arc::clone(&self.state));
                                // Only open-for-modify needs the current
                                // version as a clone source; a plain write
                                // overwrites it wholesale.
                                let cur = if value.is_some() {
                                    None
                                } else {
                                    Some(Arc::clone(&st.old))
                                };
                                // Large types spill to a boxed shadow copy;
                                // reuse the retired version's allocation
                                // for it when possible.
                                let spare = if WriteEntry::fits_inline::<T>() {
                                    None
                                } else {
                                    st.take_unshared_spare()
                                };
                                drop(st);
                                let entry = if WriteEntry::fits_inline::<T>() {
                                    let v = match value.take() {
                                        Some(v) => v,
                                        None => (*cur.expect("open-for-modify keeps cur")).clone(),
                                    };
                                    WriteEntry::new_inline(tvar.clone(), v)
                                } else {
                                    let shadow = match spare {
                                        Some(mut a) => {
                                            let slot = Arc::get_mut(&mut a)
                                                .expect("spare taken only when unshared");
                                            match value.take() {
                                                Some(v) => *slot = v,
                                                None => slot.clone_from(
                                                    cur.as_ref()
                                                        .expect("open-for-modify keeps cur"),
                                                ),
                                            }
                                            a
                                        }
                                        None => match value.take() {
                                            Some(v) => Arc::new(v),
                                            None => Arc::new(
                                                (*cur.expect("open-for-modify keeps cur")).clone(),
                                            ),
                                        },
                                    };
                                    WriteEntry::new_boxed(tvar.clone(), shadow)
                                };
                                self.writes.push(entry);
                                // Doomed-writer validation: if an enemy
                                // aborted us after the entry `check_alive`,
                                // the collapsed `cur` we based the shadow on
                                // may postdate our abort and be inconsistent
                                // with earlier reads. We stay installed as a
                                // terminal writer; readers collapse past us.
                                self.check_alive()?;
                                self.note_open();
                                if let Some(fp) = &mut self.footprint {
                                    fp.push((tvar.id(), true));
                                }
                                return Ok(self.writes.len() - 1);
                            }
                        }
                    }
                }
            };
            if let Some((enemy, kind)) = conflict {
                self.handle_conflict(&enemy, kind)?;
            }
        }
    }

    /// Apply the contention manager to one discovered conflict.
    ///
    /// On `Ok(())` the caller must re-examine the object: the enemy was
    /// killed, finished on its own, or the manager asked for a re-check.
    fn handle_conflict(&self, enemy: &Arc<TxState>, kind: ConflictKind) -> TxResult<()> {
        let stats = self.ctx.stats();
        stats.record_conflict(kind, enemy.txn_id);
        if !enemy.is_active() {
            return Ok(()); // resolved itself while we took the slow path
        }
        let t0 = clockns::now();
        let res = self.ctx.cm().resolve(&self.state, enemy, kind);
        let waited = clockns::now().saturating_sub(t0);
        if waited > 0 {
            stats
                .wait_ns
                .fetch_add(waited, std::sync::atomic::Ordering::Relaxed);
        }
        match res {
            Resolution::AbortEnemy => {
                let killed = enemy.abort();
                #[cfg(not(feature = "trace"))]
                let _ = killed;
                #[cfg(feature = "trace")]
                self.trace_conflict(enemy, kind, wtm_trace::VERDICT_ABORT_ENEMY, killed, waited);
                Ok(())
            }
            Resolution::AbortSelf => {
                self.state.abort();
                #[cfg(feature = "trace")]
                {
                    self.abort_reason.set(wtm_trace::ABORT_CM_SELF);
                    self.trace_conflict(enemy, kind, wtm_trace::VERDICT_ABORT_SELF, true, waited);
                }
                Err(TxError::Aborted)
            }
            Resolution::Retry => {
                #[cfg(feature = "trace")]
                self.trace_conflict(enemy, kind, wtm_trace::VERDICT_RETRY, false, waited);
                if enemy.is_active() {
                    std::thread::yield_now();
                }
                self.check_alive()
            }
        }
    }

    /// Emit the conflict (and, for non-trivial waits, the wait span) of
    /// one `handle_conflict` resolution.
    #[cfg(feature = "trace")]
    fn trace_conflict(
        &self,
        enemy: &Arc<TxState>,
        kind: ConflictKind,
        verdict: u64,
        killed: bool,
        waited: u64,
    ) {
        if !wtm_trace::enabled() {
            return;
        }
        let now = clockns::now();
        let tid = self.state.thread_id as u32;
        let kind_code = match kind {
            ConflictKind::WriteWrite => 0,
            ConflictKind::ReadWrite => 1,
            ConflictKind::WriteRead => 2,
        };
        wtm_trace::emit(wtm_trace::Event::instant(
            wtm_trace::EventKind::Conflict,
            now,
            tid,
            enemy.thread_id as u64,
            wtm_trace::pack_conflict(kind_code, verdict, killed),
        ));
        // Sub-µs "waits" are just the resolve call itself; only real
        // contention-manager stalls (back-off, Polka spins) are spans.
        if waited >= 1_000 {
            wtm_trace::emit(wtm_trace::Event::span(
                wtm_trace::EventKind::Wait,
                now,
                waited,
                tid,
                enemy.thread_id as u64,
                0,
            ));
        }
    }

    #[inline]
    fn note_open(&mut self) {
        self.state.add_karma();
        self.opens += 1;
        self.ctx.cm().on_open(&self.state);
    }

    /// Publish shadow copies and attempt the commit CAS.
    pub(crate) fn commit(&mut self) -> TxResult<()> {
        self.check_alive()?;
        // Single-object write set (the dominant case: counters, single-node
        // structure updates): publish + status CAS + locator collapse fused
        // under ONE acquisition of the object lock. Besides saving two lock
        // rounds, the collapse re-arms the lock-free read path and drops
        // the locator's reference to this attempt, so its `TxState`
        // allocation promptly returns to the pool.
        if self.writes.len() == 1 {
            return if self.writes[0].commit_fused(&self.state) {
                Ok(())
            } else {
                Err(TxError::Aborted)
            };
        }
        // Multi-object: publish every shadow before the status CAS — a
        // competitor that observes `Committed` must find every `new`
        // version in place. The locators are left to collapse lazily at
        // their next access, which amortizes into a lock round that access
        // pays anyway (an eager per-object collapse here costs an *extra*
        // lock + seqlock re-arm per object).
        for w in self.writes.iter() {
            w.publish(&self.state);
        }
        if self.state.try_commit() {
            Ok(())
        } else {
            Err(TxError::Aborted)
        }
    }

    /// Collapse every written locator after this attempt turned terminal
    /// (committed or aborted). No-op per entry if a competitor collapsed
    /// the locator first.
    pub(crate) fn release_write_set(&self) {
        for w in self.writes.iter() {
            w.release(&self.state);
        }
    }
}
