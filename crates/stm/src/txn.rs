//! The transaction API: open-for-read, open-for-write, commit.
//!
//! `Txn` owns everything protocol-independent about an attempt — the
//! write set, CM hook invocation, conflict accounting, tracing, the
//! debug-only opacity self-check — and delegates the four
//! protocol-defining operations to the run's [`Engine`]: the eager
//! DSTM2-style protocol ([`crate::engine::eager`], the configuration the
//! paper evaluates) or the TL2/STO-style lazy protocol
//! ([`crate::engine::lazy`]). Dispatch is a two-way `match` on
//! [`EngineKind`], monomorphized per call site like [`CmDispatch`]
//! (no trait objects on the hot path).

use std::sync::Arc;

use crate::clockns;
use crate::cm::{ConflictKind, Resolution};
use crate::engine::eager::EagerEngine;
use crate::engine::lazy::LazyEngine;
use crate::engine::{Engine, EngineKind, LazyRead};
use crate::inline_vec::InlineVec;
use crate::stm::ThreadCtx;
use crate::tvar::TVar;
use crate::txstate::TxState;
use crate::writeset::WriteEntry;
use crate::TxObject;

/// Why a transactional operation could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxError {
    /// The transaction was aborted (by itself via the contention manager,
    /// or by an enemy). Propagate it out of the atomic closure with `?`;
    /// the engine retries automatically.
    Aborted,
}

impl std::fmt::Display for TxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxError::Aborted => write!(f, "transaction aborted"),
        }
    }
}

impl std::error::Error for TxError {}

/// Result alias used throughout the transactional API.
pub type TxResult<T> = Result<T, TxError>;

/// An in-flight transaction attempt. Created by
/// [`ThreadCtx::atomic`](crate::stm::ThreadCtx::atomic); user code receives
/// `&mut Txn` inside the atomic closure.
pub struct Txn<'a> {
    pub(crate) state: Arc<TxState>,
    pub(crate) writes: InlineVec<WriteEntry>,
    pub(crate) ctx: &'a ThreadCtx<'a>,
    /// Which protocol this attempt runs under (copied from the engine
    /// handle once, so the dispatch match reads a local field).
    engine: EngineKind,
    /// This thread's global reader-slot index ([`crate::slots::NO_SLOT`]
    /// when the thread has none — mutex-path reads only).
    pub(crate) slot_idx: usize,
    /// Objects opened this attempt; flushed to the stats once at attempt
    /// end instead of one atomic RMW per open.
    pub(crate) opens: u64,
    /// Lazy engine: the read watermark — committed versions `≤ rv` are
    /// "of the past" and safe to read. Unused (0) under the eager engine.
    pub(crate) rv: u64,
    /// Lazy engine: the invisible-read set, re-validated at commit.
    /// Stays empty under the eager engine.
    pub(crate) reads: Vec<LazyRead>,
    /// When tracing, the `(object id, is_write)` access footprint of this
    /// attempt (reads of own writes are not re-recorded).
    pub(crate) footprint: Option<Vec<(u64, bool)>>,
    /// Debug-only opacity self-check: `(tvar id, version ptr, via fast
    /// path)` per first read. A re-read observing a different version
    /// within one attempt is an opacity violation and panics immediately,
    /// instead of letting the workload detonate later.
    #[cfg(debug_assertions)]
    read_versions: Vec<(u64, usize, bool)>,
    /// Trace taxonomy of how this attempt died. Defaults to "killed by an
    /// enemy"; refined at the abort site (CM self-abort, user bail-out,
    /// lazy validation failure).
    #[cfg(feature = "trace")]
    abort_reason: std::cell::Cell<u64>,
}

impl<'a> Txn<'a> {
    pub(crate) fn new(state: Arc<TxState>, ctx: &'a ThreadCtx<'a>, slot_idx: usize) -> Self {
        let engine = ctx.stm().engine();
        Txn {
            state,
            writes: InlineVec::new(),
            ctx,
            engine,
            slot_idx,
            opens: 0,
            rv: match engine {
                EngineKind::Eager => 0,
                EngineKind::Lazy => crate::engine::read_watermark(),
            },
            reads: ctx.take_reads_buf(),
            footprint: None,
            #[cfg(debug_assertions)]
            read_versions: ctx.take_read_versions_buf(),
            #[cfg(feature = "trace")]
            abort_reason: std::cell::Cell::new(wtm_trace::ABORT_KILLED),
        }
    }

    /// Return the pooled per-attempt buffers to the thread context so the
    /// next attempt reuses their capacity. Called by the engine right
    /// before the `Txn` is dropped.
    pub(crate) fn release_buffers(&mut self) {
        if let Some(fp) = self.footprint.take() {
            self.ctx.put_trace_buf(fp);
        }
        self.ctx.put_reads_buf(std::mem::take(&mut self.reads));
        #[cfg(debug_assertions)]
        self.ctx
            .put_read_versions_buf(std::mem::take(&mut self.read_versions));
    }

    /// How this attempt aborted (trace taxonomy; see `wtm_trace::ABORT_*`).
    #[cfg(feature = "trace")]
    pub(crate) fn abort_reason(&self) -> u64 {
        self.abort_reason.get()
    }

    /// Refine the abort taxonomy at the abort site.
    #[cfg(feature = "trace")]
    pub(crate) fn set_abort_reason(&self, reason: u64) {
        self.abort_reason.set(reason);
    }

    /// Record a read and verify it is consistent with any earlier read of
    /// the same object in this attempt (debug builds only).
    #[cfg(debug_assertions)]
    pub(crate) fn check_read_version<T: TxObject>(
        &mut self,
        tvar: &TVar<T>,
        val: &Arc<T>,
        fast: bool,
    ) {
        let ptr = Arc::as_ptr(val) as *const () as usize;
        if let Some((_, seen, seen_fast)) = self
            .read_versions
            .iter()
            .find(|(id, _, _)| *id == tvar.id())
        {
            if *seen != ptr {
                panic!(
                    "opacity violation: attempt {} re-read tvar {} and observed a \
                     different version (first via {} path, now via {} path); {}",
                    self.state.attempt_id,
                    tvar.id(),
                    if *seen_fast { "fast" } else { "mutex" },
                    if fast { "fast" } else { "mutex" },
                    tvar.inner()
                        .debug_dump(self.slot_idx, self.state.attempt_id),
                );
            }
        } else {
            self.read_versions.push((tvar.id(), ptr, fast));
        }
    }

    pub(crate) fn enable_tracing(&mut self) {
        self.footprint = Some(self.ctx.take_trace_buf());
    }

    pub(crate) fn take_footprint(&mut self) -> Vec<(u64, bool)> {
        self.footprint.take().unwrap_or_default()
    }

    /// Objects opened during this attempt (batched `opens` statistic).
    pub(crate) fn opens_count(&self) -> u64 {
        self.opens
    }

    /// The shared record describing this attempt.
    pub fn state(&self) -> &Arc<TxState> {
        &self.state
    }

    /// Number of objects in the write set.
    pub fn write_set_len(&self) -> usize {
        self.writes.len()
    }

    #[inline]
    pub(crate) fn check_alive(&self) -> TxResult<()> {
        if self.state.is_active() {
            Ok(())
        } else {
            Err(TxError::Aborted)
        }
    }

    /// Open `tvar` for reading and return the observed version.
    ///
    /// The returned `Arc<T>` is a stable snapshot: it never changes even if
    /// the object is later rewritten. If this transaction already wrote the
    /// object, its own shadow copy is returned (read-your-writes).
    pub fn read<T: TxObject>(&mut self, tvar: &TVar<T>) -> TxResult<Arc<T>> {
        match self.engine {
            EngineKind::Eager => EagerEngine::open_for_read(self, tvar),
            EngineKind::Lazy => LazyEngine::open_for_read(self, tvar),
        }
    }

    /// Open `tvar` for writing and replace its value with `value`.
    pub fn write<T: TxObject>(&mut self, tvar: &TVar<T>, value: T) -> TxResult<()> {
        // Hand the value to the engine so a fresh open stores it directly
        // instead of cloning the current version only to overwrite it.
        self.open_for_modify(tvar, Some(value)).map(|_| ())
    }

    /// Open `tvar` for writing and mutate the shadow copy in place.
    pub fn modify<T: TxObject>(&mut self, tvar: &TVar<T>, f: impl FnOnce(&mut T)) -> TxResult<()> {
        let idx = self.open_for_modify(tvar, None)?;
        self.writes[idx].modify_value::<T>(f);
        Ok(())
    }

    #[inline]
    fn open_for_modify<T: TxObject>(
        &mut self,
        tvar: &TVar<T>,
        value: Option<T>,
    ) -> TxResult<usize> {
        match self.engine {
            EngineKind::Eager => EagerEngine::open_for_modify(self, tvar, value),
            EngineKind::Lazy => LazyEngine::open_for_modify(self, tvar, value),
        }
    }

    /// Abort this transaction voluntarily (e.g. explicit early exit in a
    /// benchmark). The engine will retry the atomic closure.
    pub fn abort_self(&self) -> TxError {
        self.state.abort();
        #[cfg(feature = "trace")]
        self.abort_reason.set(wtm_trace::ABORT_USER);
        TxError::Aborted
    }

    pub(crate) fn find_write(&self, id: u64) -> Option<usize> {
        // Write sets are small (a handful of objects); linear scan beats a
        // hash map here.
        self.writes.position(|w| w.tvar_id() == id)
    }

    /// Apply the contention manager to one discovered conflict.
    ///
    /// On `Ok(())` the caller must re-examine the object: the enemy was
    /// killed, finished on its own, or the manager asked for a re-check.
    pub(crate) fn handle_conflict(&self, enemy: &Arc<TxState>, kind: ConflictKind) -> TxResult<()> {
        let stats = self.ctx.stats();
        stats.record_conflict(kind, enemy.txn_id);
        if !enemy.is_active() {
            return Ok(()); // resolved itself while we took the slow path
        }
        let t0 = clockns::now();
        let res = self.ctx.cm().resolve(&self.state, enemy, kind);
        let waited = clockns::now().saturating_sub(t0);
        if waited > 0 {
            stats
                .wait_ns
                .fetch_add(waited, std::sync::atomic::Ordering::Relaxed);
        }
        match res {
            Resolution::AbortEnemy => {
                let killed = enemy.abort();
                #[cfg(not(feature = "trace"))]
                let _ = killed;
                #[cfg(feature = "trace")]
                self.trace_conflict(enemy, kind, wtm_trace::VERDICT_ABORT_ENEMY, killed, waited);
                Ok(())
            }
            Resolution::AbortSelf => {
                self.state.abort();
                #[cfg(feature = "trace")]
                {
                    self.abort_reason.set(wtm_trace::ABORT_CM_SELF);
                    self.trace_conflict(enemy, kind, wtm_trace::VERDICT_ABORT_SELF, true, waited);
                }
                Err(TxError::Aborted)
            }
            Resolution::Retry => {
                #[cfg(feature = "trace")]
                self.trace_conflict(enemy, kind, wtm_trace::VERDICT_RETRY, false, waited);
                if enemy.is_active() {
                    std::thread::yield_now();
                }
                self.check_alive()
            }
        }
    }

    /// Emit the conflict (and, for non-trivial waits, the wait span) of
    /// one `handle_conflict` resolution.
    #[cfg(feature = "trace")]
    fn trace_conflict(
        &self,
        enemy: &Arc<TxState>,
        kind: ConflictKind,
        verdict: u64,
        killed: bool,
        waited: u64,
    ) {
        if !wtm_trace::enabled() {
            return;
        }
        let now = clockns::now();
        let tid = self.state.thread_id as u32;
        let kind_code = match kind {
            ConflictKind::WriteWrite => 0,
            ConflictKind::ReadWrite => 1,
            ConflictKind::WriteRead => 2,
        };
        wtm_trace::emit(wtm_trace::Event::instant(
            wtm_trace::EventKind::Conflict,
            now,
            tid,
            enemy.thread_id as u64,
            wtm_trace::pack_conflict(kind_code, verdict, killed),
        ));
        // Sub-µs "waits" are just the resolve call itself; only real
        // contention-manager stalls (back-off, Polka spins) are spans.
        if waited >= 1_000 {
            wtm_trace::emit(wtm_trace::Event::span(
                wtm_trace::EventKind::Wait,
                now,
                waited,
                tid,
                enemy.thread_id as u64,
                0,
            ));
        }
    }

    #[inline]
    pub(crate) fn note_open(&mut self) {
        self.state.add_karma();
        self.opens += 1;
        self.ctx.cm().on_open(&self.state);
    }

    /// Make the write set visible atomically (protocol-specific).
    pub(crate) fn commit(&mut self) -> TxResult<()> {
        match self.engine {
            EngineKind::Eager => EagerEngine::commit(self),
            EngineKind::Lazy => LazyEngine::commit(self),
        }
    }

    /// Undo any globally visible traces after this attempt turned
    /// terminal (protocol-specific rollback).
    pub(crate) fn release_write_set(&self) {
        match self.engine {
            EngineKind::Eager => EagerEngine::rollback(self),
            EngineKind::Lazy => LazyEngine::rollback(self),
        }
    }
}
