//! # wtm-stm — an eager, object-based software transactional memory engine
//!
//! This crate is a from-scratch Rust implementation of the STM substrate the
//! paper *"On the Performance of Window-Based Contention Managers for
//! Transactional Memory"* (Sharma & Busch, IPDPS Workshops 2011) runs its
//! evaluation on. The paper used **DSTM2** (Herlihy, Luchangco, Moir), a Java
//! STM with *eager conflict management*, the *shadow factory*, and *visible
//! reads*. `wtm-stm` reproduces those semantics:
//!
//! * **Object-based**: the unit of synchronization is a [`TVar<T>`]
//!   (transactional object), not a memory word.
//! * **Eager conflict management**: a conflict is discovered the moment a
//!   transaction *opens* an object that another active transaction has open,
//!   and the installed [`ContentionManager`] is consulted right away.
//! * **Visible reads**: readers register themselves on the object, so a
//!   writer discovers read-write conflicts eagerly and can abort readers.
//! * **Shadow copies**: a writer works on a private clone of the object,
//!   published atomically at commit via the object's *locator*.
//! * **Obstruction-free locator protocol**: each object points at a
//!   [`Locator`](tvar) holding `(writer, old version, new version)`. The
//!   current value is `new` iff the writer committed, `old` otherwise.
//!   Transaction status changes with a single compare-and-swap, so commits
//!   and enemy aborts serialize correctly without global locks.
//!
//! ## Quick example
//!
//! ```
//! use std::sync::Arc;
//! use wtm_stm::{Stm, TVar, cm::AbortSelfManager};
//!
//! let stm = Stm::new(Arc::new(AbortSelfManager::default()), 1);
//! let counter: TVar<u64> = TVar::new(0);
//! let ctx = stm.thread(0);
//! let v = ctx.atomic(|tx| {
//!     let v = *tx.read(&counter)?;
//!     tx.write(&counter, v + 1)?;
//!     Ok(v + 1)
//! });
//! assert_eq!(v, 1);
//! ```
//!
//! ## Crate layout
//!
//! | module | contents |
//! |---|---|
//! | [`epoch`] | epoch-based reclamation: the shared deferred-free layer |
//! | [`status`] | transaction status word and its CAS rules |
//! | [`txstate`] | the shared per-attempt transaction record ([`TxState`]) |
//! | [`cm`] | the [`ContentionManager`] trait, [`Resolution`], [`ConflictKind`] |
//! | [`dispatch`] | [`CmDispatch`]: enum dispatch over the built-in managers |
//! | [`managers`] | the classic contention managers (Polka, Greedy, …) |
//! | [`tvar`] | transactional objects and the locator protocol |
//! | [`txn`] | the transaction API: read/write/modify/commit |
//! | [`stm`] | the engine handle, per-thread contexts, the retry loop |
//! | [`stats`] | lock-free per-thread metrics and snapshots |
//! | [`clock`] | the global logical clock used for timestamps |
//! | [`clockns`] | cheap coarse nanosecond timestamps for metrics |
//! | [`slots`] | global reader-slot indices and the attempt registry |
//! | [`sync`] | cancellable barrier and cooperative waiting helpers |

pub mod clock;
pub mod clockns;
pub mod cm;
pub mod dispatch;
pub mod engine;
pub mod epoch;
mod inline_vec;
pub mod managers;
/// Debug-build hot-path operation counters (scan/RMW cost assertions).
#[cfg(debug_assertions)]
pub mod probe;
pub mod slots;
pub mod stats;
pub mod status;
pub mod stm;
pub mod sync;
pub mod tvar;
pub mod txn;
pub mod txstate;
mod writeset;

pub use clock::LogicalClock;
pub use cm::{ConflictKind, ContentionManager, Resolution};
pub use dispatch::CmDispatch;
pub use engine::EngineKind;
pub use slots::reserve_reader_slots;
pub use stats::{ShardedU64, StatsSnapshot, ThreadStats};
pub use status::TxStatus;
pub use stm::{Stm, ThreadCtx};
pub use tvar::TVar;
pub use txn::{TxError, TxResult, Txn};
pub use txstate::TxState;

/// Marker trait for values that can live inside a [`TVar`].
///
/// Blanket-implemented: anything `Clone + Send + Sync + 'static` qualifies.
/// `Clone` is required because the engine makes shadow copies of objects
/// opened for writing (DSTM's "shadow factory").
pub trait TxObject: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> TxObject for T {}
