//! The lazy engine: TL2/STO-style commit-time locking.
//!
//! Three departures from the eager protocol:
//!
//! * **Invisible reads.** A reader never registers on the object; it
//!   samples the seqlock-guarded snapshot together with the object's
//!   commit version and remembers `(object, seq)` in a private read set.
//!   No reader-list cache traffic — the scaling bottleneck the eager
//!   engine's visible reads pay for on read-mostly workloads.
//! * **Buffered writes.** Opens for writing build the shadow copy in the
//!   write set and touch nothing global. Write-write conflicts surface
//!   only at commit.
//! * **Commit-time locking.** Commit CASes each written object's seqlock
//!   word even→odd (in object-id order — deadlock-free), re-validates the
//!   read set, takes a write version from the global clock, flips the
//!   status CAS, and writes back.
//!
//! ## Correctness argument (opacity)
//!
//! Every attempt carries a read watermark `rv`: the value of the global
//! version clock ([`super::read_watermark`]) at attempt start — the same
//! clock that hands out commit versions. A read is admitted only if the
//! object's version is `≤ rv` *and* the seqlock word was even and
//! unchanged around the sample, i.e. the value is the committed version
//! as of logical time `rv`. So *every* value any attempt — including one
//! that is already doomed — ever observes belongs to the single committed
//! snapshot at its `rv`: zombie reads are consistent by construction, not
//! by enemy-abort discipline as in the eager engine. Commit re-checks
//! each read's seqlock word, which catches both a competitor's committed
//! overwrite (version bump) and the ABA-free in-progress case (word odd);
//! a competitor's *failed* commit leaves the word changed but the value
//! intact, and the re-check accepts it by re-deriving the invariant
//! (word even again + version still `≤ rv`) instead of demanding literal
//! equality — no spurious aborts from neighbours' aborted commits, except
//! the unavoidable seq-parity ambiguity window.
//!
//! The contention manager is consulted exactly where conflicts become
//! observable: a reader meeting a commit-locked object (read-write), and
//! a committer meeting a locked object (write-write). `AbortEnemy`
//! verdicts work unchanged — killing the lock holder's status CAS makes
//! it fail its own commit and release the locks. A holder that already
//! won its status CAS ignores the kill benignly (the abort CAS fails) and
//! unlocks by finishing its write-back.

use std::sync::Arc;

use super::{Engine, LazyRead};
use crate::cm::ConflictKind;
use crate::tvar::TVar;
use crate::txn::{TxError, TxResult, Txn};
use crate::writeset::WriteEntry;
use crate::TxObject;

/// The TL2/STO-style protocol as an [`Engine`] implementor.
pub(crate) struct LazyEngine;

/// Read the current committed version of `tvar` invisibly, appending it
/// to the read set. Loops while the object is commit-locked, consulting
/// the contention manager against the lock holder.
fn read_committed<T: TxObject>(txn: &mut Txn<'_>, tvar: &TVar<T>) -> TxResult<Arc<T>> {
    loop {
        txn.check_alive()?;
        if let Some((val, seq, version)) = tvar.inner().lazy_read() {
            if version > txn.rv {
                // Committed after our watermark: this snapshot may be
                // inconsistent with earlier reads. A TL2 extension could
                // re-validate and advance `rv`; we take the simple exit —
                // abort and retry with a fresh watermark.
                txn.state.abort();
                #[cfg(feature = "trace")]
                txn.set_abort_reason(wtm_trace::ABORT_VALIDATION);
                return Err(TxError::Aborted);
            }
            txn.reads.push(LazyRead {
                src: tvar.inner_arc(),
                seq,
            });
            return Ok(val);
        }
        // Commit-locked. Resolve against the holder when the registry can
        // still name it. No nameable holder means either a committer mid
        // write-back (wait it out) or a prior *eager* run's uncollapsed
        // terminal writer, which no one will ever release — fold that
        // ourselves via the mutex path.
        match tvar.inner().lazy_owner() {
            Some(enemy) => txn.handle_conflict(&enemy, ConflictKind::ReadWrite)?,
            None => {
                if !tvar.inner().collapse_eager_leftover() {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Abort `txn` for a failed commit-time read validation.
fn validation_abort(txn: &Txn<'_>) -> TxError {
    txn.state.abort();
    #[cfg(feature = "trace")]
    txn.set_abort_reason(wtm_trace::ABORT_VALIDATION);
    TxError::Aborted
}

/// Lock every write-set entry in object-id order, then re-validate the
/// read set. On success `locked` holds `(entry index, pre-lock seq)` for
/// every entry; on failure some prefix does and the caller must unlock it.
fn lock_and_validate(txn: &mut Txn<'_>, locked: &mut Vec<(usize, u64)>) -> TxResult<()> {
    let mut order: Vec<usize> = (0..txn.writes.len()).collect();
    order.sort_unstable_by_key(|&i| txn.writes[i].tvar_id());
    for i in order {
        loop {
            txn.check_alive()?;
            match txn.writes[i].lazy_lock(txn.slot_idx, txn.state.attempt_id) {
                Some(prelock) => {
                    locked.push((i, prelock));
                    break;
                }
                None => match txn.writes[i].lazy_owner() {
                    Some(enemy) => txn.handle_conflict(&enemy, ConflictKind::WriteWrite)?,
                    // Mid write-back (wait) or an eager run's uncollapsed
                    // terminal writer (fold it ourselves — see
                    // `read_committed`).
                    None => {
                        if !txn.writes[i].collapse_eager_leftover() {
                            std::thread::yield_now();
                        }
                    }
                },
            }
        }
    }
    // Read validation, with the whole write set locked: every read must
    // still be the committed version as of our watermark.
    'reads: for r in txn.reads.iter() {
        // An object we also wrote: our own commit lock holds its word odd
        // now, so "unchanged" means "nobody touched it between our read
        // and our lock" — the pre-lock seq must equal the seq we read at.
        for &(i, prelock) in locked.iter() {
            if txn.writes[i].tvar_id() == r.src.source_id() {
                if prelock == r.seq {
                    continue 'reads;
                }
                return Err(validation_abort(txn));
            }
        }
        let s1 = r.src.seq_now();
        if s1 == r.seq {
            continue; // untouched since the read
        }
        if s1 & 1 != 0 {
            // A competitor holds the commit lock; it may be about to
            // overwrite this read. Aborting (rather than waiting it out)
            // keeps validation lock-free.
            return Err(validation_abort(txn));
        }
        // The word moved but is even again: some competitor's commit
        // attempt came and went. Accept iff the value provably still
        // predates our watermark — version unchanged-sandwich re-check.
        let version = r.src.version_now();
        if r.src.seq_now() != s1 || version > txn.rv {
            return Err(validation_abort(txn));
        }
    }
    Ok(())
}

impl Engine for LazyEngine {
    fn open_for_read<T: TxObject>(txn: &mut Txn<'_>, tvar: &TVar<T>) -> TxResult<Arc<T>> {
        txn.check_alive()?;
        if let Some(idx) = txn.find_write(tvar.id()) {
            return Ok(txn.writes[idx].read_snapshot::<T>());
        }
        let val = read_committed(txn, tvar)?;
        txn.note_open();
        if let Some(fp) = &mut txn.footprint {
            fp.push((tvar.id(), false));
        }
        #[cfg(debug_assertions)]
        txn.check_read_version(tvar, &val, true);
        Ok(val)
    }

    fn open_for_modify<T: TxObject>(
        txn: &mut Txn<'_>,
        tvar: &TVar<T>,
        mut value: Option<T>,
    ) -> TxResult<usize> {
        txn.check_alive()?;
        if let Some(idx) = txn.find_write(tvar.id()) {
            if let Some(v) = value.take() {
                txn.writes[idx].set_value(v);
            }
            return Ok(idx);
        }
        let entry = match value {
            // A blind write needs no current version — and creates no
            // read-set entry, so a competitor overwriting the object
            // before our commit is *not* a conflict (last-writer-wins,
            // as in TL2).
            Some(v) if WriteEntry::fits_inline::<T>() => WriteEntry::new_inline(tvar.clone(), v),
            Some(v) => WriteEntry::new_boxed(tvar.clone(), Arc::new(v)),
            None => {
                // Open-for-modify bases the shadow on the current version,
                // which is a read: it joins the read set, so commit-time
                // validation catches a competitor racing us to update the
                // same object (no lost updates).
                let cur = read_committed(txn, tvar)?;
                if WriteEntry::fits_inline::<T>() {
                    WriteEntry::new_inline(tvar.clone(), (*cur).clone())
                } else {
                    // Keep the snapshot Arc itself; the first in-place
                    // modification clones through `Arc::make_mut`.
                    WriteEntry::new_boxed(tvar.clone(), cur)
                }
            }
        };
        txn.writes.push(entry);
        txn.note_open();
        if let Some(fp) = &mut txn.footprint {
            fp.push((tvar.id(), true));
        }
        Ok(txn.writes.len() - 1)
    }

    fn commit(txn: &mut Txn<'_>) -> TxResult<()> {
        txn.check_alive()?;
        if txn.writes.len() == 0 {
            // Read-only: every read was validated against the watermark
            // when it happened, so the snapshot is already consistent —
            // only the status CAS (racing enemy aborts) remains.
            return if txn.state.try_commit() {
                Ok(())
            } else {
                Err(TxError::Aborted)
            };
        }
        let mut locked: Vec<(usize, u64)> = Vec::with_capacity(txn.writes.len());
        let outcome = lock_and_validate(txn, &mut locked);
        let committed = match outcome {
            Ok(()) => txn.state.try_commit(),
            Err(_) => false,
        };
        if !committed {
            for &(i, _) in locked.iter() {
                txn.writes[i].lazy_unlock();
            }
            return Err(TxError::Aborted);
        }
        // Past the point of no return: stamp the write version and make
        // every shadow the committed version. Unlocking happens inside
        // the write-back (the final even flip of each object's word).
        let wv = super::next_write_version();
        for &(i, _) in locked.iter() {
            txn.writes[i].lazy_writeback(wv);
        }
        Ok(())
    }

    fn rollback(_txn: &Txn<'_>) {
        // Nothing global to undo: reads were invisible, writes stayed in
        // the private write set, and a failed commit already released its
        // locks before returning.
    }
}
