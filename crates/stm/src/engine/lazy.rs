//! The lazy engine: TL2/STO-style commit-time locking.
//!
//! Three departures from the eager protocol:
//!
//! * **Invisible reads.** A reader never registers on the object; it
//!   samples the seqlock-guarded snapshot together with the object's
//!   commit version and remembers `(object, seq)` in a private read set.
//!   No reader-list cache traffic — the scaling bottleneck the eager
//!   engine's visible reads pay for on read-mostly workloads.
//! * **Buffered writes.** Opens for writing build the shadow copy in the
//!   write set and touch nothing global. Write-write conflicts surface
//!   only at commit.
//! * **Commit-time locking.** Commit CASes each written object's seqlock
//!   word even→odd (in object-id order — deadlock-free), re-validates the
//!   read set, derives a write version from the global clock, flips the
//!   status CAS, and writes back.
//!
//! ## Correctness argument (opacity)
//!
//! Every attempt carries a read watermark `rv`: the value of the global
//! version clock ([`super::read_watermark`]) at attempt start — the same
//! clock write versions are derived from. A read is admitted only if the
//! object's version is `≤ rv` *and* the seqlock word was even and
//! unchanged around the sample, i.e. the value is the committed version
//! as of logical time `rv`. So *every* value any attempt — including one
//! that is already doomed — ever observes belongs to the single committed
//! snapshot at its `rv`: zombie reads are consistent by construction, not
//! by enemy-abort discipline as in the eager engine. Commit re-checks
//! each read's seqlock word, which catches both a competitor's committed
//! overwrite (version bump) and the ABA-free in-progress case (word odd);
//! a competitor's *failed* commit leaves the word changed but the value
//! intact, and the re-check accepts it by re-deriving the invariant
//! (word even again + version still `≤ rv`) instead of demanding literal
//! equality — no spurious aborts from neighbours' aborted commits, except
//! the unavoidable seq-parity ambiguity window.
//!
//! ## The version clock rule (GV5/GV4 hybrid)
//!
//! Write versions are *not* one `fetch_add` per commit (TL2's GV1 — a
//! single contended cache line every committer serializes on). They come
//! from [`super::write_version`]`(blind, maxv)`, where `maxv` is the
//! maximum committed version observed over the write set *after locking
//! it* (returned by each `lazy_try_lock` under the held lock):
//!
//! * a **blind-write commit** (empty read set) only *loads* the clock —
//!   zero clock RMWs (GV5);
//! * a **commit with reads** CASes the clock once and on failure *adopts*
//!   the winner's value instead of retrying (GV4 "pass on failure");
//! * either way the result is `max(clock, maxv) + 1`.
//!
//! Two facts replace GV1's global uniqueness in the opacity argument:
//!
//! 1. **Freshness** — `wv` strictly exceeds the clock at the instant the
//!    committer finished taking its locks (see `write_version`). Hence a
//!    reader whose `rv ≥ wv` started *after* all those locks were held
//!    and can only see the locks or the post-write-back values — never a
//!    torn prefix. And because the clock never decreases, a committed
//!    overwrite that happens after a reader's watermark always carries
//!    `wv > rv`: the validation re-derive above stays sound, since a
//!    changed-but-even word whose version is still `≤ rv` can only be the
//!    residue of *failed* commits, never of a committed overwrite.
//! 2. **Per-object monotonicity** — the `maxv + 1` clamp makes stamps
//!    strictly increase per object even when two commits share a clock
//!    value; committers with equal `wv` provably had disjoint write sets.
//!
//! Blind commits may stamp versions *ahead* of the clock. A reader that
//! meets one calls [`super::bump_watermark_to`] and then either extends
//! its watermark in place (read set still empty — restarting would
//! differ only in the watermark) or aborts on `version > rv`, its
//! retry's fresh watermark admitting the value — progress costs one
//! `fetch_max` per failed validation instead of one `fetch_add` per
//! commit.
//!
//! The contention manager is consulted exactly where conflicts become
//! observable: a reader meeting a commit-locked object (read-write), and
//! a committer meeting a locked object (write-write). `AbortEnemy`
//! verdicts work unchanged — killing the lock holder's status CAS makes
//! it fail its own commit and release the locks. A holder that already
//! won its status CAS ignores the kill benignly (the abort CAS fails) and
//! unlocks by finishing its write-back.

use std::sync::Arc;

use super::{Engine, LazyRead};
use crate::cm::ConflictKind;
use crate::tvar::TVar;
use crate::txn::{TxError, TxResult, Txn};
use crate::writeset::WriteEntry;
use crate::TxObject;

/// The TL2/STO-style protocol as an [`Engine`] implementor.
pub(crate) struct LazyEngine;

/// Read the current committed version of `tvar` invisibly, appending it
/// to the read set. Loops while the object is commit-locked, consulting
/// the contention manager against the lock holder.
fn read_committed<T: TxObject>(txn: &mut Txn<'_>, tvar: &TVar<T>) -> TxResult<Arc<T>> {
    loop {
        txn.check_alive()?;
        if let Some((val, seq, version)) = tvar.inner().lazy_read() {
            if version > txn.rv {
                // Committed after our watermark. Raise the clock first:
                // the version may have been stamped by a blind-write
                // commit that ran ahead of the clock without RMWing it
                // (GV5 — see the module docs), and without the bump a
                // fresh watermark would never admit it.
                super::bump_watermark_to(version);
                if txn.reads.is_empty() {
                    // Nothing read yet, so there is nothing this snapshot
                    // could be inconsistent *with*: restarting the attempt
                    // would differ only in its watermark. Take the later
                    // watermark in place (TL2 rv-extension, trivially
                    // valid on an empty read set) and re-read. Buffered
                    // writes are unaffected — they are private until
                    // commit and never compared against `rv`.
                    txn.rv = super::read_watermark();
                    continue;
                }
                // Earlier reads exist: this snapshot may be inconsistent
                // with them. Abort and retry with a fresh watermark.
                txn.state.abort();
                #[cfg(feature = "trace")]
                txn.set_abort_reason(wtm_trace::ABORT_VALIDATION);
                return Err(TxError::Aborted);
            }
            txn.reads.push(LazyRead {
                src: tvar.inner_arc(),
                seq,
            });
            return Ok(val);
        }
        // Commit-locked. Resolve against the holder when the registry can
        // still name it. No nameable holder means either a committer mid
        // write-back (wait it out) or a prior *eager* run's uncollapsed
        // terminal writer, which no one will ever release — fold that
        // ourselves via the mutex path.
        match tvar.inner().lazy_owner() {
            Some(enemy) => txn.handle_conflict(&enemy, ConflictKind::ReadWrite)?,
            None => {
                if !tvar.inner().collapse_eager_leftover() {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Abort `txn` for a failed commit-time read validation.
fn validation_abort(txn: &Txn<'_>) -> TxError {
    txn.state.abort();
    #[cfg(feature = "trace")]
    txn.set_abort_reason(wtm_trace::ABORT_VALIDATION);
    TxError::Aborted
}

/// Lock every write-set entry in object-id order, then re-validate the
/// read set. On success `locked` holds `(entry index, pre-lock seq)` for
/// every entry and the returned value is the maximum committed version
/// over the locked write set (the `maxv` input to
/// [`super::write_version`]); on failure some prefix of `locked` is
/// filled and the caller must unlock it.
fn lock_and_validate(txn: &mut Txn<'_>, locked: &mut Vec<(usize, u64)>) -> TxResult<u64> {
    let mut maxv = 0u64;
    let mut order: Vec<usize> = (0..txn.writes.len()).collect();
    order.sort_unstable_by_key(|&i| txn.writes[i].tvar_id());
    for i in order {
        loop {
            txn.check_alive()?;
            match txn.writes[i].lazy_lock(txn.slot_idx, txn.state.attempt_id) {
                Some((prelock, version)) => {
                    maxv = maxv.max(version);
                    locked.push((i, prelock));
                    break;
                }
                None => match txn.writes[i].lazy_owner() {
                    Some(enemy) => txn.handle_conflict(&enemy, ConflictKind::WriteWrite)?,
                    // Mid write-back (wait) or an eager run's uncollapsed
                    // terminal writer (fold it ourselves — see
                    // `read_committed`).
                    None => {
                        if !txn.writes[i].collapse_eager_leftover() {
                            std::thread::yield_now();
                        }
                    }
                },
            }
        }
    }
    // Read validation, with the whole write set locked: every read must
    // still be the committed version as of our watermark.
    'reads: for r in txn.reads.iter() {
        // An object we also wrote: our own commit lock holds its word odd
        // now, so "unchanged" means "nobody touched it between our read
        // and our lock" — the pre-lock seq must equal the seq we read at.
        for &(i, prelock) in locked.iter() {
            if txn.writes[i].tvar_id() == r.src.source_id() {
                if prelock == r.seq {
                    continue 'reads;
                }
                return Err(validation_abort(txn));
            }
        }
        let s1 = r.src.seq_now();
        if s1 == r.seq {
            continue; // untouched since the read
        }
        if s1 & 1 != 0 {
            // A competitor holds the commit lock; it may be about to
            // overwrite this read. Aborting (rather than waiting it out)
            // keeps validation lock-free.
            return Err(validation_abort(txn));
        }
        // The word moved but is even again: some competitor's commit
        // attempt came and went. Accept iff the value provably still
        // predates our watermark — version unchanged-sandwich re-check.
        let version = r.src.version_now();
        if r.src.seq_now() != s1 {
            return Err(validation_abort(txn));
        }
        if version > txn.rv {
            // Possibly a blind-write stamp ahead of the clock; raise the
            // clock so the retry's watermark admits it (module docs).
            super::bump_watermark_to(version);
            return Err(validation_abort(txn));
        }
    }
    Ok(maxv)
}

impl Engine for LazyEngine {
    fn open_for_read<T: TxObject>(txn: &mut Txn<'_>, tvar: &TVar<T>) -> TxResult<Arc<T>> {
        txn.check_alive()?;
        if let Some(idx) = txn.find_write(tvar.id()) {
            return Ok(txn.writes[idx].read_snapshot::<T>());
        }
        let val = read_committed(txn, tvar)?;
        txn.note_open();
        if let Some(fp) = &mut txn.footprint {
            fp.push((tvar.id(), false));
        }
        #[cfg(debug_assertions)]
        txn.check_read_version(tvar, &val, true);
        Ok(val)
    }

    fn open_for_modify<T: TxObject>(
        txn: &mut Txn<'_>,
        tvar: &TVar<T>,
        mut value: Option<T>,
    ) -> TxResult<usize> {
        txn.check_alive()?;
        if let Some(idx) = txn.find_write(tvar.id()) {
            if let Some(v) = value.take() {
                txn.writes[idx].set_value(v);
            }
            return Ok(idx);
        }
        let entry = match value {
            // A blind write needs no current version — and creates no
            // read-set entry, so a competitor overwriting the object
            // before our commit is *not* a conflict (last-writer-wins,
            // as in TL2).
            Some(v) if WriteEntry::fits_inline::<T>() => WriteEntry::new_inline(tvar.clone(), v),
            Some(v) => WriteEntry::new_boxed(tvar.clone(), Arc::new(v)),
            None => {
                // Open-for-modify bases the shadow on the current version,
                // which is a read: it joins the read set, so commit-time
                // validation catches a competitor racing us to update the
                // same object (no lost updates).
                let cur = read_committed(txn, tvar)?;
                if WriteEntry::fits_inline::<T>() {
                    WriteEntry::new_inline(tvar.clone(), (*cur).clone())
                } else {
                    // Keep the snapshot Arc itself; the first in-place
                    // modification clones through `Arc::make_mut`.
                    WriteEntry::new_boxed(tvar.clone(), cur)
                }
            }
        };
        txn.writes.push(entry);
        txn.note_open();
        if let Some(fp) = &mut txn.footprint {
            fp.push((tvar.id(), true));
        }
        Ok(txn.writes.len() - 1)
    }

    fn commit(txn: &mut Txn<'_>) -> TxResult<()> {
        txn.check_alive()?;
        if txn.writes.len() == 0 {
            // Read-only: every read was validated against the watermark
            // when it happened, so the snapshot is already consistent —
            // only the status CAS (racing enemy aborts) remains.
            return if txn.state.try_commit() {
                Ok(())
            } else {
                Err(TxError::Aborted)
            };
        }
        let mut locked: Vec<(usize, u64)> = Vec::with_capacity(txn.writes.len());
        let outcome = lock_and_validate(txn, &mut locked);
        let committed = match outcome {
            Ok(_) => txn.state.try_commit(),
            Err(_) => false,
        };
        if !committed {
            for &(i, _) in locked.iter() {
                txn.writes[i].lazy_unlock();
            }
            return Err(TxError::Aborted);
        }
        // Past the point of no return: stamp the write version and make
        // every shadow the committed version. Unlocking happens inside
        // the write-back (the final even flip of each object's word).
        // Blind commits (empty read set) take the zero-RMW clock path —
        // see the module docs for why that preserves opacity.
        let wv = super::write_version(txn.reads.is_empty(), outcome.unwrap_or_default());
        for &(i, _) in locked.iter() {
            txn.writes[i].lazy_writeback(wv);
        }
        Ok(())
    }

    fn rollback(_txn: &Txn<'_>) {
        // Nothing global to undo: reads were invisible, writes stayed in
        // the private write set, and a failed commit already released its
        // locks before returning.
    }
}
