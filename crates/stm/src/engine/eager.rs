//! The eager engine: the DSTM2-style protocol the paper measured on.
//!
//! Conflict handling is **eager**: the instant an open discovers a
//! competing active transaction, the contention manager is consulted
//! (outside the object lock) and its verdict applied.
//!
//! Reads take the lock-free path in [`crate::tvar`] first: register in the
//! object's reader-slot word, then clone the seqlock-guarded snapshot. The
//! object mutex is only taken when a writer is installed (the contended
//! case, where the contention manager gets involved anyway) or the thread
//! has no slot. Either way the read is *visible* before the value is
//! returned, so the eager conflict semantics are identical on both paths.
//!
//! ## Correctness argument (opacity)
//!
//! With visible reads, a writer can only install itself on an object with
//! *no other active reader or writer*; it must first wait for, or abort,
//! every conflicting transaction. Therefore while a transaction `R` is
//! active, no competitor can commit a change to any object `R` has read —
//! so every value `R` observed remains part of one consistent committed
//! snapshot, and no re-validation is needed at commit. Commit itself is a
//! single status CAS racing against enemy aborts: exactly one side wins.
//! The fast read path preserves the writer side of this argument through
//! the slot-scan handshake: a reader is globally visible (`SeqCst` slot
//! store) *before* it checks the seqlock word, and a writer flips the
//! seqlock word *before* it scans the slots — so a reader that obtained a
//! snapshot lock-free is always seen by any later writer.

use std::sync::Arc;

use super::Engine;
use crate::cm::ConflictKind;
use crate::tvar::TVar;
use crate::txn::{TxError, TxResult, Txn};
use crate::writeset::WriteEntry;
use crate::TxObject;

/// The original wtm-stm protocol as an [`Engine`] implementor.
pub(crate) struct EagerEngine;

impl Engine for EagerEngine {
    fn open_for_read<T: TxObject>(txn: &mut Txn<'_>, tvar: &TVar<T>) -> TxResult<Arc<T>> {
        txn.check_alive()?;
        if let Some(idx) = txn.find_write(tvar.id()) {
            return Ok(txn.writes[idx].read_snapshot::<T>());
        }
        // Lock-free fast path: slot registration + guarded snapshot clone.
        if let Some(val) = tvar.inner().fast_read(txn.slot_idx, txn.state.attempt_id) {
            // Doomed-reader validation: an enemy writer aborts us *before*
            // committing over our read set, so being Active *after* the
            // snapshot clone proves `val` is consistent with every earlier
            // read. Without this, an abort landing between the entry
            // `check_alive` and the clone lets a doomed transaction mix
            // pre- and post-commit versions (a zombie read).
            txn.check_alive()?;
            txn.note_open();
            if let Some(fp) = &mut txn.footprint {
                fp.push((tvar.id(), false));
            }
            #[cfg(debug_assertions)]
            txn.check_read_version(tvar, &val, true);
            return Ok(val);
        }
        loop {
            txn.check_alive()?;
            let enemy = {
                let mut st = tvar.inner().state.lock();
                match &st.writer {
                    Some(w) if w.is_active() && w.attempt_id != txn.state.attempt_id => {
                        Some(Arc::clone(w))
                    }
                    _ => {
                        if st.writer.is_some() {
                            // Terminal writer: fold its outcome into `old`
                            // and re-arm the fast path for everyone. The
                            // displaced version (and an aborted writer's
                            // orphaned shadow) go to the recycling slot.
                            let cur = st.effective();
                            let prev = std::mem::replace(&mut st.old, cur);
                            let orphan = st.new.take();
                            st.writer = None;
                            tvar.inner().unlock_snapshot(&st.old);
                            st.retire(prev);
                            if let Some(orphan) = orphan {
                                st.retire(orphan);
                            }
                        }
                        let val = Arc::clone(&st.old);
                        tvar.inner()
                            .register_reader_locked(&mut st, txn.slot_idx, &txn.state);
                        drop(st);
                        // Doomed-reader validation (see fast path above): the
                        // entry `check_alive` races with an enemy's abort, so
                        // re-validate now that the value is in hand.
                        txn.check_alive()?;
                        txn.note_open();
                        if let Some(fp) = &mut txn.footprint {
                            fp.push((tvar.id(), false));
                        }
                        #[cfg(debug_assertions)]
                        txn.check_read_version(tvar, &val, false);
                        return Ok(val);
                    }
                }
            };
            if let Some(enemy) = enemy {
                txn.handle_conflict(&enemy, ConflictKind::ReadWrite)?;
            }
        }
    }

    /// Acquire write ownership of `tvar`, resolving write-write and
    /// write-read conflicts through the contention manager.
    fn open_for_modify<T: TxObject>(
        txn: &mut Txn<'_>,
        tvar: &TVar<T>,
        mut value: Option<T>,
    ) -> TxResult<usize> {
        if let Some(idx) = txn.find_write(tvar.id()) {
            if let Some(v) = value {
                txn.writes[idx].set_value(v);
            }
            return Ok(idx);
        }
        loop {
            txn.check_alive()?;
            let conflict = {
                let mut st = tvar.inner().state.lock();
                let writer_enemy = match &st.writer {
                    Some(w) if w.is_active() && w.attempt_id != txn.state.attempt_id => {
                        Some((Arc::clone(w), ConflictKind::WriteWrite))
                    }
                    _ => None,
                };
                match writer_enemy {
                    Some(c) => Some(c),
                    None => {
                        // `seq` is even iff no writer is installed; flip it
                        // odd *before* the reader scan (Dekker handshake)
                        // and keep it odd for our whole ownership. With a
                        // terminal writer still installed it is already
                        // odd from that writer's period — flipping again
                        // would wrongly re-open the fast path.
                        let was_unlocked = st.writer.is_none();
                        if was_unlocked {
                            tvar.inner().lock_snapshot();
                        }
                        match tvar.inner().conflicting_reader(&mut st, &txn.state) {
                            Some(r) => {
                                if was_unlocked {
                                    tvar.inner().unlock_snapshot_unchanged();
                                }
                                Some((r, ConflictKind::WriteRead))
                            }
                            None => {
                                // Clear: collapse any terminal writer, then
                                // install ourselves. With no writer (the
                                // common case) `old` already is the current
                                // version and the collapse dance is skipped.
                                if st.writer.is_some() {
                                    let cur = st.effective();
                                    let prev = std::mem::replace(&mut st.old, cur);
                                    let orphan = st.new.take();
                                    st.retire(prev);
                                    if let Some(orphan) = orphan {
                                        st.retire(orphan);
                                    }
                                }
                                st.writer = Some(Arc::clone(&txn.state));
                                // Only open-for-modify needs the current
                                // version as a clone source; a plain write
                                // overwrites it wholesale.
                                let cur = if value.is_some() {
                                    None
                                } else {
                                    Some(Arc::clone(&st.old))
                                };
                                // Large types spill to a boxed shadow copy;
                                // reuse the retired version's allocation
                                // for it when possible.
                                let spare = if WriteEntry::fits_inline::<T>() {
                                    None
                                } else {
                                    st.take_unshared_spare()
                                };
                                drop(st);
                                let entry = if WriteEntry::fits_inline::<T>() {
                                    let v = match value.take() {
                                        Some(v) => v,
                                        None => (*cur.expect("open-for-modify keeps cur")).clone(),
                                    };
                                    WriteEntry::new_inline(tvar.clone(), v)
                                } else {
                                    let shadow = match spare {
                                        Some(mut a) => {
                                            let slot = Arc::get_mut(&mut a)
                                                .expect("spare taken only when unshared");
                                            match value.take() {
                                                Some(v) => *slot = v,
                                                None => slot.clone_from(
                                                    cur.as_ref()
                                                        .expect("open-for-modify keeps cur"),
                                                ),
                                            }
                                            a
                                        }
                                        None => match value.take() {
                                            Some(v) => Arc::new(v),
                                            None => Arc::new(
                                                (*cur.expect("open-for-modify keeps cur")).clone(),
                                            ),
                                        },
                                    };
                                    WriteEntry::new_boxed(tvar.clone(), shadow)
                                };
                                txn.writes.push(entry);
                                // Doomed-writer validation: if an enemy
                                // aborted us after the entry `check_alive`,
                                // the collapsed `cur` we based the shadow on
                                // may postdate our abort and be inconsistent
                                // with earlier reads. We stay installed as a
                                // terminal writer; readers collapse past us.
                                txn.check_alive()?;
                                txn.note_open();
                                if let Some(fp) = &mut txn.footprint {
                                    fp.push((tvar.id(), true));
                                }
                                return Ok(txn.writes.len() - 1);
                            }
                        }
                    }
                }
            };
            if let Some((enemy, kind)) = conflict {
                txn.handle_conflict(&enemy, kind)?;
            }
        }
    }

    /// Publish shadow copies and attempt the commit CAS.
    fn commit(txn: &mut Txn<'_>) -> TxResult<()> {
        txn.check_alive()?;
        // Single-object write set (the dominant case: counters, single-node
        // structure updates): publish + status CAS + locator collapse fused
        // under ONE acquisition of the object lock. Besides saving two lock
        // rounds, the collapse re-arms the lock-free read path and drops
        // the locator's reference to this attempt, so its `TxState`
        // allocation promptly returns to the pool.
        if txn.writes.len() == 1 {
            return if txn.writes[0].commit_fused(&txn.state) {
                Ok(())
            } else {
                Err(TxError::Aborted)
            };
        }
        // Multi-object: publish every shadow before the status CAS — a
        // competitor that observes `Committed` must find every `new`
        // version in place. The locators are left to collapse lazily at
        // their next access, which amortizes into a lock round that access
        // pays anyway (an eager per-object collapse here costs an *extra*
        // lock + seqlock re-arm per object).
        for w in txn.writes.iter() {
            w.publish(&txn.state);
        }
        if txn.state.try_commit() {
            Ok(())
        } else {
            Err(TxError::Aborted)
        }
    }

    /// Collapse every written locator after this attempt turned terminal
    /// (committed or aborted). No-op per entry if a competitor collapsed
    /// the locator first.
    fn rollback(txn: &Txn<'_>) {
        for w in txn.writes.iter() {
            w.release(&txn.state);
        }
    }
}
