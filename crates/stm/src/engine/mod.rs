//! The engine seam: one transaction API, two concurrency-control
//! protocols.
//!
//! The paper's evaluation ran on a single substrate — eager conflict
//! detection, visible reads, obstruction-free locators (DSTM2). Whether
//! the window-CM ranking *survives a change of substrate* is exactly the
//! question this module makes askable: [`Engine`] carves the four
//! protocol-defining operations (open-for-read, open-for-modify, commit,
//! rollback) out of [`Txn`](crate::txn::Txn), and two implementors plug
//! into the same CM hooks, workloads, and statistics:
//!
//! * [`EagerEngine`](eager::EagerEngine) — the original protocol, moved
//!   here verbatim: visible reads, eager CM consultation at open time,
//!   shadow copies published through the locator status CAS.
//! * [`LazyEngine`](lazy::LazyEngine) — a TL2/STO-style protocol:
//!   invisible reads validated against a read timestamp, writes buffered
//!   privately, per-object commit locks taken only at commit time.
//!
//! Dispatch is monomorphic, mirroring [`CmDispatch`](crate::CmDispatch):
//! `Txn` matches on the run's [`EngineKind`] and calls the chosen
//! implementor's associated functions directly — no trait objects on the
//! hot path. The trait itself exists so the two protocols are held to the
//! same signature (and so a third engine has an obvious shape to fill in).
//!
//! One engine per run: an [`Stm`](crate::Stm) is built for a single
//! `EngineKind`, and a `TVar` must never be driven by both engines
//! concurrently — the lazy commit lock CASes the seqlock word directly,
//! which is only sound against other CAS-based lockers, not against the
//! eager path's mutex-serialized transitions. Sequential reuse (e.g. an
//! eager run followed by a lazy run over the same structures) is fine.

pub(crate) mod eager;
pub(crate) mod lazy;

use std::sync::Arc;

use crate::tvar::{LazySource, TVar};
use crate::txn::{TxResult, Txn};
use crate::TxObject;

/// Which concurrency-control protocol a run uses. An axis of experiment
/// identity, alongside the manager name and thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineKind {
    /// Eager conflict detection, visible reads, obstruction-free locators
    /// (the DSTM2-style substrate the paper measured on).
    #[default]
    Eager,
    /// TL2/STO-style commit-time locking: invisible reads + read-set
    /// validation, write locks only at commit.
    Lazy,
}

impl EngineKind {
    /// Every engine, in presentation order.
    pub const ALL: [EngineKind; 2] = [EngineKind::Eager, EngineKind::Lazy];

    /// Canonical lowercase name (CLI values, results-file identity keys).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Eager => "eager",
            EngineKind::Lazy => "lazy",
        }
    }

    /// Parse a CLI/spec value. Case-insensitive.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "eager" => Some(EngineKind::Eager),
            "lazy" => Some(EngineKind::Lazy),
            _ => None,
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        EngineKind::parse(s).ok_or_else(|| {
            format!(
                "unknown engine {s:?} (expected one of: {})",
                EngineKind::ALL.map(|e| e.name()).join(", ")
            )
        })
    }
}

/// The four protocol-defining operations of a concurrency-control engine.
///
/// Everything else a transaction does — write-set bookkeeping, CM hook
/// invocation, conflict accounting, tracing — is protocol-independent and
/// stays in [`Txn`]; implementors reach it through `Txn`'s `pub(crate)`
/// helpers. Associated functions (not methods) so dispatch from `Txn`
/// monomorphizes completely.
pub(crate) trait Engine {
    /// Open `tvar` for reading; return a stable snapshot consistent with
    /// every earlier read of this attempt.
    fn open_for_read<T: TxObject>(txn: &mut Txn<'_>, tvar: &TVar<T>) -> TxResult<Arc<T>>;

    /// Open `tvar` for writing and return the write-set entry index.
    /// `Some(value)` replaces the object wholesale; `None` bases the
    /// shadow on the current version (open-for-modify).
    fn open_for_modify<T: TxObject>(
        txn: &mut Txn<'_>,
        tvar: &TVar<T>,
        value: Option<T>,
    ) -> TxResult<usize>;

    /// Make the write set visible atomically, or fail with the attempt
    /// aborted.
    fn commit(txn: &mut Txn<'_>) -> TxResult<()>;

    /// Undo any globally visible traces of an aborted attempt.
    fn rollback(txn: &Txn<'_>);
}

/// One validated invisible read of the lazy engine: the source object and
/// the seqlock word observed at read time. Re-checked at commit.
pub(crate) struct LazyRead {
    pub(crate) src: Arc<dyn LazySource>,
    pub(crate) seq: u64,
}

/// The lazy engine's global version clock.
///
/// Process-global, not per-[`Stm`](crate::Stm): objects outlive any single
/// engine (a `TVar` built under one run is routinely reused by the next),
/// and a version stamped from run A's clock must still compare correctly
/// against watermarks taken under run B. Monotonicity across the whole
/// process gives that for free; a per-engine clock would restart at zero
/// and make every carried-over version look like it came from the future.
static VERSION_CLOCK: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// The read watermark for a starting lazy attempt: every version `≤` this
/// value is a committed version "of the past".
pub(crate) fn read_watermark() -> u64 {
    VERSION_CLOCK.load(std::sync::atomic::Ordering::SeqCst)
}

/// A fresh write version for a committing lazy transaction. Strictly
/// greater than any watermark taken before this call.
pub(crate) fn next_write_version() -> u64 {
    VERSION_CLOCK.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_through_parse() {
        for e in EngineKind::ALL {
            assert_eq!(EngineKind::parse(e.name()), Some(e));
            assert_eq!(e.name().parse::<EngineKind>().unwrap(), e);
        }
        assert_eq!(EngineKind::parse("LAZY"), Some(EngineKind::Lazy));
        assert_eq!(EngineKind::parse("tl2"), None);
        assert!("tl2".parse::<EngineKind>().unwrap_err().contains("eager"));
    }

    #[test]
    fn default_is_the_paper_substrate() {
        assert_eq!(EngineKind::default(), EngineKind::Eager);
    }
}
