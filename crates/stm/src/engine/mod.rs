//! The engine seam: one transaction API, two concurrency-control
//! protocols.
//!
//! The paper's evaluation ran on a single substrate — eager conflict
//! detection, visible reads, obstruction-free locators (DSTM2). Whether
//! the window-CM ranking *survives a change of substrate* is exactly the
//! question this module makes askable: [`Engine`] carves the four
//! protocol-defining operations (open-for-read, open-for-modify, commit,
//! rollback) out of [`Txn`](crate::txn::Txn), and two implementors plug
//! into the same CM hooks, workloads, and statistics:
//!
//! * [`EagerEngine`](eager::EagerEngine) — the original protocol, moved
//!   here verbatim: visible reads, eager CM consultation at open time,
//!   shadow copies published through the locator status CAS.
//! * [`LazyEngine`](lazy::LazyEngine) — a TL2/STO-style protocol:
//!   invisible reads validated against a read timestamp, writes buffered
//!   privately, per-object commit locks taken only at commit time.
//!
//! Dispatch is monomorphic, mirroring [`CmDispatch`](crate::CmDispatch):
//! `Txn` matches on the run's [`EngineKind`] and calls the chosen
//! implementor's associated functions directly — no trait objects on the
//! hot path. The trait itself exists so the two protocols are held to the
//! same signature (and so a third engine has an obvious shape to fill in).
//!
//! One engine per run: an [`Stm`](crate::Stm) is built for a single
//! `EngineKind`, and a `TVar` must never be driven by both engines
//! concurrently — the lazy commit lock CASes the seqlock word directly,
//! which is only sound against other CAS-based lockers, not against the
//! eager path's mutex-serialized transitions. Sequential reuse (e.g. an
//! eager run followed by a lazy run over the same structures) is fine.

pub(crate) mod eager;
pub(crate) mod lazy;

use std::sync::Arc;

use crate::tvar::{LazySource, TVar};
use crate::txn::{TxResult, Txn};
use crate::TxObject;

/// Which concurrency-control protocol a run uses. An axis of experiment
/// identity, alongside the manager name and thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineKind {
    /// Eager conflict detection, visible reads, obstruction-free locators
    /// (the DSTM2-style substrate the paper measured on).
    #[default]
    Eager,
    /// TL2/STO-style commit-time locking: invisible reads + read-set
    /// validation, write locks only at commit.
    Lazy,
}

impl EngineKind {
    /// Every engine, in presentation order.
    pub const ALL: [EngineKind; 2] = [EngineKind::Eager, EngineKind::Lazy];

    /// Canonical lowercase name (CLI values, results-file identity keys).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Eager => "eager",
            EngineKind::Lazy => "lazy",
        }
    }

    /// Parse a CLI/spec value. Case-insensitive.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "eager" => Some(EngineKind::Eager),
            "lazy" => Some(EngineKind::Lazy),
            _ => None,
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        EngineKind::parse(s).ok_or_else(|| {
            format!(
                "unknown engine {s:?} (expected one of: {})",
                EngineKind::ALL.map(|e| e.name()).join(", ")
            )
        })
    }
}

/// The four protocol-defining operations of a concurrency-control engine.
///
/// Everything else a transaction does — write-set bookkeeping, CM hook
/// invocation, conflict accounting, tracing — is protocol-independent and
/// stays in [`Txn`]; implementors reach it through `Txn`'s `pub(crate)`
/// helpers. Associated functions (not methods) so dispatch from `Txn`
/// monomorphizes completely.
pub(crate) trait Engine {
    /// Open `tvar` for reading; return a stable snapshot consistent with
    /// every earlier read of this attempt.
    fn open_for_read<T: TxObject>(txn: &mut Txn<'_>, tvar: &TVar<T>) -> TxResult<Arc<T>>;

    /// Open `tvar` for writing and return the write-set entry index.
    /// `Some(value)` replaces the object wholesale; `None` bases the
    /// shadow on the current version (open-for-modify).
    fn open_for_modify<T: TxObject>(
        txn: &mut Txn<'_>,
        tvar: &TVar<T>,
        value: Option<T>,
    ) -> TxResult<usize>;

    /// Make the write set visible atomically, or fail with the attempt
    /// aborted.
    fn commit(txn: &mut Txn<'_>) -> TxResult<()>;

    /// Undo any globally visible traces of an aborted attempt.
    fn rollback(txn: &Txn<'_>);
}

/// One validated invisible read of the lazy engine: the source object and
/// the seqlock word observed at read time. Re-checked at commit.
pub(crate) struct LazyRead {
    pub(crate) src: Arc<dyn LazySource>,
    pub(crate) seq: u64,
}

/// The lazy engine's global version clock.
///
/// Process-global, not per-[`Stm`](crate::Stm): objects outlive any single
/// engine (a `TVar` built under one run is routinely reused by the next),
/// and a version stamped from run A's clock must still compare correctly
/// against watermarks taken under run B. Monotonicity across the whole
/// process gives that for free; a per-engine clock would restart at zero
/// and make every carried-over version look like it came from the future.
static VERSION_CLOCK: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// The read watermark for a starting lazy attempt: every version `≤` this
/// value is a committed version "of the past".
pub(crate) fn read_watermark() -> u64 {
    VERSION_CLOCK.load(std::sync::atomic::Ordering::SeqCst)
}

/// A write version for a committing lazy transaction that holds all its
/// commit locks. Contention-scalable: this is *not* an unconditional
/// `fetch_add` per commit (the classic TL2 GV1 clock, whose single cache
/// line becomes the whole system's serialization point at high thread
/// counts). Instead:
///
/// * **Blind-write commits** (`blind`, empty read set) never RMW the
///   clock at all — GV5-style. The returned version may run *ahead* of
///   the clock; a reader that later meets it aborts on `version > rv`
///   and [`bump_watermark_to`] raises the clock so its retry admits it.
///   Cost moves from every commit to the first conflicting reader —
///   zero shared-line RMWs on disjoint-access write workloads.
/// * **Commits with reads** CAS the clock once and, on contention,
///   *adopt* the observed value instead of retrying (GV4
///   "pass-on-failure"): the winner's bump already proves the clock
///   moved past every watermark taken before our locks were held.
///
/// Either way the result is clamped to `maxv + 1`, where `maxv` is the
/// maximum committed version observed over the write set *after locking
/// it*. That clamp carries the two correctness obligations:
///
/// 1. **Lemma (write-version freshness).** The returned `wv` strictly
///    exceeds the clock value at the instant the committer finished
///    acquiring its locks: every path computes `max(clock_v, maxv) + 1`
///    from a `clock_v` no older than the post-lock clock — the blind
///    load gives `wv ≥ c + 1 > c`, CAS success `wv ≥ cur + 1`, and CAS
///    failure adopts `seen - 1 ≥ cur`, so `wv ≥ seen > cur`.
///    Consequently any reader with `rv ≥ wv` took its watermark *after*
///    this committer held every lock, so it can only observe
///    post-writeback values or the locks themselves — never a torn
///    prefix of the write set. Readers with `rv < wv` reject the new
///    values outright (`version > rv`).
/// 2. **Per-object monotonicity.** `wv ≥ maxv + 1` makes version stamps
///    strictly increase per object even when two commits share a clock
///    value, which is what keeps the validation re-derive rule sound
///    (see `engine::lazy` module docs) and forces any two committers
///    whose write sets intersect onto distinct versions.
pub(crate) fn write_version(blind: bool, maxv: u64) -> u64 {
    use std::sync::atomic::Ordering::SeqCst;
    let clock_v = if blind {
        // Zero RMW: `max(c, maxv) + 1` below keeps freshness (`> c`).
        VERSION_CLOCK.load(SeqCst)
    } else {
        let cur = VERSION_CLOCK.load(SeqCst);
        #[cfg(debug_assertions)]
        crate::probe::count_clock_rmw();
        match VERSION_CLOCK.compare_exchange(cur, cur + 1, SeqCst, SeqCst) {
            // `cur + 1 - 1 = cur` so the clamp below returns `cur + 1`.
            Ok(_) => cur,
            // Pass on failure: the winner bumped past `cur` for us. Both
            // hold their full lock sets at the winner's CAS instant, so
            // equal write versions imply disjoint write sets (an overlap
            // would mean one seqlock held twice) — and the `maxv` clamp
            // separates any later committer that *does* overlap.
            Err(seen) => seen - 1,
        }
    };
    clock_v.max(maxv) + 1
}

/// Raise the clock to at least `v`. Called on `version > rv` aborts:
/// blind-write commits stamp versions ahead of the clock without bumping
/// it, so without this a reader meeting such a version would retry with
/// the same stale watermark forever. One `fetch_max` per *failed*
/// validation instead of one `fetch_add` per commit.
pub(crate) fn bump_watermark_to(v: u64) {
    use std::sync::atomic::Ordering::SeqCst;
    #[cfg(debug_assertions)]
    crate::probe::count_clock_rmw();
    VERSION_CLOCK.fetch_max(v, SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_through_parse() {
        for e in EngineKind::ALL {
            assert_eq!(EngineKind::parse(e.name()), Some(e));
            assert_eq!(e.name().parse::<EngineKind>().unwrap(), e);
        }
        assert_eq!(EngineKind::parse("LAZY"), Some(EngineKind::Lazy));
        assert_eq!(EngineKind::parse("tl2"), None);
        assert!("tl2".parse::<EngineKind>().unwrap_err().contains("eager"));
    }

    #[test]
    fn default_is_the_paper_substrate() {
        assert_eq!(EngineKind::default(), EngineKind::Eager);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn clock_rmw_budget_per_commit_class() {
        use crate::{CmDispatch, Stm, TVar};
        // The probe counter is thread-local, so concurrent tests cannot
        // perturb these deltas.
        let stm = Stm::with_engine(CmDispatch::AbortSelf, 1, EngineKind::Lazy);
        let ctx = stm.thread(0);
        let tv: TVar<u64> = TVar::new(1);
        ctx.atomic(|tx| tx.read(&tv).map(|v| *v)); // warm the attempt pool
        crate::probe::take_clock_rmws();
        for _ in 0..64 {
            ctx.atomic(|tx| tx.read(&tv).map(|v| *v));
        }
        assert_eq!(
            crate::probe::take_clock_rmws(),
            0,
            "read-only lazy commits must perform zero VERSION_CLOCK RMW ops"
        );
        for n in 0..64u64 {
            ctx.atomic(|tx| tx.write(&tv, n));
        }
        assert_eq!(
            crate::probe::take_clock_rmws(),
            0,
            "blind-write lazy commits must perform zero VERSION_CLOCK RMW ops"
        );
        // Read+write commits take exactly one CAS each, plus at most a
        // few watermark bumps re-synchronizing after the blind stamps
        // above ran the object's version ahead of the clock.
        for _ in 0..8 {
            ctx.atomic(|tx| {
                let v = *tx.read(&tv)?;
                tx.write(&tv, v + 1)
            });
        }
        let rmws = crate::probe::take_clock_rmws();
        assert!(
            (8..=16).contains(&rmws),
            "8 read+write commits should cost ~one clock CAS each: {rmws} RMWs"
        );
    }
}
