//! Global logical clock.
//!
//! Contention managers such as Greedy and Priority order transactions by
//! *age*. Wall-clock timestamps are not monotone across threads and too
//! coarse to break ties, so the engine hands out strictly increasing logical
//! timestamps from a single shared counter. One fetch-add per transaction
//! (not per attempt — Greedy requires the timestamp to survive retries) is
//! cheap enough to be invisible next to the cost of an object open.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone counter handing out unique logical timestamps.
#[derive(Debug, Default)]
pub struct LogicalClock(AtomicU64);

impl LogicalClock {
    /// A clock starting at 1 (0 is reserved as "no timestamp").
    pub fn new() -> Self {
        LogicalClock(AtomicU64::new(1))
    }

    /// Next unique timestamp. Strictly increasing across all threads.
    #[inline]
    pub fn next(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }

    /// Current value without advancing (diagnostics only).
    #[inline]
    pub fn peek(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn strictly_increasing_single_thread() {
        let c = LogicalClock::new();
        let a = c.next();
        let b = c.next();
        assert!(b > a);
        assert_eq!(a, 1);
    }

    #[test]
    fn unique_across_threads() {
        let c = Arc::new(LogicalClock::new());
        let per_thread = 2_000;
        let all: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let c = Arc::clone(&c);
                    s.spawn(move || (0..per_thread).map(|_| c.next()).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let set: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(set.len(), 4 * per_thread, "timestamps must be unique");
    }

    #[test]
    fn peek_does_not_advance() {
        let c = LogicalClock::new();
        let p1 = c.peek();
        let p2 = c.peek();
        assert_eq!(p1, p2);
        c.next();
        assert!(c.peek() > p1);
    }
}
