//! Transactional objects and the DSTM locator protocol.
//!
//! Every [`TVar<T>`] owns a *locator*: the triple `(writer, old, new)`.
//! The **current value** of the object is decided by the writer's status:
//!
//! * writer `Committed` → `new` (its shadow copy became the version),
//! * writer `Active` / `Aborted` / absent → `old`.
//!
//! Acquiring an object for writing *collapses* the locator first (folds the
//! previous writer's outcome into `old`) and then installs the acquiring
//! transaction as `writer` with a fresh shadow copy. Because a
//! transaction's fate is decided by one status CAS (see
//! [`crate::status`]), this interpretation is race-free: whoever reads the
//! locator after the CAS sees the right version.
//!
//! Reads are **visible**: readers enroll on the object, so writers discover
//! read-write conflicts eagerly — the configuration the paper uses
//! ("default shadow factory and visible reads", §III).
//!
//! ## The lock-free read path
//!
//! Uncontended reads — the overwhelming majority in the paper's read-mostly
//! workloads — never touch the object mutex. Two pieces make that work:
//!
//! * **Reader slots.** Each object carries one atomic word per global
//!   thread-slot index (see [`crate::slots`]). A reader registers by
//!   storing its attempt id into its own word: one `SeqCst` store replaces
//!   the old lock + `Vec<Weak>` enrollment. A writer scans the words after
//!   raising `seq` (below); the `SeqCst` store/scan pair is a Dekker-style
//!   handshake — either the reader observes the writer's odd `seq` and
//!   falls back to the mutex, or the writer's scan observes the reader's
//!   slot and reports the conflict. Slot words hold plain ids; liveness is
//!   decided against the registry, and because attempt ids are never
//!   reused a stale word can never impersonate a live reader. Threads
//!   without a slot (bitmap exhausted, or the object's array was sized
//!   before the thread appeared) use the mutex-protected overflow list —
//!   slower, never wrong.
//!
//! * **A guarded seqlock snapshot.** `seq` is even exactly while no writer
//!   is installed, and then `snapshot` points at the same version as the
//!   locator's `old` (the cell owns one strong count of it). A fast read
//!   checks `seq`, raises `guards`, re-checks `seq`, and only then clones
//!   the snapshot `Arc`. A writer flips `seq` odd *before* it may swap the
//!   snapshot and spins until `guards` drains to zero, so it can never
//!   drop the strong count a reader is in the middle of cloning (a plain
//!   seqlock retry-loop would: `Arc::clone` dereferences the count). The
//!   odd period lasts for the writer's whole ownership; the next
//!   locator-collapse restores the even state.
//!
//! Lock discipline: each object has one short `parking_lot::Mutex`; the
//! engine never calls a contention manager, blocks, or takes another
//! object's lock while holding it. `lock_snapshot`/`unlock_snapshot` are
//! only called with the object mutex held, so `seq` transitions are
//! serialized.

use std::any::Any;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use crate::slots;
use crate::status::TxStatus;
use crate::txstate::TxState;
use crate::TxObject;

/// Engine-global id source for transactional objects. Handed out to
/// threads in blocks of [`TVAR_ID_BLOCK`] (see [`next_tvar_id`]) so
/// object-allocation-heavy workloads don't all RMW one cache line.
static NEXT_TVAR_ID: AtomicU64 = AtomicU64::new(1);

/// Ids per thread-local block. Commit-time lock ordering sorts by id, so
/// ids need only be unique, not dense or globally ordered by creation.
const TVAR_ID_BLOCK: u64 = 1 << 10;

thread_local! {
    /// `(next, end)` of this thread's current id block; empty when equal.
    static TVAR_ID_CURSOR: std::cell::Cell<(u64, u64)> = const { std::cell::Cell::new((0, 0)) };
}

/// A fresh process-unique object id. One shared `fetch_add` per
/// [`TVAR_ID_BLOCK`] allocations per thread, amortizing the shared-line
/// RMW the same way attempt ids do (`slots::NEXT_ATTEMPT_BLOCK`).
fn next_tvar_id() -> u64 {
    TVAR_ID_CURSOR.with(|c| {
        let (next, end) = c.get();
        if next < end {
            c.set((next + 1, end));
            return next;
        }
        let start = NEXT_TVAR_ID.fetch_add(TVAR_ID_BLOCK, Ordering::Relaxed);
        c.set((start + 1, start + TVAR_ID_BLOCK));
        start
    })
}

/// A transactional object holding values of type `T`.
///
/// Cloning a `TVar` clones the *handle*, not the value: both handles refer
/// to the same object (like `Arc`).
pub struct TVar<T: TxObject> {
    inner: Arc<TVarInner<T>>,
}

impl<T: TxObject> Clone for TVar<T> {
    fn clone(&self) -> Self {
        TVar {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: TxObject + std::fmt::Debug> std::fmt::Debug for TVar<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TVar").field("id", &self.inner.id).finish()
    }
}

pub(crate) struct TVarInner<T: TxObject> {
    pub(crate) id: u64,
    /// Seqlock word: even ⇔ no writer installed ∧ `snapshot` matches the
    /// locator's `old`. Flipped only under the object mutex.
    seq: AtomicU64,
    /// Number of fast readers currently between their `seq` re-check and
    /// the completion of their snapshot clone. A writer drains this to
    /// zero right after flipping `seq` odd.
    guards: AtomicU64,
    /// One owned strong count of the version fast readers clone.
    /// Valid (never null) for the whole life of the object.
    snapshot: AtomicPtr<T>,
    /// One reader-registration word per global thread-slot index
    /// (0 = empty, otherwise the attempt id of a — possibly finished —
    /// reader). Sized at creation from [`slots::slot_capacity`].
    reader_slots: Box<[AtomicU64]>,
    /// Lazy engine: version stamp of the committed value — the write
    /// version of the transaction that installed it (0 = initial value).
    /// Compared against read watermarks; see [`crate::engine::lazy`].
    version: AtomicU64,
    /// Lazy engine: reader-slot index of the commit-lock holder, for
    /// enemy lookup through the attempt registry.
    owner_slot: AtomicU64,
    /// Lazy engine: attempt id of the commit-lock holder (0 = unlocked or
    /// mid write-back).
    owner_attempt: AtomicU64,
    pub(crate) state: Mutex<ObjState<T>>,
}

impl<T: TxObject> Drop for TVarInner<T> {
    fn drop(&mut self) {
        // Release the snapshot cell's strong count.
        let p = *self.snapshot.get_mut();
        // SAFETY: `snapshot` always holds a pointer produced by
        // `Arc::into_raw` whose count the cell owns.
        unsafe { drop(Arc::from_raw(p)) };
    }
}

/// A registered visible reader on the overflow list.
pub(crate) struct ReaderEntry {
    pub(crate) attempt_id: u64,
    pub(crate) tx: Weak<TxState>,
}

/// The locator plus the overflow reader list, all behind the object lock.
pub(crate) struct ObjState<T: TxObject> {
    pub(crate) writer: Option<Arc<TxState>>,
    pub(crate) old: Arc<T>,
    pub(crate) new: Option<Arc<T>>,
    /// Visible readers without a fast-path slot. Rare; pruned on access.
    pub(crate) readers: Vec<ReaderEntry>,
    /// A retired version kept for recycling: locator collapses stash the
    /// displaced `Arc` here (when its strong count has dropped to one) and
    /// the next publish reuses the allocation via `Arc::get_mut` +
    /// `clone_from` instead of `Arc::new`. Purely an allocation cache —
    /// never read as a value.
    pub(crate) spare: Option<Arc<T>>,
}

impl<T: TxObject> ObjState<T> {
    /// The currently visible version per the locator rule.
    pub(crate) fn effective(&self) -> Arc<T> {
        match &self.writer {
            Some(w) if w.status() == TxStatus::Committed => self
                .new
                .clone()
                .expect("committed writer must have published its shadow"),
            _ => Arc::clone(&self.old),
        }
    }

    /// Drop overflow entries whose transactions are no longer active.
    pub(crate) fn prune_readers(&mut self) {
        self.readers.retain(|r| {
            r.tx.upgrade()
                .is_some_and(|tx| tx.status() == TxStatus::Active)
        });
    }

    /// Register `tx` on the overflow list (idempotent per attempt).
    pub(crate) fn register_reader(&mut self, tx: &Arc<TxState>) {
        self.prune_readers();
        if !self.readers.iter().any(|r| r.attempt_id == tx.attempt_id) {
            self.readers.push(ReaderEntry {
                attempt_id: tx.attempt_id,
                tx: Arc::downgrade(tx),
            });
        }
    }

    /// Stash a version `Arc` displaced by a locator collapse for later
    /// recycling, if the cache is empty and the `Arc` is not an alias of
    /// the surviving version. (An `Arc` still shared with readers is fine
    /// to stash — `Arc::get_mut` at recycle time refuses it.)
    #[inline]
    pub(crate) fn retire(&mut self, prev: Arc<T>) {
        if self.spare.is_none() && !Arc::ptr_eq(&prev, &self.old) {
            self.spare = Some(prev);
        }
    }

    /// Take the spare version `Arc` for recycling if it is unshared; used
    /// by the boxed write path to build its shadow copy without a fresh
    /// allocation.
    #[inline]
    pub(crate) fn take_unshared_spare(&mut self) -> Option<Arc<T>> {
        match self.spare.take() {
            Some(a) if Arc::strong_count(&a) == 1 => Some(a),
            _ => None,
        }
    }

    /// First active overflow reader that is not `me`, if any.
    fn conflicting_overflow_reader(&mut self, me: &TxState) -> Option<Arc<TxState>> {
        self.prune_readers();
        self.readers
            .iter()
            .filter(|r| r.attempt_id != me.attempt_id)
            .find_map(|r| r.tx.upgrade().filter(|tx| tx.status() == TxStatus::Active))
    }
}

impl<T: TxObject> TVarInner<T> {
    /// Lock-free read attempt for the reader on slot `slot_idx` running
    /// attempt `attempt_id`. Registers the reader and, if no writer is
    /// installed, returns the current version. `None` means "take the
    /// mutex path" (writer installed, snapshot mid-swap, or no slot).
    #[inline]
    pub(crate) fn fast_read(&self, slot_idx: usize, attempt_id: u64) -> Option<Arc<T>> {
        let slot = self.reader_slots.get(slot_idx)?;
        // Register. Skipping the store when our id is already in place is
        // sound: the first store performed the Dekker handshake, and the
        // word can only have been overwritten by a *later* event that a
        // writer's scan orders correctly anyway.
        if slot.load(Ordering::Relaxed) != attempt_id {
            slot.store(attempt_id, Ordering::SeqCst);
        }
        let s = self.seq.load(Ordering::SeqCst);
        if s & 1 != 0 {
            return None; // writer installed → mutex path
        }
        self.guards.fetch_add(1, Ordering::SeqCst);
        let result = if self.seq.load(Ordering::SeqCst) == s {
            let p = self.snapshot.load(Ordering::Acquire);
            // SAFETY: `seq` was even at the re-check while our guard was
            // raised, so any writer that wants to swap/drop the snapshot
            // is still spinning on `guards` — the pointee and its strong
            // count stay alive until our `fetch_sub` below.
            unsafe {
                Arc::increment_strong_count(p);
                Some(Arc::from_raw(p))
            }
        } else {
            None
        };
        self.guards.fetch_sub(1, Ordering::SeqCst);
        result
    }

    /// Begin a writer period: flip `seq` odd and wait out in-flight fast
    /// readers. Caller must hold the object mutex and `seq` must be even
    /// (i.e. no writer currently installed).
    pub(crate) fn lock_snapshot(&self) {
        self.seq.fetch_add(1, Ordering::SeqCst);
        while self.guards.load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
    }

    /// End a writer period: point the snapshot at `val` (the locator's
    /// freshly collapsed `old`) and flip `seq` back to even. Caller must
    /// hold the object mutex and `seq` must be odd.
    pub(crate) fn unlock_snapshot(&self, val: &Arc<T>) {
        let fresh = Arc::into_raw(Arc::clone(val)).cast_mut();
        let prev = self.snapshot.swap(fresh, Ordering::AcqRel);
        // SAFETY: guards drained to zero when this odd period began and
        // fast readers re-checking `seq` while it is odd never touch the
        // pointer, so nobody else can be cloning `prev` now.
        unsafe { drop(Arc::from_raw(prev)) };
        self.seq.fetch_add(1, Ordering::SeqCst);
    }

    /// Abandon a just-started writer period without having installed a
    /// writer (conflict found): flip `seq` back to even, snapshot intact.
    pub(crate) fn unlock_snapshot_unchanged(&self) {
        self.seq.fetch_add(1, Ordering::SeqCst);
    }

    /// First live reader that is not `me`: scans the slot words of
    /// *currently allocated* slot indices, then the overflow list. Caller
    /// must hold the object mutex, and — for the Dekker handshake with
    /// [`Self::fast_read`] — must have flipped `seq` odd first.
    /// Verifiably stale slot words are cleared along the way.
    ///
    /// The scan iterates set bits of the global allocation shard masks
    /// ([`slots::shard_mask`]): one `SeqCst` load decides 64 indices, so
    /// the cost is O(active threads), not O(capacity).
    ///
    /// ## Why filtering by mask preserves the Dekker handshake
    ///
    /// A word at an *unallocated* index may be skipped unread: its value
    /// was stored by an attempt of a thread that has since freed the
    /// index, and that thread unpublished (cleared `current`) before
    /// freeing — with ids never reused, no attempt of a freed index can
    /// ever be live again. The racy direction is a reader whose bit the
    /// scan *misses*: the reader's order is mask CAS `M` (its thread's
    /// slot allocation) → slot-word store `W` → `seq` load `L`; the
    /// writer's is `seq` flip `F` (odd) → mask load `LM` → word loads.
    /// All `SeqCst`. If `LM` misses the bit, `LM <S M` in the SC total
    /// order, so `F <S LM <S M <S W <S L` — the reader's `seq` check
    /// observes the odd word (the word stays odd for the writer's whole
    /// ownership) and declines the fast path; it then registers through
    /// the mutex this writer is holding, and is found by a later scan or
    /// blocks until the writer is done. Either the writer sees the
    /// reader, or the reader sees the writer — never neither.
    pub(crate) fn conflicting_reader(
        &self,
        st: &mut ObjState<T>,
        me: &TxState,
    ) -> Option<Arc<TxState>> {
        let cap = self.reader_slots.len();
        let shards = cap.div_ceil(slots::SHARD_SLOTS).min(slots::SLOT_SHARDS);
        for s in 0..shards {
            let mut mask = slots::shard_mask(s);
            let base = s << slots::SHARD_BITS;
            if cap - base < slots::SHARD_SLOTS {
                // Indices beyond this object's array have no words here
                // (those readers use the overflow list).
                mask &= (1u64 << (cap - base)) - 1;
            }
            while mask != 0 {
                let bit = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let idx = base | bit;
                #[cfg(debug_assertions)]
                crate::probe::count_reader_slot_load();
                let slot = &self.reader_slots[idx];
                let a = slot.load(Ordering::SeqCst);
                if a == 0 || a == me.attempt_id {
                    continue;
                }
                match slots::live_reader(idx, a) {
                    Some(tx) if tx.is_active() => return Some(tx),
                    _ => {
                        // Attempt `a` is over (or no longer on this slot):
                        // clear the word so future scans stay cheap. CAS
                        // so a newly arrived reader's store is never
                        // wiped.
                        let _ = slot.compare_exchange(a, 0, Ordering::SeqCst, Ordering::SeqCst);
                    }
                }
            }
        }
        st.conflicting_overflow_reader(me)
    }

    /// Diagnostic snapshot of the hot-path state for opacity-violation
    /// reports (debug builds only).
    #[cfg(debug_assertions)]
    pub(crate) fn debug_dump(&self, slot_idx: usize, attempt_id: u64) -> String {
        let seq = self.seq.load(Ordering::SeqCst);
        let word = self
            .reader_slots
            .get(slot_idx)
            .map(|s| s.load(Ordering::SeqCst));
        let live = slots::live_reader(slot_idx, attempt_id).map(|tx| tx.is_active());
        let st = self.state.try_lock().map(|st| {
            (
                st.writer
                    .as_ref()
                    .map(|w| (w.attempt_id, format!("{:?}", w.status()))),
                st.readers.len(),
            )
        });
        format!(
            "seq={seq} my_word={word:?} my_registry_live={live:?} locator={st:?} \
             slot_idx={slot_idx} attempt={attempt_id}"
        )
    }

    /// Fold `me`'s terminal outcome into the locator, if `me` is still the
    /// installed writer. Called by the owner itself right after its status
    /// CAS on the *abort* rollback path: committed → `new` becomes the
    /// version; aborted → `old` stays. Collapsing eagerly (instead of
    /// leaving it to the next accessor) re-arms the lock-free read path
    /// immediately and drops the locator's `TxState` reference, so the
    /// attempt's allocation is recyclable by the very next transaction.
    /// (Multi-object *commits* skip this and leave the collapse to the
    /// next accessor — see `Txn::commit` — because an extra lock round per
    /// object costs more than lazy collapse does.)
    ///
    /// Races are benign: a competitor that collapses first (its own
    /// read/acquire path folds terminal writers too) leaves `writer` empty
    /// and this becomes a no-op.
    pub(crate) fn collapse_terminal(&self, me: &TxState) {
        let mut st = self.state.lock();
        let mine = st
            .writer
            .as_ref()
            .is_some_and(|w| w.attempt_id == me.attempt_id);
        if !mine {
            return;
        }
        debug_assert!(me.status() != TxStatus::Active);
        let cur = st.effective();
        let prev = std::mem::replace(&mut st.old, cur);
        let orphan = st.new.take();
        st.writer = None;
        self.unlock_snapshot(&st.old);
        st.retire(prev);
        if let Some(orphan) = orphan {
            st.retire(orphan);
        }
    }

    /// Single-object commit, fused: publish `value`, decide the
    /// transaction's fate with its status CAS, and collapse the locator —
    /// all under one acquisition of the object lock. Only sound when this
    /// object is the transaction's *entire* write set: the status CAS is
    /// what makes multi-object commits atomic, so a multi-entry write set
    /// must stage every `new` version before the CAS (the two-pass path).
    ///
    /// Returns the CAS verdict (`true` = committed). On `false` (an enemy
    /// aborted us first) the locator is left untouched; the abort path's
    /// rollback collapses it.
    pub(crate) fn commit_value_fused(&self, value: &T, me: &TxState) -> bool {
        let mut st = self.state.lock();
        let still_owner = st
            .writer
            .as_ref()
            .is_some_and(|w| w.attempt_id == me.attempt_id);
        if !still_owner {
            // Only a terminal writer can be collapsed past, so we were
            // already aborted; the CAS below just confirms it.
            return me.try_commit();
        }
        if !me.try_commit() {
            return false;
        }
        // Committed while holding the lock: install the value directly as
        // the current version (recycling the retired version's allocation)
        // and re-arm the lock-free read path.
        let arc = match st.spare.take() {
            Some(mut a) => match Arc::get_mut(&mut a) {
                Some(slot) => {
                    slot.clone_from(value);
                    a
                }
                None => Arc::new(value.clone()),
            },
            None => Arc::new(value.clone()),
        };
        let prev = std::mem::replace(&mut st.old, arc);
        st.new = None;
        st.writer = None;
        self.unlock_snapshot(&st.old);
        st.retire(prev);
        true
    }

    /// Commit-time publish of an inline write-set value: install `value`
    /// as the locator's `new` version iff `me` still owns the object,
    /// recycling the spare version `Arc` when it is unshared so the
    /// steady-state publish performs no heap allocation.
    pub(crate) fn publish_value(&self, value: &T, me: &TxState) {
        let mut st = self.state.lock();
        let still_owner = st
            .writer
            .as_ref()
            .is_some_and(|w| w.attempt_id == me.attempt_id);
        if !still_owner {
            return;
        }
        let arc = match st.spare.take() {
            Some(mut a) => match Arc::get_mut(&mut a) {
                Some(slot) => {
                    slot.clone_from(value);
                    a
                }
                // Still shared with a reader snapshot: give up on this one
                // (dropping it sheds our count) and allocate.
                None => Arc::new(value.clone()),
            },
            None => Arc::new(value.clone()),
        };
        st.new = Some(arc);
    }

    /// Register a reader through the mutex path (no slot, or fast path
    /// declined). Caller must hold the object mutex.
    pub(crate) fn register_reader_locked(
        &self,
        st: &mut ObjState<T>,
        slot_idx: usize,
        tx: &Arc<TxState>,
    ) {
        if let Some(slot) = self.reader_slots.get(slot_idx) {
            if slot.load(Ordering::Relaxed) != tx.attempt_id {
                slot.store(tx.attempt_id, Ordering::SeqCst);
            }
        } else {
            st.register_reader(tx);
        }
    }
}

/// Lazy-engine protocol primitives (see [`crate::engine::lazy`]).
///
/// These repurpose the seqlock word as the per-object **commit lock**:
/// the committer CASes it even→odd directly instead of flipping it under
/// the object mutex. That CAS is only sound against other CAS-based
/// lockers — which is why one `TVar` must never be driven by the eager
/// and the lazy engine concurrently (the eager engine's transitions are
/// serialized by the mutex, not the word itself). Sequential reuse across
/// runs is supported, but takes one extra step: eager multi-object
/// commits deliberately leave the locator uncollapsed (word odd, terminal
/// writer installed) for the *next accessor's* mutex path to fold — see
/// [`Self::collapse_terminal`]. A lazy accessor that meets such a word
/// has no eager acquire path to do the folding, so it calls
/// [`Self::collapse_eager_leftover`] instead of waiting for an owner
/// that will never release.
impl<T: TxObject> TVarInner<T> {
    /// Invisible read: the committed value plus the seqlock word and
    /// version it was sampled at, all mutually consistent. `None` while a
    /// committer holds the object (word odd) or on a transient word
    /// change — the caller loops.
    #[inline]
    pub(crate) fn lazy_read(&self) -> Option<(Arc<T>, u64, u64)> {
        let s = self.seq.load(Ordering::SeqCst);
        if s & 1 != 0 {
            return None;
        }
        self.guards.fetch_add(1, Ordering::SeqCst);
        let result = if self.seq.load(Ordering::SeqCst) == s {
            let version = self.version.load(Ordering::SeqCst);
            let p = self.snapshot.load(Ordering::Acquire);
            // SAFETY: as in `fast_read` — the word was even at the
            // re-check while our guard was raised, so a committer that
            // wants to swap/drop the snapshot is still draining `guards`;
            // and it stores `version` only after that drain, so the
            // version we just loaded belongs to this snapshot.
            unsafe {
                Arc::increment_strong_count(p);
                Some((Arc::from_raw(p), s, version))
            }
        } else {
            None
        };
        self.guards.fetch_sub(1, Ordering::SeqCst);
        result
    }

    /// Try to take the commit lock for attempt `attempt_id` running on
    /// reader slot `slot_idx`. On success returns the pre-lock seqlock
    /// word (for own-write read validation) and the object's committed
    /// version, with all in-flight guarded readers drained; `None` means
    /// the word is odd (a competitor holds the lock) or moved under the
    /// CAS. The version is loaded *under the held lock*, so the maximum
    /// over a locked write set is exactly the `maxv` input that
    /// [`crate::engine::write_version`] needs for its per-object
    /// monotonicity clamp.
    pub(crate) fn lazy_try_lock(&self, slot_idx: usize, attempt_id: u64) -> Option<(u64, u64)> {
        let s = self.seq.load(Ordering::SeqCst);
        if s & 1 != 0 {
            return None;
        }
        if self
            .seq
            .compare_exchange(s, s + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return None;
        }
        // Advertise ownership before the drain so a reader that hits the
        // odd word can resolve us through the registry right away.
        self.owner_slot.store(slot_idx as u64, Ordering::SeqCst);
        self.owner_attempt.store(attempt_id, Ordering::SeqCst);
        while self.guards.load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
        Some((s, self.version.load(Ordering::SeqCst)))
    }

    /// The current commit-lock holder, if it is still a live registered
    /// attempt. `None` also covers "mid write-back" and "owner on an
    /// overflow slot" — callers just wait those out.
    pub(crate) fn lazy_owner(&self) -> Option<Arc<TxState>> {
        let attempt = self.owner_attempt.load(Ordering::SeqCst);
        if attempt == 0 {
            return None;
        }
        let slot = self.owner_slot.load(Ordering::SeqCst) as usize;
        // Attempt ids are never reused, so a racing owner change at worst
        // yields an id the registry no longer maps — `None`, never a
        // wrong transaction.
        slots::live_reader(slot, attempt).filter(|tx| tx.is_active())
    }

    /// Fold an eager engine's *leftover* terminal writer into the locator
    /// and re-arm the word. Eager multi-object commits leave the locator
    /// uncollapsed (word odd, terminal writer installed) for the next
    /// accessor's eager mutex path to fold; a lazy accessor meeting that
    /// word would otherwise wait forever for a lock holder that no longer
    /// exists. Returns `true` if a leftover was collapsed (the word is now
    /// even), `false` if there was nothing to collapse — the word is odd
    /// for some other reason (a real lazy commit lock, or an *active*
    /// eager writer, which unsupported concurrent cross-engine use would
    /// produce) and the caller should keep waiting.
    pub(crate) fn collapse_eager_leftover(&self) -> bool {
        let mut st = self.state.lock();
        match &st.writer {
            Some(w) if !w.is_active() => {}
            _ => return false,
        }
        let cur = st.effective();
        let prev = std::mem::replace(&mut st.old, cur);
        let orphan = st.new.take();
        st.writer = None;
        self.unlock_snapshot(&st.old);
        st.retire(prev);
        if let Some(orphan) = orphan {
            st.retire(orphan);
        }
        true
    }

    /// Release the commit lock without having written (failed commit):
    /// value, snapshot, and version stay; the word flips back to even.
    pub(crate) fn lazy_unlock(&self) {
        self.owner_attempt.store(0, Ordering::SeqCst);
        self.seq.fetch_add(1, Ordering::SeqCst);
    }

    /// Commit-time write-back under the held commit lock: install `value`
    /// as the committed version, stamp write version `wv`, and release
    /// the lock. The version store precedes the final even flip, so any
    /// reader that samples the new snapshot also sees `wv`.
    pub(crate) fn lazy_writeback_value(&self, value: &T, wv: u64) {
        let mut st = self.state.lock();
        let arc = match st.spare.take() {
            Some(mut a) => match Arc::get_mut(&mut a) {
                Some(slot) => {
                    slot.clone_from(value);
                    a
                }
                None => Arc::new(value.clone()),
            },
            None => Arc::new(value.clone()),
        };
        self.finish_writeback(&mut st, arc, wv);
    }

    /// As [`Self::lazy_writeback_value`], for a boxed shadow: the shadow
    /// `Arc` itself becomes the committed version (no clone).
    pub(crate) fn lazy_writeback_arc(&self, shadow: &Arc<T>, wv: u64) {
        let mut st = self.state.lock();
        let arc = Arc::clone(shadow);
        self.finish_writeback(&mut st, arc, wv);
    }

    fn finish_writeback(&self, st: &mut ObjState<T>, arc: Arc<T>, wv: u64) {
        let prev = std::mem::replace(&mut st.old, arc);
        st.new = None;
        self.version.store(wv, Ordering::SeqCst);
        self.owner_attempt.store(0, Ordering::SeqCst);
        self.unlock_snapshot(&st.old);
        st.retire(prev);
    }
}

/// Type-erased view of a [`TVarInner`] for the lazy engine's read set:
/// commit-time validation needs the identity, seqlock word, and version of
/// each read object, but not its value type.
pub(crate) trait LazySource: Send + Sync {
    /// The object's id.
    fn source_id(&self) -> u64;
    /// Current seqlock word.
    fn seq_now(&self) -> u64;
    /// Current committed-version stamp.
    fn version_now(&self) -> u64;
}

impl<T: TxObject> LazySource for TVarInner<T> {
    fn source_id(&self) -> u64 {
        self.id
    }

    fn seq_now(&self) -> u64 {
        self.seq.load(Ordering::SeqCst)
    }

    fn version_now(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }
}

impl<T: TxObject> TVar<T> {
    /// Create a new transactional object with initial value `value`.
    pub fn new(value: T) -> Self {
        Self::with_slot_count(value, slots::slot_capacity())
    }

    /// Test-only: a TVar whose fast-path slot array has exactly
    /// `slot_count` entries regardless of the global capacity. Threads
    /// with higher slot indices are forced onto the mutex/overflow path,
    /// which is what production code hits when the thread count exceeds
    /// the slot capacity a TVar was created under.
    #[cfg(test)]
    pub(crate) fn new_with_slots_for_test(value: T, slot_count: usize) -> Self {
        Self::with_slot_count(value, slot_count)
    }

    fn with_slot_count(value: T, slot_count: usize) -> Self {
        let old = Arc::new(value);
        let snapshot = Arc::into_raw(Arc::clone(&old)).cast_mut();
        TVar {
            inner: Arc::new(TVarInner {
                id: next_tvar_id(),
                seq: AtomicU64::new(0),
                guards: AtomicU64::new(0),
                snapshot: AtomicPtr::new(snapshot),
                reader_slots: (0..slot_count).map(|_| AtomicU64::new(0)).collect(),
                version: AtomicU64::new(0),
                owner_slot: AtomicU64::new(0),
                owner_attempt: AtomicU64::new(0),
                state: Mutex::new(ObjState {
                    writer: None,
                    old,
                    new: None,
                    readers: Vec::new(),
                    spare: None,
                }),
            }),
        }
    }

    /// Unique id of the object.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Non-transactional peek at the current committed version.
    ///
    /// Safe at any time but only *meaningful* when no transaction is
    /// mutating the object (e.g. validation between experiment phases).
    /// Takes the lock-free snapshot when no writer is installed.
    pub fn sample(&self) -> Arc<T> {
        let inner = &*self.inner;
        let s = inner.seq.load(Ordering::SeqCst);
        if s & 1 == 0 {
            inner.guards.fetch_add(1, Ordering::SeqCst);
            let r = if inner.seq.load(Ordering::SeqCst) == s {
                let p = inner.snapshot.load(Ordering::Acquire);
                // SAFETY: same argument as in `fast_read`.
                unsafe {
                    Arc::increment_strong_count(p);
                    Some(Arc::from_raw(p))
                }
            } else {
                None
            };
            inner.guards.fetch_sub(1, Ordering::SeqCst);
            if let Some(v) = r {
                return v;
            }
        }
        inner.state.lock().effective()
    }

    /// Non-transactional replacement of the value. Intended for
    /// initialization and between-run resets; it discards any in-flight
    /// writer by overwriting the locator wholesale and wipes all reader
    /// registrations (in-flight readers are *not* aborted — don't race
    /// this against live transactions).
    pub fn store_direct(&self, value: T) {
        let inner = &*self.inner;
        let mut st = inner.state.lock();
        if st.writer.is_none() {
            // No writer installed ⇒ seq currently even; claim the odd
            // period ourselves. (With a writer installed seq is already
            // odd from its acquire — unlock below folds both cases.)
            inner.lock_snapshot();
        }
        st.writer = None;
        st.old = Arc::new(value);
        st.new = None;
        st.spare = None;
        st.readers.clear();
        for slot in inner.reader_slots.iter() {
            slot.store(0, Ordering::SeqCst);
        }
        inner.unlock_snapshot(&st.old);
    }

    pub(crate) fn inner(&self) -> &TVarInner<T> {
        &self.inner
    }

    /// The inner object as a type-erased lazy-validation source (clones
    /// the handle `Arc`).
    pub(crate) fn inner_arc(&self) -> Arc<dyn LazySource> {
        Arc::clone(&self.inner) as Arc<dyn LazySource>
    }

    /// Number of currently *live* registered readers — diagnostics only.
    pub fn reader_count(&self) -> usize {
        let inner = &*self.inner;
        let mut st = inner.state.lock();
        let live_slots = inner
            .reader_slots
            .iter()
            .enumerate()
            .filter(|(idx, slot)| {
                let a = slot.load(Ordering::SeqCst);
                a != 0 && slots::live_reader(*idx, a).is_some_and(|tx| tx.is_active())
            })
            .count();
        st.prune_readers();
        live_slots + st.readers.len()
    }
}

impl<T: TxObject + Default> Default for TVar<T> {
    fn default() -> Self {
        TVar::new(T::default())
    }
}

// ---------------------------------------------------------------------------
// Type-erased write-set entries
// ---------------------------------------------------------------------------

/// A write-set entry, type-erased so one list can hold writes to objects
/// of different types.
pub(crate) trait ErasedWrite: Send {
    /// Install the shadow copy as the locator's `new` version, iff the
    /// committing transaction still owns the object.
    fn publish(&self, me: &TxState);
    /// Fold `me`'s terminal outcome into the locator
    /// ([`TVarInner::collapse_terminal`]).
    fn release(&self, me: &TxState);
    /// Single-entry fused commit ([`TVarInner::commit_value_fused`]):
    /// publish + status CAS + collapse under one object lock. Only called
    /// when this entry is the transaction's entire write set.
    fn commit_fused(&self, me: &TxState) -> bool;
    /// Lazy engine: try to take the object's commit lock
    /// ([`TVarInner::lazy_try_lock`]).
    fn lazy_lock(&self, slot_idx: usize, attempt_id: u64) -> Option<(u64, u64)>;
    /// Lazy engine: the live commit-lock holder ([`TVarInner::lazy_owner`]).
    fn lazy_owner(&self) -> Option<Arc<TxState>>;
    /// Lazy engine: fold an eager run's leftover terminal writer
    /// ([`TVarInner::collapse_eager_leftover`]).
    fn collapse_eager_leftover(&self) -> bool;
    /// Lazy engine: release the commit lock without writing
    /// ([`TVarInner::lazy_unlock`]).
    fn lazy_unlock(&self);
    /// Lazy engine: write the shadow back under the held lock
    /// ([`TVarInner::lazy_writeback_arc`]).
    fn lazy_writeback(&self, wv: u64);
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Typed write-set entry: the object handle plus the private shadow copy.
pub(crate) struct TypedWrite<T: TxObject> {
    pub(crate) tvar: TVar<T>,
    pub(crate) shadow: Arc<T>,
}

impl<T: TxObject> ErasedWrite for TypedWrite<T> {
    fn release(&self, me: &TxState) {
        self.tvar.inner().collapse_terminal(me);
    }

    fn commit_fused(&self, me: &TxState) -> bool {
        let inner = self.tvar.inner();
        let mut st = inner.state.lock();
        let still_owner = st
            .writer
            .as_ref()
            .is_some_and(|w| w.attempt_id == me.attempt_id);
        if !still_owner {
            return me.try_commit();
        }
        if !me.try_commit() {
            return false;
        }
        let prev = std::mem::replace(&mut st.old, Arc::clone(&self.shadow));
        st.new = None;
        st.writer = None;
        inner.unlock_snapshot(&st.old);
        st.retire(prev);
        true
    }

    fn publish(&self, me: &TxState) {
        let mut st = self.tvar.inner().state.lock();
        let still_owner = st
            .writer
            .as_ref()
            .is_some_and(|w| w.attempt_id == me.attempt_id);
        if still_owner {
            st.new = Some(Arc::clone(&self.shadow));
        }
    }

    fn lazy_lock(&self, slot_idx: usize, attempt_id: u64) -> Option<(u64, u64)> {
        self.tvar.inner().lazy_try_lock(slot_idx, attempt_id)
    }

    fn lazy_owner(&self) -> Option<Arc<TxState>> {
        self.tvar.inner().lazy_owner()
    }

    fn collapse_eager_leftover(&self) -> bool {
        self.tvar.inner().collapse_eager_leftover()
    }

    fn lazy_unlock(&self) {
        self.tvar.inner().lazy_unlock();
    }

    fn lazy_writeback(&self, wv: u64) {
        self.tvar.inner().lazy_writeback_arc(&self.shadow, wv);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clockns;
    use crate::slots::MAX_SLOTS;

    fn state(id: u64) -> Arc<TxState> {
        Arc::new(TxState::new(id, id, 0, 0, id, id, clockns::now(), 0))
    }

    /// A state with a fresh, globally unique attempt id, published on this
    /// thread's slot so the slot-scan paths treat it as live.
    fn published_state() -> (usize, Arc<TxState>) {
        let idx = slots::my_slot_index();
        assert_ne!(idx, crate::slots::NO_SLOT);
        let id = slots::next_attempt_id();
        let st = state(id);
        slots::publish(idx, &st);
        (idx, st)
    }

    /// TVars created by these tests must cover every possible slot index,
    /// or fast-path assertions would depend on which worker thread the
    /// test harness runs them on.
    fn covered_tvar(v: u32) -> TVar<u32> {
        crate::slots::reserve_reader_slots(MAX_SLOTS);
        TVar::new(v)
    }

    #[test]
    fn new_tvar_has_value_and_unique_id() {
        let a: TVar<u32> = TVar::new(7);
        let b: TVar<u32> = TVar::new(9);
        assert_ne!(a.id(), b.id());
        assert_eq!(*a.sample(), 7);
        assert_eq!(*b.sample(), 9);
    }

    #[test]
    fn clone_shares_object() {
        let a: TVar<u32> = TVar::new(1);
        let b = a.clone();
        assert_eq!(a.id(), b.id());
        a.store_direct(5);
        assert_eq!(*b.sample(), 5);
    }

    #[test]
    fn effective_follows_writer_status() {
        let tv: TVar<u32> = TVar::new(10);
        let w = state(1);
        {
            let mut st = tv.inner().state.lock();
            tv.inner().lock_snapshot();
            st.writer = Some(Arc::clone(&w));
            st.new = Some(Arc::new(20));
        }
        // Active writer: old version visible.
        assert_eq!(*tv.sample(), 10);
        // Aborted writer: still old.
        assert!(w.abort());
        assert_eq!(*tv.sample(), 10);

        let tv2: TVar<u32> = TVar::new(10);
        let w2 = state(2);
        {
            let mut st = tv2.inner().state.lock();
            tv2.inner().lock_snapshot();
            st.writer = Some(Arc::clone(&w2));
            st.new = Some(Arc::new(20));
        }
        assert!(w2.try_commit());
        assert_eq!(*tv2.sample(), 20);
    }

    #[test]
    fn fast_read_registers_and_returns_snapshot() {
        let tv = covered_tvar(33);
        let (idx, st) = published_state();
        let v = tv
            .inner()
            .fast_read(idx, st.attempt_id)
            .expect("no writer installed → fast path must succeed");
        assert_eq!(*v, 33);
        assert_eq!(tv.reader_count(), 1, "fast read must register visibly");
        // Re-reading does not double-register.
        let _ = tv.inner().fast_read(idx, st.attempt_id);
        assert_eq!(tv.reader_count(), 1);
        slots::unpublish(idx);
        assert_eq!(tv.reader_count(), 0, "unpublished attempt is not live");
    }

    #[test]
    fn fast_read_declines_while_writer_installed() {
        let tv = covered_tvar(5);
        let w = state(900);
        {
            let mut st = tv.inner().state.lock();
            tv.inner().lock_snapshot();
            st.writer = Some(Arc::clone(&w));
        }
        let (idx, st) = published_state();
        assert!(
            tv.inner().fast_read(idx, st.attempt_id).is_none(),
            "odd seq (writer installed) must force the mutex path"
        );
        // Collapse back: writer aborted, locator folds to old.
        {
            let mut obj = tv.inner().state.lock();
            w.abort();
            obj.writer = None;
            obj.new = None;
            let cur = Arc::clone(&obj.old);
            tv.inner().unlock_snapshot(&cur);
        }
        assert_eq!(*tv.inner().fast_read(idx, st.attempt_id).unwrap(), 5);
        slots::unpublish(idx);
    }

    #[test]
    fn conflicting_reader_sees_slot_registrations() {
        let tv = covered_tvar(0);
        let (idx, reader) = published_state();
        assert!(tv.inner().fast_read(idx, reader.attempt_id).is_some());

        let me = state(slots::next_attempt_id());
        let mut st = tv.inner().state.lock();
        let c = tv
            .inner()
            .conflicting_reader(&mut st, &me)
            .expect("live slot reader must conflict");
        assert_eq!(c.attempt_id, reader.attempt_id);

        // The reader itself must not conflict with its own registration.
        assert!(tv.inner().conflicting_reader(&mut st, &reader).is_none());

        // Once the attempt is over it is stale, and the scan clears it.
        drop(st);
        reader.try_commit();
        slots::unpublish(idx);
        let mut st = tv.inner().state.lock();
        assert!(tv.inner().conflicting_reader(&mut st, &me).is_none());
        drop(st);
        assert_eq!(tv.reader_count(), 0);
    }

    #[test]
    fn conflicting_reader_finds_last_shard_and_overflow_readers() {
        // A reader whose slot index lands in the LAST shard (index 255):
        // only reachable through the shard-mask walk covering every
        // shard, since lowest-free-first allocation never hands out 255
        // organically.
        let claim = slots::TestSlotClaim::claim(MAX_SLOTS - 1)
            .expect("index 255 is never organically allocated");
        let tv = covered_tvar(0);
        assert_eq!(tv.inner().reader_slots.len(), MAX_SLOTS);
        let reader = state(slots::next_attempt_id());
        slots::publish(claim.idx, &reader);
        assert!(
            tv.inner().fast_read(claim.idx, reader.attempt_id).is_some(),
            "a claimed last-shard index must work like any other slot"
        );
        let me = state(slots::next_attempt_id());
        {
            let mut st = tv.inner().state.lock();
            let c = tv
                .inner()
                .conflicting_reader(&mut st, &me)
                .expect("a live reader in the last shard must be found");
            assert_eq!(c.attempt_id, reader.attempt_id);
        }
        drop(claim); // unpublishes + frees index 255
        {
            let mut st = tv.inner().state.lock();
            assert!(
                tv.inner().conflicting_reader(&mut st, &me).is_none(),
                "a freed high index must no longer surface a reader"
            );
            // An overflow-list reader must be found by the same scan.
            let ovf = state(slots::next_attempt_id());
            st.register_reader(&ovf);
            let c = tv
                .inner()
                .conflicting_reader(&mut st, &me)
                .expect("overflow reader must be found after the shard walk");
            assert_eq!(c.attempt_id, ovf.attempt_id);
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    fn reader_scan_is_bounded_by_active_threads() {
        // Full-capacity slot array (256 words): the old scan loaded every
        // word; the active-set scan loads only words of allocated slot
        // indices. Other tests hold slots concurrently, but far fewer
        // than the bound below.
        let tv = covered_tvar(0);
        assert_eq!(tv.inner().reader_slots.len(), MAX_SLOTS);
        let (idx, reader) = published_state();
        assert!(tv.inner().fast_read(idx, reader.attempt_id).is_some());
        let me = state(slots::next_attempt_id());
        let mut st = tv.inner().state.lock();
        crate::probe::take_reader_slot_loads();
        let found = tv.inner().conflicting_reader(&mut st, &me);
        let loads = crate::probe::take_reader_slot_loads();
        drop(st);
        assert_eq!(
            found.map(|c| c.attempt_id),
            Some(reader.attempt_id),
            "the bounded scan must still find the live reader"
        );
        assert!(loads >= 1, "the registered reader's word must be loaded");
        assert!(
            loads <= (MAX_SLOTS / 4) as u64,
            "reader scan must be O(active threads), not O(capacity): {loads} word loads"
        );
        slots::unpublish(idx);
    }

    #[test]
    fn overflow_registration_is_idempotent_and_pruned() {
        let tv: TVar<u32> = TVar::new(0);
        let r = state(1);
        {
            let mut st = tv.inner().state.lock();
            st.register_reader(&r);
            st.register_reader(&r);
            assert_eq!(st.readers.len(), 1);
        }
        r.abort();
        {
            let mut st = tv.inner().state.lock();
            st.prune_readers();
            assert_eq!(st.readers.len(), 0);
        }
    }

    #[test]
    fn conflicting_reader_covers_the_overflow_list() {
        let tv: TVar<u32> = TVar::new(0);
        let me = state(1);
        let other = state(2);
        let done = state(3);
        done.try_commit();
        let mut st = tv.inner().state.lock();
        st.register_reader(&me);
        st.register_reader(&other);
        // A terminal attempt on the list must be filtered out.
        st.readers.push(ReaderEntry {
            attempt_id: done.attempt_id,
            tx: Arc::downgrade(&done),
        });
        let c = tv
            .inner()
            .conflicting_reader(&mut st, &me)
            .expect("other should conflict");
        assert_eq!(c.attempt_id, other.attempt_id);
        let c2 = tv
            .inner()
            .conflicting_reader(&mut st, &other)
            .expect("me should conflict");
        assert_eq!(c2.attempt_id, me.attempt_id);
    }

    #[test]
    fn no_slot_tvar_forces_overflow_path_with_same_conflicts() {
        // A TVar built with zero fast-path slots models the situation where
        // a thread's slot index exceeds the capacity the TVar was created
        // under: every access must take the mutex/overflow path.
        let tv = TVar::new_with_slots_for_test(7u32, 0);
        let (idx, reader) = published_state();
        assert!(
            tv.inner().fast_read(idx, reader.attempt_id).is_none(),
            "no slot for this thread → fast path must decline"
        );
        {
            let mut st = tv.inner().state.lock();
            tv.inner().register_reader_locked(&mut st, idx, &reader);
            assert_eq!(
                st.readers.len(),
                1,
                "registration must fall back to the overflow list"
            );
            // Idempotent, like the slot path.
            tv.inner().register_reader_locked(&mut st, idx, &reader);
            assert_eq!(st.readers.len(), 1);
        }
        // A writer scanning for conflicts must find the overflow reader
        // exactly as it would find a slot reader.
        let writer = state(slots::next_attempt_id());
        let mut st = tv.inner().state.lock();
        tv.inner().lock_snapshot();
        let enemy = tv.inner().conflicting_reader(&mut st, &writer);
        tv.inner().unlock_snapshot_unchanged();
        assert_eq!(
            enemy.map(|e| e.attempt_id),
            Some(reader.attempt_id),
            "overflow reader must raise the same conflict as a slot reader"
        );
        // The reader does not conflict with itself on the overflow list.
        assert!(tv.inner().conflicting_reader(&mut st, &reader).is_none());
        drop(st);
        slots::unpublish(idx);
    }

    #[test]
    fn engine_preserves_atomicity_on_overflow_only_tvar() {
        use crate::cm::AbortEnemyManager;
        use crate::stm::Stm;
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 200;
        let stm = Stm::new(Arc::new(AbortEnemyManager), THREADS);
        // Zero slots: every read from every thread is an overflow reader,
        // as when the thread count exceeds the reader-slot capacity.
        let tv = TVar::new_with_slots_for_test(0u64, 0);
        std::thread::scope(|s| {
            for i in 0..THREADS {
                let ctx = stm.thread(i);
                let tv = tv.clone();
                s.spawn(move || {
                    for _ in 0..PER_THREAD {
                        ctx.atomic(|tx| {
                            let v = *tx.read(&tv)?;
                            tx.write(&tv, v + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(*tv.sample(), THREADS as u64 * PER_THREAD);
        assert_eq!(stm.aggregate().commits, THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn publish_only_when_still_owner() {
        let tv: TVar<u32> = TVar::new(1);
        let w1 = state(1);
        {
            let mut st = tv.inner().state.lock();
            tv.inner().lock_snapshot();
            st.writer = Some(Arc::clone(&w1));
        }
        let entry = TypedWrite {
            tvar: tv.clone(),
            shadow: Arc::new(42),
        };
        entry.publish(&w1);
        assert!(tv.inner().state.lock().new.is_some());

        // A stale owner must not clobber a newer writer's locator.
        let tv2: TVar<u32> = TVar::new(1);
        let w2 = state(2);
        {
            let mut st = tv2.inner().state.lock();
            tv2.inner().lock_snapshot();
            st.writer = Some(Arc::clone(&w2));
        }
        let stale = TypedWrite {
            tvar: tv2.clone(),
            shadow: Arc::new(99),
        };
        stale.publish(&w1); // w1 is not the owner of tv2
        assert!(tv2.inner().state.lock().new.is_none());
    }

    #[test]
    fn store_direct_resets_locator_and_slots() {
        let tv = covered_tvar(1);
        let (idx, reader) = published_state();
        assert!(tv.inner().fast_read(idx, reader.attempt_id).is_some());
        let w = state(1);
        {
            let mut st = tv.inner().state.lock();
            tv.inner().lock_snapshot();
            st.writer = Some(w);
            st.new = Some(Arc::new(50));
        }
        tv.store_direct(7);
        assert_eq!(*tv.sample(), 7);
        assert_eq!(tv.reader_count(), 0);
        // Fast path works again after the reset.
        assert_eq!(*tv.inner().fast_read(idx, reader.attempt_id).unwrap(), 7);
        slots::unpublish(idx);
    }
}
