//! Transactional objects and the DSTM locator protocol.
//!
//! Every [`TVar<T>`] owns a *locator*: the triple `(writer, old, new)`.
//! The **current value** of the object is decided by the writer's status:
//!
//! * writer `Committed` → `new` (its shadow copy became the version),
//! * writer `Active` / `Aborted` / absent → `old`.
//!
//! Acquiring an object for writing *collapses* the locator first (folds the
//! previous writer's outcome into `old`) and then installs the acquiring
//! transaction as `writer` with a fresh shadow copy. Because a
//! transaction's fate is decided by one status CAS (see
//! [`crate::status`]), this interpretation is race-free: whoever reads the
//! locator after the CAS sees the right version.
//!
//! Reads are **visible**: readers enroll in the object's reader list, so
//! writers discover read-write conflicts eagerly — the configuration the
//! paper uses ("default shadow factory and visible reads", §III).
//!
//! Lock discipline: each object has one short `parking_lot::Mutex`; the
//! engine never calls a contention manager, blocks, or takes another
//! object's lock while holding it.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use crate::status::TxStatus;
use crate::txstate::TxState;
use crate::TxObject;

/// Engine-global id source for transactional objects.
static NEXT_TVAR_ID: AtomicU64 = AtomicU64::new(1);

/// A transactional object holding values of type `T`.
///
/// Cloning a `TVar` clones the *handle*, not the value: both handles refer
/// to the same object (like `Arc`).
pub struct TVar<T: TxObject> {
    inner: Arc<TVarInner<T>>,
}

impl<T: TxObject> Clone for TVar<T> {
    fn clone(&self) -> Self {
        TVar {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: TxObject + std::fmt::Debug> std::fmt::Debug for TVar<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TVar").field("id", &self.inner.id).finish()
    }
}

pub(crate) struct TVarInner<T: TxObject> {
    pub(crate) id: u64,
    pub(crate) state: Mutex<ObjState<T>>,
}

/// A registered visible reader.
pub(crate) struct ReaderEntry {
    pub(crate) attempt_id: u64,
    pub(crate) tx: Weak<TxState>,
}

/// The locator plus the visible-reader list, all behind the object lock.
pub(crate) struct ObjState<T: TxObject> {
    pub(crate) writer: Option<Arc<TxState>>,
    pub(crate) old: Arc<T>,
    pub(crate) new: Option<Arc<T>>,
    pub(crate) readers: Vec<ReaderEntry>,
}

impl<T: TxObject> ObjState<T> {
    /// The currently visible version per the locator rule.
    pub(crate) fn effective(&self) -> Arc<T> {
        match &self.writer {
            Some(w) if w.status() == TxStatus::Committed => self
                .new
                .clone()
                .expect("committed writer must have published its shadow"),
            _ => Arc::clone(&self.old),
        }
    }

    /// Drop reader entries whose transactions are no longer active.
    pub(crate) fn prune_readers(&mut self) {
        self.readers.retain(|r| {
            r.tx
                .upgrade()
                .is_some_and(|tx| tx.status() == TxStatus::Active)
        });
    }

    /// Register `tx` as a visible reader (idempotent per attempt).
    pub(crate) fn register_reader(&mut self, tx: &Arc<TxState>) {
        self.prune_readers();
        if !self.readers.iter().any(|r| r.attempt_id == tx.attempt_id) {
            self.readers.push(ReaderEntry {
                attempt_id: tx.attempt_id,
                tx: Arc::downgrade(tx),
            });
        }
    }

    /// First active reader that is not `me`, if any.
    pub(crate) fn conflicting_reader(&mut self, me: &TxState) -> Option<Arc<TxState>> {
        self.prune_readers();
        self.readers
            .iter()
            .filter(|r| r.attempt_id != me.attempt_id)
            .find_map(|r| {
                r.tx
                    .upgrade()
                    .filter(|tx| tx.status() == TxStatus::Active)
            })
    }
}

impl<T: TxObject> TVar<T> {
    /// Create a new transactional object with initial value `value`.
    pub fn new(value: T) -> Self {
        TVar {
            inner: Arc::new(TVarInner {
                id: NEXT_TVAR_ID.fetch_add(1, Ordering::Relaxed),
                state: Mutex::new(ObjState {
                    writer: None,
                    old: Arc::new(value),
                    new: None,
                    readers: Vec::new(),
                }),
            }),
        }
    }

    /// Unique id of the object.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Non-transactional peek at the current committed version.
    ///
    /// Safe at any time but only *meaningful* when no transaction is
    /// mutating the object (e.g. validation between experiment phases).
    pub fn sample(&self) -> Arc<T> {
        self.inner.state.lock().effective()
    }

    /// Non-transactional replacement of the value. Intended for
    /// initialization and between-run resets; it discards any in-flight
    /// writer by overwriting the locator wholesale.
    pub fn store_direct(&self, value: T) {
        let mut st = self.inner.state.lock();
        st.writer = None;
        st.old = Arc::new(value);
        st.new = None;
        st.readers.clear();
    }

    pub(crate) fn inner(&self) -> &TVarInner<T> {
        &self.inner
    }

    /// Number of registered (possibly stale) readers — diagnostics only.
    pub fn reader_count(&self) -> usize {
        self.inner.state.lock().readers.len()
    }
}

impl<T: TxObject + Default> Default for TVar<T> {
    fn default() -> Self {
        TVar::new(T::default())
    }
}

// ---------------------------------------------------------------------------
// Type-erased write-set entries
// ---------------------------------------------------------------------------

/// A write-set entry, type-erased so one `Vec` can hold writes to objects
/// of different types.
pub(crate) trait ErasedWrite: Send {
    /// Id of the written object (write-set lookups).
    fn tvar_id(&self) -> u64;
    /// Install the shadow copy as the locator's `new` version, iff the
    /// committing transaction still owns the object.
    fn publish(&self, me: &TxState);
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Typed write-set entry: the object handle plus the private shadow copy.
pub(crate) struct TypedWrite<T: TxObject> {
    pub(crate) tvar: TVar<T>,
    pub(crate) shadow: Arc<T>,
}

impl<T: TxObject> ErasedWrite for TypedWrite<T> {
    fn tvar_id(&self) -> u64 {
        self.tvar.id()
    }

    fn publish(&self, me: &TxState) {
        let mut st = self.tvar.inner().state.lock();
        let still_owner = st
            .writer
            .as_ref()
            .is_some_and(|w| w.attempt_id == me.attempt_id);
        if still_owner {
            st.new = Some(Arc::clone(&self.shadow));
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn state(id: u64) -> Arc<TxState> {
        Arc::new(TxState::new(id, id, 0, 0, id, id, Instant::now(), 0))
    }

    #[test]
    fn new_tvar_has_value_and_unique_id() {
        let a: TVar<u32> = TVar::new(7);
        let b: TVar<u32> = TVar::new(9);
        assert_ne!(a.id(), b.id());
        assert_eq!(*a.sample(), 7);
        assert_eq!(*b.sample(), 9);
    }

    #[test]
    fn clone_shares_object() {
        let a: TVar<u32> = TVar::new(1);
        let b = a.clone();
        assert_eq!(a.id(), b.id());
        a.store_direct(5);
        assert_eq!(*b.sample(), 5);
    }

    #[test]
    fn effective_follows_writer_status() {
        let tv: TVar<u32> = TVar::new(10);
        let w = state(1);
        {
            let mut st = tv.inner().state.lock();
            st.writer = Some(Arc::clone(&w));
            st.new = Some(Arc::new(20));
        }
        // Active writer: old version visible.
        assert_eq!(*tv.sample(), 10);
        // Aborted writer: still old.
        assert!(w.abort());
        assert_eq!(*tv.sample(), 10);

        let tv2: TVar<u32> = TVar::new(10);
        let w2 = state(2);
        {
            let mut st = tv2.inner().state.lock();
            st.writer = Some(Arc::clone(&w2));
            st.new = Some(Arc::new(20));
        }
        assert!(w2.try_commit());
        assert_eq!(*tv2.sample(), 20);
    }

    #[test]
    fn reader_registration_is_idempotent_and_pruned() {
        let tv: TVar<u32> = TVar::new(0);
        let r = state(1);
        {
            let mut st = tv.inner().state.lock();
            st.register_reader(&r);
            st.register_reader(&r);
            assert_eq!(st.readers.len(), 1);
        }
        r.abort();
        {
            let mut st = tv.inner().state.lock();
            st.prune_readers();
            assert_eq!(st.readers.len(), 0);
        }
    }

    #[test]
    fn dropped_reader_is_pruned() {
        let tv: TVar<u32> = TVar::new(0);
        {
            let r = state(3);
            tv.inner().state.lock().register_reader(&r);
            assert_eq!(tv.reader_count(), 1);
        } // r dropped here
        tv.inner().state.lock().prune_readers();
        assert_eq!(tv.reader_count(), 0);
    }

    #[test]
    fn conflicting_reader_skips_self_and_inactive() {
        let tv: TVar<u32> = TVar::new(0);
        let me = state(1);
        let other = state(2);
        let done = state(3);
        done.try_commit();
        {
            let mut st = tv.inner().state.lock();
            st.register_reader(&me);
            st.register_reader(&other);
            // `done` committed before registration would normally not be
            // registered, but insert it to test filtering.
            st.readers.push(ReaderEntry {
                attempt_id: done.attempt_id,
                tx: Arc::downgrade(&done),
            });
            let c = st.conflicting_reader(&me).expect("other should conflict");
            assert_eq!(c.attempt_id, other.attempt_id);
            // From `other`'s perspective, `me` conflicts.
            let c2 = st.conflicting_reader(&other).expect("me should conflict");
            assert_eq!(c2.attempt_id, me.attempt_id);
        }
    }

    #[test]
    fn publish_only_when_still_owner() {
        let tv: TVar<u32> = TVar::new(1);
        let w1 = state(1);
        {
            let mut st = tv.inner().state.lock();
            st.writer = Some(Arc::clone(&w1));
        }
        let entry = TypedWrite {
            tvar: tv.clone(),
            shadow: Arc::new(42),
        };
        entry.publish(&w1);
        assert!(tv.inner().state.lock().new.is_some());

        // A stale owner must not clobber a newer writer's locator.
        let tv2: TVar<u32> = TVar::new(1);
        let w2 = state(2);
        {
            let mut st = tv2.inner().state.lock();
            st.writer = Some(Arc::clone(&w2));
        }
        let stale = TypedWrite {
            tvar: tv2.clone(),
            shadow: Arc::new(99),
        };
        stale.publish(&w1); // w1 is not the owner of tv2
        assert!(tv2.inner().state.lock().new.is_none());
    }

    #[test]
    fn store_direct_resets_locator() {
        let tv: TVar<u32> = TVar::new(1);
        let w = state(1);
        {
            let mut st = tv.inner().state.lock();
            st.writer = Some(w);
            st.new = Some(Arc::new(50));
        }
        tv.store_direct(7);
        assert_eq!(*tv.sample(), 7);
        assert_eq!(tv.reader_count(), 0);
    }
}
