//! The simple static-priority manager of the paper (§III-A).
//!
//! "Priority is a static priority-based manager, where the priority of a
//! transaction is its start time, that aborts lower priority transactions
//! during conflicts." Like Greedy the priority is the first-attempt
//! timestamp, but there is no waiting rule at all: whichever side of the
//! conflict is younger dies immediately. Starvation-free for the oldest
//! transaction but wasteful — young transactions repeatedly sacrifice
//! themselves, which is exactly the behaviour the paper's Fig. 4 shows as
//! a high aborts-per-commit ratio.

use crate::{ConflictKind, ContentionManager, Resolution, TxState};

/// See module docs.
#[derive(Debug, Default)]
pub struct Priority;

impl ContentionManager for Priority {
    fn resolve(&self, me: &TxState, enemy: &TxState, _kind: ConflictKind) -> Resolution {
        if (me.ts, me.txn_id) < (enemy.ts, enemy.txn_id) {
            Resolution::AbortEnemy
        } else {
            Resolution::AbortSelf
        }
    }

    fn name(&self) -> &str {
        "Priority"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::managers::testutil::state;

    #[test]
    fn older_wins_younger_dies() {
        let old = state(1, 5);
        let young = state(2, 9);
        assert_eq!(
            Priority.resolve(&old, &young, ConflictKind::WriteWrite),
            Resolution::AbortEnemy
        );
        assert_eq!(
            Priority.resolve(&young, &old, ConflictKind::WriteWrite),
            Resolution::AbortSelf
        );
    }

    #[test]
    fn decision_is_antisymmetric_for_all_kinds() {
        let a = state(1, 5);
        let b = state(2, 9);
        for kind in [
            ConflictKind::WriteWrite,
            ConflictKind::ReadWrite,
            ConflictKind::WriteRead,
        ] {
            let ab = Priority.resolve(&a, &b, kind);
            let ba = Priority.resolve(&b, &a, kind);
            assert_ne!(ab, ba, "exactly one side must yield");
        }
    }

    #[test]
    fn priority_survives_retries() {
        // A retry keeps the original timestamp, so an old transaction's
        // retry still beats a younger first attempt.
        let old_retry = crate::managers::testutil::state_on(0, 3, 5, 4);
        let young = state(2, 9);
        assert_eq!(
            Priority.resolve(&old_retry, &young, ConflictKind::WriteWrite),
            Resolution::AbortEnemy
        );
    }
}
