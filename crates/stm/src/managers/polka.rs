//! Polka (Scherer & Scott, PODC 2005) — the paper's "published best"
//! baseline.
//!
//! Polka marries **Karma**'s priority accumulation with **Polite**'s
//! exponential backoff. A transaction's priority is the number of objects
//! it has opened, *accumulated across retries* (work invested). On a
//! conflict the attacker computes the priority gap `Δ = enemy − me`:
//!
//! * `Δ ≤ 0` — the attacker has invested at least as much work: abort the
//!   enemy at once.
//! * `Δ > 0` — give the enemy `Δ` chances to finish, sleeping an
//!   exponentially growing interval between checks; if it is still active
//!   after `Δ` intervals, abort it anyway.
//!
//! Polka has no provable worst-case guarantee (the paper stresses this)
//! but excellent empirical behaviour: victims that have done a lot of work
//! get time to finish, and deadlocked/parked enemies are eventually killed.

use std::time::Duration;

use crate::sync::cooperative_wait;
use crate::{ConflictKind, ContentionManager, Resolution, TxState};

/// Polka contention manager. Construct with [`Polka::default`] or tune the
/// backoff via [`Polka::with_backoff`].
#[derive(Debug)]
pub struct Polka {
    /// First backoff interval.
    base: Duration,
    /// Cap on a single backoff interval.
    max_interval: Duration,
    /// Cap on the number of backoff rounds (bounds the Δ loop so a huge
    /// karma gap cannot stall the attacker for seconds).
    max_rounds: u64,
}

impl Default for Polka {
    fn default() -> Self {
        Polka {
            base: Duration::from_micros(2),
            max_interval: Duration::from_micros(256),
            max_rounds: 16,
        }
    }
}

impl Polka {
    /// Custom backoff parameters (`base` doubling each round up to
    /// `max_interval`, at most `max_rounds` rounds).
    pub fn with_backoff(base: Duration, max_interval: Duration, max_rounds: u64) -> Self {
        Polka {
            base,
            max_interval,
            max_rounds,
        }
    }
}

impl ContentionManager for Polka {
    fn resolve(&self, me: &TxState, enemy: &TxState, _kind: ConflictKind) -> Resolution {
        let gap = enemy.karma().saturating_sub(me.karma());
        if gap == 0 {
            return Resolution::AbortEnemy;
        }
        let rounds = gap.min(self.max_rounds);
        let mut interval = self.base;
        me.set_waiting(true);
        for _ in 0..rounds {
            cooperative_wait(interval);
            interval = (interval * 2).min(self.max_interval);
            if !enemy.is_active() {
                me.set_waiting(false);
                return Resolution::Retry; // enemy finished on its own
            }
            if !me.is_active() {
                // Someone killed us while we were being polite.
                me.set_waiting(false);
                return Resolution::Retry; // engine notices the abort
            }
        }
        me.set_waiting(false);
        Resolution::AbortEnemy
    }

    fn name(&self) -> &str {
        "Polka"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::managers::testutil::state;
    use std::time::Instant;

    #[test]
    fn equal_or_higher_karma_attacks_immediately() {
        let me = state(1, 1);
        let enemy = state(2, 2);
        // Both karma 0.
        let t0 = Instant::now();
        assert_eq!(
            Polka::default().resolve(&me, &enemy, ConflictKind::WriteWrite),
            Resolution::AbortEnemy
        );
        assert!(t0.elapsed() < Duration::from_millis(1));

        // Me richer than enemy.
        me.add_karma();
        me.add_karma();
        enemy.add_karma();
        assert_eq!(
            Polka::default().resolve(&me, &enemy, ConflictKind::WriteWrite),
            Resolution::AbortEnemy
        );
    }

    #[test]
    fn poorer_attacker_waits_then_attacks() {
        let me = state(1, 1);
        let enemy = state(2, 2);
        for _ in 0..3 {
            enemy.add_karma();
        }
        let cm = Polka::with_backoff(Duration::from_micros(50), Duration::from_micros(100), 16);
        let t0 = Instant::now();
        let res = cm.resolve(&me, &enemy, ConflictKind::WriteWrite);
        assert_eq!(res, Resolution::AbortEnemy);
        // 3 rounds: 50 + 100 + 100 µs minimum.
        assert!(t0.elapsed() >= Duration::from_micros(250));
        assert!(!me.is_waiting());
    }

    #[test]
    fn wait_cut_short_when_enemy_finishes() {
        let me = state(1, 1);
        let enemy = state(2, 2);
        for _ in 0..10 {
            enemy.add_karma();
        }
        enemy.try_commit();
        let cm = Polka::default();
        let res = cm.resolve(&me, &enemy, ConflictKind::ReadWrite);
        assert_eq!(res, Resolution::Retry);
    }

    #[test]
    fn rounds_are_capped() {
        let me = state(1, 1);
        let enemy = state(2, 2);
        for _ in 0..1_000 {
            enemy.add_karma();
        }
        let cm = Polka::with_backoff(Duration::from_micros(10), Duration::from_micros(10), 4);
        let t0 = Instant::now();
        assert_eq!(
            cm.resolve(&me, &enemy, ConflictKind::WriteWrite),
            Resolution::AbortEnemy
        );
        // 4 rounds × 10 µs, with generous slack for scheduling noise.
        assert!(t0.elapsed() < Duration::from_millis(50));
    }
}
