//! Name → manager constructors for the experiment harness and CLI.

use std::sync::Arc;

use crate::ContentionManager;

use crate::dispatch::CmDispatch;
use crate::managers::{
    Aggressive, Ats, Backoff, Eruption, Greedy, Karma, Kindergarten, Polite, Polka, Priority,
    RandomizedRounds, StoTimid, Timestamp, Timid,
};

/// The classic manager names [`make_manager`] understands
/// (the window-based managers live in `wtm-window` and have their own
/// registry entry points in the harness).
pub fn classic_names() -> &'static [&'static str] {
    &[
        "Polka",
        "Greedy",
        "Priority",
        "Karma",
        "Backoff",
        "Polite",
        "Aggressive",
        "Timid",
        "Timestamp",
        "RandomizedRounds",
        "Eruption",
        "Kindergarten",
        "ATS",
        "STO-Timid",
    ]
}

/// Construct a classic contention manager by name.
///
/// `num_threads` parameterizes managers that need the thread count
/// (RandomizedRounds' rank range). Returns `None` for unknown names.
pub fn make_manager(name: &str, num_threads: usize) -> Option<Arc<dyn ContentionManager>> {
    Some(match name {
        "Polka" => Arc::new(Polka::default()),
        "Greedy" => Arc::new(Greedy),
        "Priority" => Arc::new(Priority),
        "Karma" => Arc::new(Karma::default()),
        "Backoff" => Arc::new(Backoff::default()),
        "Polite" => Arc::new(Polite::default()),
        "Aggressive" => Arc::new(Aggressive),
        "Timid" => Arc::new(Timid),
        "Timestamp" => Arc::new(Timestamp::default()),
        "RandomizedRounds" => Arc::new(RandomizedRounds::new(num_threads)),
        "Eruption" => Arc::new(Eruption::default()),
        "Kindergarten" => Arc::new(Kindergarten::new(num_threads)),
        "ATS" => Arc::new(Ats::new(num_threads)),
        "STO-Timid" => Arc::new(StoTimid::new(num_threads)),
        _ => return None,
    })
}

/// Construct a classic contention manager by name as a [`CmDispatch`],
/// so the engine's hot hooks dispatch monomorphically (no virtual calls).
///
/// Same name set as [`make_manager`]; returns `None` for unknown names.
pub fn make_dispatch(name: &str, num_threads: usize) -> Option<CmDispatch> {
    Some(match name {
        "Polka" => CmDispatch::Polka(Arc::new(Polka::default())),
        "Greedy" => CmDispatch::Greedy,
        "Priority" => CmDispatch::Priority,
        "Karma" => CmDispatch::Karma(Arc::new(Karma::default())),
        "Backoff" => CmDispatch::Backoff(Arc::new(Backoff::default())),
        "Polite" => CmDispatch::Polite(Arc::new(Polite::default())),
        "Aggressive" => CmDispatch::Aggressive,
        "Timid" => CmDispatch::Timid,
        "Timestamp" => CmDispatch::Timestamp(Arc::new(Timestamp::default())),
        "RandomizedRounds" => {
            CmDispatch::RandomizedRounds(Arc::new(RandomizedRounds::new(num_threads)))
        }
        "Eruption" => CmDispatch::Eruption(Arc::new(Eruption::default())),
        "Kindergarten" => CmDispatch::Kindergarten(Arc::new(Kindergarten::new(num_threads))),
        "ATS" => CmDispatch::Ats(Arc::new(Ats::new(num_threads))),
        "STO-Timid" => CmDispatch::StoTimid(Arc::new(StoTimid::new(num_threads))),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_name_constructs() {
        for name in classic_names() {
            let cm = make_manager(name, 4).unwrap_or_else(|| panic!("{name} should construct"));
            assert_eq!(cm.name(), *name);
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(make_manager("NoSuchManager", 4).is_none());
    }
}
