//! Eruption (Scherer & Scott, PODC 2005).
//!
//! Like Karma, priority is the number of objects opened — but when a
//! transaction blocks behind an enemy it *transfers* its momentum: the
//! blocked transaction's priority is added onto the enemy so that hot
//! resources "erupt" through the conflict chain and finish quickly,
//! whereupon the waiters get their turn. We model the transfer with the
//! scratch slot: `user_slot` carries the momentum a transaction has
//! received from waiters; effective priority = karma + received momentum.

use std::time::Duration;

use crate::sync::cooperative_wait;
use crate::{ConflictKind, ContentionManager, Resolution, TxState};

/// See module docs.
#[derive(Debug)]
pub struct Eruption {
    /// Wait interval between pressure checks.
    interval: Duration,
}

impl Default for Eruption {
    fn default() -> Self {
        Eruption {
            interval: Duration::from_micros(4),
        }
    }
}

impl Eruption {
    /// Custom re-check interval.
    pub fn with_interval(interval: Duration) -> Self {
        Eruption { interval }
    }

    fn pressure(tx: &TxState) -> u64 {
        tx.karma() + tx.user_slot()
    }
}

impl ContentionManager for Eruption {
    fn resolve(&self, me: &TxState, enemy: &TxState, _kind: ConflictKind) -> Resolution {
        let mine = Self::pressure(me);
        let theirs = Self::pressure(enemy);
        if mine >= theirs {
            return Resolution::AbortEnemy;
        }
        // Transfer momentum: my pressure pushes the enemy forward.
        enemy.set_user_slot(theirs.saturating_add(mine.max(1)));
        me.set_waiting(true);
        cooperative_wait(self.interval);
        me.set_waiting(false);
        Resolution::Retry
    }

    fn on_begin(&self, tx: &std::sync::Arc<TxState>, _is_retry: bool) {
        tx.set_user_slot(0); // momentum does not survive restarts
    }

    fn name(&self) -> &str {
        "Eruption"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::managers::testutil::state;

    #[test]
    fn higher_pressure_attacks() {
        let cm = Eruption::default();
        let me = state(1, 1);
        let enemy = state(2, 2);
        me.add_karma();
        assert_eq!(
            cm.resolve(&me, &enemy, ConflictKind::WriteWrite),
            Resolution::AbortEnemy
        );
    }

    #[test]
    fn lower_pressure_waits_and_transfers_momentum() {
        let cm = Eruption::with_interval(Duration::from_nanos(100));
        let me = state(1, 1);
        let enemy = state(2, 2);
        for _ in 0..3 {
            enemy.add_karma();
        }
        me.add_karma();
        let before = enemy.user_slot();
        assert_eq!(
            cm.resolve(&me, &enemy, ConflictKind::WriteWrite),
            Resolution::Retry
        );
        assert!(
            enemy.user_slot() > before,
            "waiter must transfer momentum to the blocker"
        );
    }

    #[test]
    fn accumulated_momentum_eventually_wins() {
        let cm = Eruption::with_interval(Duration::from_nanos(100));
        let poor = state(1, 1);
        let rich = state(2, 2);
        for _ in 0..5 {
            rich.add_karma();
        }
        // `rich` erupts through `poor` repeatedly; once rich receives
        // enough momentum (here, from poor itself), rich's attacks stay
        // immediate while poor keeps waiting.
        assert_eq!(
            cm.resolve(&rich, &poor, ConflictKind::WriteWrite),
            Resolution::AbortEnemy
        );
    }

    #[test]
    fn momentum_resets_on_begin() {
        let cm = Eruption::default();
        let tx = state(1, 1);
        tx.set_user_slot(42);
        cm.on_begin(&tx, true);
        assert_eq!(tx.user_slot(), 0);
    }
}
