//! Exponential-backoff contention manager.
//!
//! The STM analogue of test-and-test-and-set backoff locks: on a conflict,
//! wait `base · 2^attempt` (capped), then — if the enemy is *still* in the
//! way — kill it. The more often this transaction has aborted, the longer
//! it waits, which spaces out repeat offenders. No priorities at all.

use std::time::Duration;

use crate::sync::cooperative_wait;
use crate::{ConflictKind, ContentionManager, Resolution, TxState};

/// See module docs.
#[derive(Debug)]
pub struct Backoff {
    base: Duration,
    max_interval: Duration,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            base: Duration::from_micros(2),
            max_interval: Duration::from_micros(512),
        }
    }
}

impl Backoff {
    /// Backoff with custom base and cap.
    pub fn new(base: Duration, max_interval: Duration) -> Self {
        Backoff { base, max_interval }
    }

    fn interval_for(&self, attempt: u32) -> Duration {
        let shift = attempt.min(20);
        let nanos = self.base.as_nanos().saturating_mul(1u128 << shift);
        Duration::from_nanos(nanos.min(self.max_interval.as_nanos()) as u64)
    }
}

impl ContentionManager for Backoff {
    fn resolve(&self, me: &TxState, enemy: &TxState, _kind: ConflictKind) -> Resolution {
        me.set_waiting(true);
        cooperative_wait(self.interval_for(me.attempt));
        me.set_waiting(false);
        if enemy.is_active() {
            Resolution::AbortEnemy
        } else {
            Resolution::Retry
        }
    }

    fn name(&self) -> &str {
        "Backoff"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::managers::testutil::{state, state_on};

    #[test]
    fn interval_grows_exponentially_and_caps() {
        let b = Backoff::new(Duration::from_micros(1), Duration::from_micros(8));
        assert_eq!(b.interval_for(0), Duration::from_micros(1));
        assert_eq!(b.interval_for(1), Duration::from_micros(2));
        assert_eq!(b.interval_for(3), Duration::from_micros(8));
        assert_eq!(b.interval_for(10), Duration::from_micros(8));
        // Huge attempt counts must not overflow.
        assert_eq!(b.interval_for(u32::MAX), Duration::from_micros(8));
    }

    #[test]
    fn attacks_live_enemy_after_wait() {
        let me = state(1, 1);
        let enemy = state(2, 2);
        assert_eq!(
            Backoff::default().resolve(&me, &enemy, ConflictKind::WriteWrite),
            Resolution::AbortEnemy
        );
    }

    #[test]
    fn retries_when_enemy_already_done() {
        let me = state_on(0, 1, 1, 2);
        let enemy = state(2, 2);
        enemy.abort();
        assert_eq!(
            Backoff::default().resolve(&me, &enemy, ConflictKind::WriteWrite),
            Resolution::Retry
        );
    }
}
