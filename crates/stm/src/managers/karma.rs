//! Karma (Scherer & Scott, 2004/2005).
//!
//! Priority = objects opened, accumulated across retries, so a transaction
//! that keeps losing gradually earns the right to win. The attacker
//! compares its priority *plus the number of retries it has already
//! suffered* against the enemy's priority: once
//! `me.karma + me.attempt ≥ enemy.karma` it attacks; otherwise it waits a
//! short fixed interval and lets the engine re-detect. (The per-attempt
//! bonus is Karma's "each backoff raises my effective priority" rule.)

use std::time::Duration;

use crate::sync::cooperative_wait;
use crate::{ConflictKind, ContentionManager, Resolution, TxState};

/// See module docs.
#[derive(Debug)]
pub struct Karma {
    /// The fixed wait interval between priority re-checks.
    interval: Duration,
}

impl Default for Karma {
    fn default() -> Self {
        Karma {
            interval: Duration::from_micros(4),
        }
    }
}

impl Karma {
    /// Karma with a custom re-check interval.
    pub fn with_interval(interval: Duration) -> Self {
        Karma { interval }
    }
}

impl ContentionManager for Karma {
    fn resolve(&self, me: &TxState, enemy: &TxState, _kind: ConflictKind) -> Resolution {
        let effective = me.karma() + u64::from(me.attempt);
        if effective >= enemy.karma() {
            Resolution::AbortEnemy
        } else {
            me.set_waiting(true);
            cooperative_wait(self.interval);
            me.set_waiting(false);
            Resolution::Retry
        }
    }

    fn name(&self) -> &str {
        "Karma"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::managers::testutil::{state, state_on};

    #[test]
    fn equal_karma_attacks() {
        let me = state(1, 1);
        let enemy = state(2, 2);
        assert_eq!(
            Karma::default().resolve(&me, &enemy, ConflictKind::WriteWrite),
            Resolution::AbortEnemy
        );
    }

    #[test]
    fn poorer_waits() {
        let me = state(1, 1);
        let enemy = state(2, 2);
        enemy.add_karma();
        enemy.add_karma();
        assert_eq!(
            Karma::default().resolve(&me, &enemy, ConflictKind::WriteWrite),
            Resolution::Retry
        );
    }

    #[test]
    fn retries_raise_effective_priority() {
        // karma 0 but 5 retries beats an enemy with karma 4.
        let me = state_on(0, 1, 1, 5);
        let enemy = state(2, 2);
        for _ in 0..4 {
            enemy.add_karma();
        }
        assert_eq!(
            Karma::default().resolve(&me, &enemy, ConflictKind::WriteWrite),
            Resolution::AbortEnemy
        );
    }
}
