//! Classic STM contention managers.
//!
//! The comparison baselines of the paper (§III-A) plus the wider family
//! they come from:
//!
//! * [`Polka`] — the "published best" manager the paper compares against:
//!   Karma priorities combined with exponential backoff
//!   (Scherer & Scott, PODC 2005).
//! * [`Greedy`] — the first manager with provable properties: decides by
//!   static timestamps, never waits for a waiting enemy
//!   (Guerraoui, Herlihy & Pochon, PODC 2005).
//! * [`Priority`] — the simple static-priority manager of the paper:
//!   priority is the start time; the younger transaction yields.
//! * [`Karma`], [`Backoff`], [`Polite`], [`Aggressive`], [`Timid`],
//!   [`Timestamp`] — the classic DSTM policy family.
//! * [`RandomizedRounds`] — Schneider & Wattenhofer's randomized manager,
//!   also the conflict-resolution subroutine inside the paper's window
//!   Online algorithm.
//! * [`StoTimid`] — the timid-phase timestamp manager from the STO
//!   runtime: attempts stay timestamp-less (always yielding) until they
//!   open enough objects, then compete by age, with randomized backoff
//!   after every abort.
//!
//! The managers live *inside* `wtm-stm` (they moved here from the old
//! `wtm-managers` crate, which now just re-exports this module) so the
//! engine can dispatch to them through the monomorphic
//! [`CmDispatch`](crate::dispatch::CmDispatch) enum instead of a virtual
//! call per conflict — see `crate::dispatch` for the dispatch table.
//!
//! All managers implement [`crate::ContentionManager`] and are safe to
//! share across every worker thread of one [`crate::Stm`].
//!
//! The [`registry`] module maps manager names to constructors for the
//! experiment harness.

pub mod ats;
pub mod backoff;
pub mod eruption;
pub mod greedy;
pub mod karma;
pub mod kindergarten;
pub mod polite;
pub mod polka;
pub mod priority;
pub mod randomized;
pub mod registry;
pub mod simple;
pub mod sto_timid;
pub mod timestamp;

pub use ats::Ats;
pub use backoff::Backoff;
pub use eruption::Eruption;
pub use greedy::Greedy;
pub use karma::Karma;
pub use kindergarten::Kindergarten;
pub use polite::Polite;
pub use polka::Polka;
pub use priority::Priority;
pub use randomized::RandomizedRounds;
pub use registry::{classic_names, make_dispatch, make_manager};
pub use simple::{Aggressive, Timid};
pub use sto_timid::StoTimid;
pub use timestamp::Timestamp;

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::Arc;

    use crate::{clockns, TxState};

    /// Build a transaction state with the given ids and timestamp.
    pub fn state(attempt_id: u64, ts: u64) -> Arc<TxState> {
        Arc::new(TxState::new(
            attempt_id,
            attempt_id,
            0,
            0,
            ts,
            ts,
            clockns::now(),
            0,
        ))
    }

    /// Build a state on a specific thread with a retry count.
    pub fn state_on(thread: usize, attempt_id: u64, ts: u64, attempt: u32) -> Arc<TxState> {
        Arc::new(TxState::new(
            attempt_id,
            attempt_id,
            thread,
            attempt,
            ts,
            ts + attempt as u64,
            clockns::now(),
            0,
        ))
    }
}
