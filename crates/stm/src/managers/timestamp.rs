//! Timestamp (Scherer & Scott's policy family).
//!
//! Orders transactions by the timestamp of the *current attempt* (unlike
//! Greedy/Priority, a retry loses its seniority). The older attempt
//! attacks; the younger waits a bounded number of slices for the enemy to
//! finish and then sacrifices itself. Because seniority resets on retry,
//! long-running transactions are not protected — the weakness that
//! motivated Greedy's stable timestamps.

use std::time::Duration;

use crate::sync::wait_until;
use crate::{ConflictKind, ContentionManager, Resolution, TxState};

/// See module docs.
#[derive(Debug)]
pub struct Timestamp {
    /// How long the younger side waits before yielding.
    patience: Duration,
}

impl Default for Timestamp {
    fn default() -> Self {
        Timestamp {
            patience: Duration::from_micros(100),
        }
    }
}

impl Timestamp {
    /// Custom patience for the younger side.
    pub fn with_patience(patience: Duration) -> Self {
        Timestamp { patience }
    }
}

impl ContentionManager for Timestamp {
    fn resolve(&self, me: &TxState, enemy: &TxState, _kind: ConflictKind) -> Resolution {
        if (me.attempt_ts, me.attempt_id) < (enemy.attempt_ts, enemy.attempt_id) {
            return Resolution::AbortEnemy;
        }
        me.set_waiting(true);
        let enemy_done = wait_until(self.patience, || !enemy.is_active());
        me.set_waiting(false);
        if enemy_done {
            Resolution::Retry
        } else {
            Resolution::AbortSelf
        }
    }

    fn name(&self) -> &str {
        "Timestamp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::managers::testutil::state;

    #[test]
    fn older_attempt_attacks() {
        let old = state(1, 10);
        let young = state(2, 20);
        assert_eq!(
            Timestamp::default().resolve(&old, &young, ConflictKind::WriteWrite),
            Resolution::AbortEnemy
        );
    }

    #[test]
    fn younger_yields_after_patience() {
        let old = state(1, 10);
        let young = state(2, 20);
        let cm = Timestamp::with_patience(Duration::from_micros(50));
        assert_eq!(
            cm.resolve(&young, &old, ConflictKind::WriteWrite),
            Resolution::AbortSelf
        );
    }

    #[test]
    fn younger_retries_if_enemy_finishes() {
        let old = state(1, 10);
        let young = state(2, 20);
        old.abort();
        let cm = Timestamp::with_patience(Duration::from_millis(10));
        let t0 = std::time::Instant::now();
        assert_eq!(
            cm.resolve(&young, &old, ConflictKind::WriteWrite),
            Resolution::Retry
        );
        assert!(t0.elapsed() < Duration::from_millis(10));
    }
}
