//! STO's timid-phase timestamp manager (Herman et al.'s STO runtime).
//!
//! A port of the contention manager shipped with the STO software
//! transactional objects runtime (`ContentionManager.cc`). The policy is
//! a timestamp order with a **timid opening phase**:
//!
//! * A fresh attempt starts *timid* — it has no timestamp (the `MAX_TS`
//!   sentinel) and loses every conflict. Cheap transactions come and go
//!   without ever touching the global timestamp counter.
//! * Once an attempt has opened [`TS_THRESHOLD`] objects it is deemed
//!   substantial and draws a real timestamp from a global counter
//!   (`fetch_add`), which it keeps until the attempt ends. From then on
//!   the *older* (smaller-timestamp) side wins: the younger side marks
//!   the older's thread slot `aborted` and attacks, while a side that
//!   meets a younger enemy yields (or retries once the enemy's slot is
//!   already marked aborted, since that enemy is on its way out).
//! * Every abort applies **randomized backoff**: the loser sleeps a
//!   uniform random duration in `[0, abort_count · WAIT_NS_MULTIPLIER)`
//!   nanoseconds, with `abort_count` capped at [`SUCC_ABORTS_MAX`], so
//!   repeat losers spread out instead of re-colliding in lockstep.
//!
//! Per-thread state lives in cache-line-aligned slots indexed by
//! `TxState::thread_id` (STO spaces its arrays by 4 words for the same
//! reason). Like the original, the `aborted` mark is advisory and keyed
//! by thread, not by attempt: a mark aimed at a dying transaction can be
//! observed by its thread's next attempt, which merely costs that attempt
//! one conflict — safety is unaffected.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::sync::cooperative_wait;
use crate::{ConflictKind, ContentionManager, Resolution, TxState};

/// Sentinel timestamp: the attempt is still in its timid phase.
const MAX_TS: u64 = u64::MAX;

/// Opens before an attempt graduates from timid to timestamped.
const TS_THRESHOLD: u64 = 10;

/// Cap on the abort streak used to scale the randomized backoff.
const SUCC_ABORTS_MAX: u64 = 10;

/// Nanoseconds of backoff range per abort in the current streak (STO
/// uses 8000 *cycles* per abort; we keep the constant in nanoseconds).
const WAIT_NS_MULTIPLIER: u64 = 8000;

/// Per-thread manager state, padded so neighbours don't false-share.
#[repr(align(64))]
struct ThreadSlot {
    /// Timestamp of the thread's current attempt (`MAX_TS` = timid).
    ts: AtomicU64,
    /// Set by a younger enemy that decided to kill this thread's attempt.
    aborted: AtomicU64,
    /// Objects opened by the current attempt (drives graduation).
    opens: AtomicU64,
    /// Consecutive aborts, capped at [`SUCC_ABORTS_MAX`].
    abort_streak: AtomicU64,
    /// Private RNG for the randomized backoff (cold path: aborts only).
    rng: Mutex<SmallRng>,
}

impl ThreadSlot {
    fn new(seed: u64) -> Self {
        ThreadSlot {
            ts: AtomicU64::new(MAX_TS),
            aborted: AtomicU64::new(0),
            opens: AtomicU64::new(0),
            abort_streak: AtomicU64::new(0),
            rng: Mutex::new(SmallRng::seed_from_u64(seed)),
        }
    }
}

/// See module docs.
pub struct StoTimid {
    /// Global timestamp counter attempts graduate into.
    clock: AtomicU64,
    /// One slot per worker thread, indexed by `TxState::thread_id`.
    slots: Box<[ThreadSlot]>,
}

impl StoTimid {
    /// Manager for `num_threads` workers with a deterministic seed.
    pub fn new(num_threads: usize) -> Self {
        Self::with_seed(num_threads, 0x5707_1A1D)
    }

    /// Manager with an explicit backoff RNG seed (tests, reproducibility).
    pub fn with_seed(num_threads: usize, seed: u64) -> Self {
        StoTimid {
            clock: AtomicU64::new(0),
            slots: (0..num_threads.max(1))
                .map(|i| ThreadSlot::new(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
                .collect(),
        }
    }

    fn slot(&self, thread_id: usize) -> &ThreadSlot {
        &self.slots[thread_id % self.slots.len()]
    }
}

impl ContentionManager for StoTimid {
    fn resolve(&self, me: &TxState, enemy: &TxState, _kind: ConflictKind) -> Resolution {
        let mine = self.slot(me.thread_id);
        // Someone already sentenced us: stop fighting and restart.
        if mine.aborted.load(Ordering::Acquire) != 0 {
            return Resolution::AbortSelf;
        }
        // Timid attempts lose every conflict.
        let my_ts = mine.ts.load(Ordering::Acquire);
        if my_ts == MAX_TS {
            return Resolution::AbortSelf;
        }
        let theirs = self.slot(enemy.thread_id);
        if theirs.ts.load(Ordering::Acquire) < my_ts {
            // The enemy is older. If its slot is already marked aborted
            // it is on its way out — spin-retry until the engine sees it
            // dead; otherwise yield.
            if theirs.aborted.load(Ordering::Acquire) == 0 {
                Resolution::AbortSelf
            } else {
                Resolution::Retry
            }
        } else {
            // We are older (or the enemy is timid): sentence it and win.
            theirs.aborted.store(1, Ordering::Release);
            Resolution::AbortEnemy
        }
    }

    fn on_begin(&self, tx: &std::sync::Arc<TxState>, is_retry: bool) {
        let slot = self.slot(tx.thread_id);
        slot.ts.store(MAX_TS, Ordering::Release);
        slot.aborted.store(0, Ordering::Release);
        slot.opens.store(0, Ordering::Release);
        if !is_retry {
            // A fresh transaction starts a fresh abort streak; retries
            // keep the streak so their backoff keeps growing.
            slot.abort_streak.store(0, Ordering::Release);
        }
    }

    fn on_open(&self, tx: &TxState) {
        let slot = self.slot(tx.thread_id);
        if slot.ts.load(Ordering::Relaxed) != MAX_TS {
            return; // already graduated
        }
        let opened = slot.opens.fetch_add(1, Ordering::Relaxed) + 1;
        if opened == TS_THRESHOLD {
            let ts = self.clock.fetch_add(1, Ordering::Relaxed);
            slot.ts.store(ts, Ordering::Release);
        }
    }

    fn on_abort(&self, tx: &TxState) {
        let slot = self.slot(tx.thread_id);
        let streak = slot
            .abort_streak
            .load(Ordering::Relaxed)
            .min(SUCC_ABORTS_MAX - 1)
            + 1;
        slot.abort_streak.store(streak, Ordering::Relaxed);
        let range = streak * WAIT_NS_MULTIPLIER;
        let wait_ns = slot.rng.lock().random_range(0..range);
        tx.set_waiting(true);
        cooperative_wait(Duration::from_nanos(wait_ns));
        tx.set_waiting(false);
    }

    fn name(&self) -> &str {
        "STO-Timid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::managers::testutil::state_on;

    /// Open `n` objects on behalf of `tx` so its thread graduates.
    fn graduate(cm: &StoTimid, tx: &TxState) {
        for _ in 0..TS_THRESHOLD {
            cm.on_open(tx);
        }
    }

    #[test]
    fn timid_attempt_always_yields() {
        let cm = StoTimid::new(2);
        let me = state_on(0, 1, 10, 0);
        let enemy = state_on(1, 2, 20, 0);
        cm.on_begin(&me, false);
        cm.on_begin(&enemy, false);
        // Neither side has opened enough objects: the caller yields.
        assert_eq!(
            cm.resolve(&me, &enemy, ConflictKind::WriteWrite),
            Resolution::AbortSelf
        );
    }

    #[test]
    fn graduation_takes_ts_threshold_opens() {
        let cm = StoTimid::new(1);
        let tx = state_on(0, 1, 10, 0);
        cm.on_begin(&tx, false);
        for _ in 0..TS_THRESHOLD - 1 {
            cm.on_open(&tx);
        }
        assert_eq!(cm.slot(0).ts.load(Ordering::Relaxed), MAX_TS);
        cm.on_open(&tx);
        assert_ne!(cm.slot(0).ts.load(Ordering::Relaxed), MAX_TS);
    }

    #[test]
    fn older_timestamp_sentences_younger_and_wins() {
        let cm = StoTimid::new(2);
        let me = state_on(0, 1, 10, 0);
        let enemy = state_on(1, 2, 20, 0);
        cm.on_begin(&me, false);
        cm.on_begin(&enemy, false);
        graduate(&cm, &me); // me draws ts 0
        graduate(&cm, &enemy); // enemy draws ts 1
        assert_eq!(
            cm.resolve(&me, &enemy, ConflictKind::WriteWrite),
            Resolution::AbortEnemy
        );
        // The enemy's slot now carries the sentence: it self-aborts on
        // its next conflict even against a timid opponent.
        assert_eq!(
            cm.resolve(&enemy, &me, ConflictKind::WriteWrite),
            Resolution::AbortSelf
        );
    }

    #[test]
    fn younger_retries_against_sentenced_elder() {
        let cm = StoTimid::new(2);
        let me = state_on(0, 1, 10, 0);
        let enemy = state_on(1, 2, 20, 0);
        cm.on_begin(&enemy, false);
        cm.on_begin(&me, false);
        graduate(&cm, &enemy); // enemy older (ts 0)
        graduate(&cm, &me); // me younger (ts 1)
        assert_eq!(
            cm.resolve(&me, &enemy, ConflictKind::WriteWrite),
            Resolution::AbortSelf,
            "live elder wins"
        );
        cm.slot(1).aborted.store(1, Ordering::Release);
        assert_eq!(
            cm.resolve(&me, &enemy, ConflictKind::WriteWrite),
            Resolution::Retry,
            "sentenced elder is waited out, not yielded to"
        );
    }

    #[test]
    fn fresh_begin_clears_sentence_and_retry_keeps_streak() {
        let cm = StoTimid::new(1);
        let tx = state_on(0, 1, 10, 0);
        cm.on_begin(&tx, false);
        cm.slot(0).aborted.store(1, Ordering::Release);
        cm.on_abort(&tx);
        assert_eq!(cm.slot(0).abort_streak.load(Ordering::Relaxed), 1);
        cm.on_begin(&tx, true);
        assert_eq!(cm.slot(0).aborted.load(Ordering::Relaxed), 0);
        assert_eq!(
            cm.slot(0).abort_streak.load(Ordering::Relaxed),
            1,
            "retry keeps the abort streak"
        );
        cm.on_begin(&tx, false);
        assert_eq!(
            cm.slot(0).abort_streak.load(Ordering::Relaxed),
            0,
            "fresh transaction resets the streak"
        );
    }

    #[test]
    fn abort_streak_caps_backoff_range() {
        let cm = StoTimid::new(1);
        let tx = state_on(0, 1, 10, 0);
        cm.on_begin(&tx, false);
        for _ in 0..SUCC_ABORTS_MAX + 5 {
            cm.on_abort(&tx);
        }
        assert_eq!(
            cm.slot(0).abort_streak.load(Ordering::Relaxed),
            SUCC_ABORTS_MAX
        );
    }
}
