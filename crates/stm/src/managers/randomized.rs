//! RandomizedRounds (Schneider & Wattenhofer, 2009).
//!
//! Every attempt draws a uniform random rank in `[1, M]` (M = number of
//! threads). On a conflict the lower rank wins and the loser aborts,
//! re-rolling on its retry. Schneider & Wattenhofer prove a transaction
//! with at most `d` neighbours in the conflict graph needs
//! `O(d · log n)` attempts w.h.p., and that Polka/SizeMatters can be
//! exponentially worse in adversarial schedules.
//!
//! This manager doubles as the conflict-resolution subroutine of the
//! paper's window *Online* algorithm (the π₂ component of its priority
//! vector): the window crate reuses the same rank slot on [`TxState`].

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{ConflictKind, ContentionManager, Resolution, TxState};

/// See module docs.
pub struct RandomizedRounds {
    m: u32,
    rngs: Box<[Mutex<SmallRng>]>,
}

impl RandomizedRounds {
    /// Manager for `num_threads` workers with a deterministic seed.
    pub fn new(num_threads: usize) -> Self {
        Self::with_seed(num_threads, 0xDECAF)
    }

    /// Seeded variant for reproducible experiments.
    pub fn with_seed(num_threads: usize, seed: u64) -> Self {
        RandomizedRounds {
            m: num_threads.max(1) as u32,
            rngs: (0..num_threads.max(1))
                .map(|i| {
                    Mutex::new(SmallRng::seed_from_u64(
                        seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ))
                })
                .collect(),
        }
    }

    fn roll(&self, thread_id: usize) -> u32 {
        let slot = thread_id % self.rngs.len();
        self.rngs[slot].lock().random_range(1..=self.m)
    }
}

impl ContentionManager for RandomizedRounds {
    fn resolve(&self, me: &TxState, enemy: &TxState, _kind: ConflictKind) -> Resolution {
        if (me.rank(), me.attempt_id) < (enemy.rank(), enemy.attempt_id) {
            Resolution::AbortEnemy
        } else {
            Resolution::AbortSelf
        }
    }

    fn on_begin(&self, tx: &std::sync::Arc<TxState>, _is_retry: bool) {
        tx.set_rank(self.roll(tx.thread_id));
    }

    fn name(&self) -> &str {
        "RandomizedRounds"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::managers::testutil::{state, state_on};

    #[test]
    fn lower_rank_wins() {
        let cm = RandomizedRounds::new(4);
        let a = state(1, 1);
        let b = state(2, 2);
        a.set_rank(1);
        b.set_rank(3);
        assert_eq!(
            cm.resolve(&a, &b, ConflictKind::WriteWrite),
            Resolution::AbortEnemy
        );
        assert_eq!(
            cm.resolve(&b, &a, ConflictKind::WriteWrite),
            Resolution::AbortSelf
        );
    }

    #[test]
    fn ties_broken_by_attempt_id() {
        let cm = RandomizedRounds::new(4);
        let a = state(1, 1);
        let b = state(2, 2);
        a.set_rank(2);
        b.set_rank(2);
        assert_eq!(
            cm.resolve(&a, &b, ConflictKind::WriteWrite),
            Resolution::AbortEnemy
        );
        assert_eq!(
            cm.resolve(&b, &a, ConflictKind::WriteWrite),
            Resolution::AbortSelf
        );
    }

    #[test]
    fn on_begin_rolls_rank_in_range() {
        let m = 8;
        let cm = RandomizedRounds::new(m);
        for t in 0..m {
            let tx = state_on(t, t as u64 + 1, 1, 0);
            cm.on_begin(&tx, false);
            let r = tx.rank();
            assert!((1..=m as u32).contains(&r), "rank {r} out of [1, {m}]");
        }
    }

    #[test]
    fn ranks_are_not_constant() {
        let cm = RandomizedRounds::new(16);
        let tx = state(1, 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            cm.on_begin(&tx, true);
            seen.insert(tx.rank());
        }
        assert!(seen.len() > 3, "expected varied ranks, got {seen:?}");
    }
}
