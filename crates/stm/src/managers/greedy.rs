//! The Greedy contention manager (Guerraoui, Herlihy & Pochon, PODC 2005).
//!
//! The first manager with a provable competitive ratio (O(s²), later
//! improved to O(s) by Attiya et al.). Rules, with `ts` the timestamp taken
//! at the transaction's *first* attempt and kept across retries:
//!
//! 1. If I am **older** than the enemy (`my ts < enemy ts`), abort the enemy.
//! 2. If I am younger and the enemy is **waiting** (blocked in its own
//!    contention-manager wait), abort the enemy — a waiting transaction
//!    cannot be making progress on this object.
//! 3. Otherwise wait until the enemy commits, aborts, or starts waiting.
//!
//! The *pending-commit* property follows: at any time the transaction with
//! the smallest timestamp among live ones runs unobstructed — so some
//! useful work always completes.
//!
//! Waiting cannot deadlock: only younger transactions wait, so any wait
//! chain strictly decreases in age and the oldest never waits.

use crate::sync::wait_until;
use crate::{ConflictKind, ContentionManager, Resolution, TxState};

/// Upper bound on one blocking episode inside `resolve`; the engine
/// re-detects the conflict and re-enters, so this only bounds the latency
/// of noticing an enemy state change, not total waiting.
const WAIT_SLICE: std::time::Duration = std::time::Duration::from_millis(2);

/// See module docs.
#[derive(Debug, Default)]
pub struct Greedy;

impl ContentionManager for Greedy {
    fn resolve(&self, me: &TxState, enemy: &TxState, _kind: ConflictKind) -> Resolution {
        // Tie-break equal timestamps by attempt id so the relation stays a
        // total order (equal ts can only happen across engines in practice).
        let i_am_older = (me.ts, me.txn_id) < (enemy.ts, enemy.txn_id);
        if i_am_older || enemy.is_waiting() {
            return Resolution::AbortEnemy;
        }
        // Younger vs. an active, running enemy: wait.
        me.set_waiting(true);
        wait_until(WAIT_SLICE, || !enemy.is_active() || enemy.is_waiting());
        me.set_waiting(false);
        Resolution::Retry
    }

    fn name(&self) -> &str {
        "Greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::managers::testutil::state;

    #[test]
    fn older_aborts_younger() {
        let old = state(1, 10);
        let young = state(2, 20);
        assert_eq!(
            Greedy.resolve(&old, &young, ConflictKind::WriteWrite),
            Resolution::AbortEnemy
        );
    }

    #[test]
    fn younger_aborts_waiting_older() {
        let old = state(1, 10);
        let young = state(2, 20);
        old.set_waiting(true);
        assert_eq!(
            Greedy.resolve(&young, &old, ConflictKind::WriteWrite),
            Resolution::AbortEnemy
        );
    }

    #[test]
    fn younger_waits_for_running_older() {
        let old = state(1, 10);
        let young = state(2, 20);
        let t0 = std::time::Instant::now();
        let res = Greedy.resolve(&young, &old, ConflictKind::WriteWrite);
        assert_eq!(res, Resolution::Retry);
        // It actually waited (the enemy never changed state).
        assert!(t0.elapsed() >= WAIT_SLICE);
        // And cleared its waiting flag on exit.
        assert!(!young.is_waiting());
    }

    #[test]
    fn wait_returns_early_when_enemy_finishes() {
        let old = state(1, 10);
        let young = state(2, 20);
        old.try_commit();
        let t0 = std::time::Instant::now();
        let res = Greedy.resolve(&young, &old, ConflictKind::ReadWrite);
        assert_eq!(res, Resolution::Retry);
        assert!(t0.elapsed() < WAIT_SLICE);
    }

    #[test]
    fn timestamp_tie_broken_by_txn_id() {
        let a = state(1, 10);
        let b = state(2, 10);
        assert_eq!(
            Greedy.resolve(&a, &b, ConflictKind::WriteWrite),
            Resolution::AbortEnemy
        );
    }
}
