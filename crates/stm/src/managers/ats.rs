//! ATS — Adaptive Transaction Scheduling (Yoo & Lee, SPAA 2008).
//!
//! The related-work scheduler the paper's *Adaptive-Improved* variant
//! borrows its estimator from (§III-A). Each thread maintains a
//! *contention intensity* EWMA
//! `CI ← α·CI + (1−α)·[aborted]`. While `CI` is below a threshold the
//! thread runs transactions freely (conflicts resolved like Timestamp:
//! older attempt wins). Once `CI` crosses the threshold the thread
//! *serializes*: it acquires a global admission token for the duration of
//! each transaction, so at most one high-contention thread runs at a
//! time and the conflict storm collapses.
//!
//! The token is a spin-with-yield flag rather than a mutex because the
//! hold spans `on_begin → on_commit/on_abort` (a guard cannot live inside
//! `&self` callbacks).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::{ConflictKind, ContentionManager, Resolution, TxState};

/// See module docs.
pub struct Ats {
    /// EWMA weight of the previous CI value.
    alpha: f64,
    /// Serialize when CI exceeds this (Yoo & Lee suggest ~0.5).
    threshold: f64,
    /// Per-thread contention intensity.
    ci: Box<[Mutex<f64>]>,
    /// Which thread currently holds the admission token (sentinel = none).
    token_holder: AtomicUsize,
    /// Whether the committing thread must release the token.
    holding: Box<[AtomicBool]>,
}

const NO_HOLDER: usize = usize::MAX;

impl Ats {
    /// ATS for `num_threads` workers with the canonical parameters.
    pub fn new(num_threads: usize) -> Self {
        Self::with_params(num_threads, 0.75, 0.5)
    }

    /// Custom EWMA weight and serialization threshold.
    pub fn with_params(num_threads: usize, alpha: f64, threshold: f64) -> Self {
        let n = num_threads.max(1);
        Ats {
            alpha,
            threshold,
            ci: (0..n).map(|_| Mutex::new(0.0)).collect(),
            token_holder: AtomicUsize::new(NO_HOLDER),
            holding: (0..n).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Current contention intensity of a thread (tests/diagnostics).
    pub fn contention_intensity(&self, thread: usize) -> f64 {
        *self.ci[thread % self.ci.len()].lock()
    }

    fn release_if_held(&self, thread: usize) {
        let slot = thread % self.holding.len();
        if self.holding[slot].swap(false, Ordering::AcqRel) {
            self.token_holder.store(NO_HOLDER, Ordering::Release);
        }
    }
}

impl ContentionManager for Ats {
    fn resolve(&self, me: &TxState, enemy: &TxState, _kind: ConflictKind) -> Resolution {
        // Free-running conflicts: older attempt wins (Timestamp rule).
        if (me.attempt_ts, me.attempt_id) < (enemy.attempt_ts, enemy.attempt_id) {
            Resolution::AbortEnemy
        } else {
            Resolution::AbortSelf
        }
    }

    fn on_begin(&self, tx: &std::sync::Arc<TxState>, _is_retry: bool) {
        let slot = tx.thread_id % self.ci.len();
        let serialize = *self.ci[slot].lock() > self.threshold;
        if serialize {
            // Spin-with-yield until we own the admission token.
            loop {
                if self
                    .token_holder
                    .compare_exchange(NO_HOLDER, slot, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    self.holding[slot].store(true, Ordering::Release);
                    break;
                }
                std::thread::yield_now();
            }
        }
    }

    fn on_commit(&self, tx: &TxState) {
        let slot = tx.thread_id % self.ci.len();
        {
            let mut ci = self.ci[slot].lock();
            *ci *= self.alpha;
        }
        self.release_if_held(tx.thread_id);
    }

    fn on_abort(&self, tx: &TxState) {
        let slot = tx.thread_id % self.ci.len();
        {
            let mut ci = self.ci[slot].lock();
            *ci = self.alpha * *ci + (1.0 - self.alpha);
        }
        self.release_if_held(tx.thread_id);
    }

    fn name(&self) -> &str {
        "ATS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::managers::testutil::{state, state_on};

    #[test]
    fn ci_rises_on_abort_and_decays_on_commit() {
        let ats = Ats::new(2);
        let tx = state_on(0, 1, 1, 0);
        assert_eq!(ats.contention_intensity(0), 0.0);
        ats.on_abort(&tx);
        let after_abort = ats.contention_intensity(0);
        assert!(after_abort > 0.2);
        ats.on_commit(&tx);
        assert!(ats.contention_intensity(0) < after_abort);
    }

    #[test]
    fn resolve_is_timestamp_ordered() {
        let ats = Ats::new(2);
        let old = state(1, 10);
        let young = state(2, 20);
        assert_eq!(
            ats.resolve(&old, &young, ConflictKind::WriteWrite),
            Resolution::AbortEnemy
        );
        assert_eq!(
            ats.resolve(&young, &old, ConflictKind::WriteWrite),
            Resolution::AbortSelf
        );
    }

    #[test]
    fn low_ci_does_not_serialize() {
        let ats = Ats::new(2);
        let tx = state_on(0, 1, 1, 0);
        ats.on_begin(&std::sync::Arc::clone(&tx), false);
        // Token untouched.
        assert_eq!(ats.token_holder.load(Ordering::Acquire), NO_HOLDER);
        ats.on_commit(&tx);
    }

    #[test]
    fn high_ci_takes_and_releases_token() {
        let ats = Ats::with_params(2, 0.5, 0.1);
        let tx = state_on(0, 1, 1, 0);
        // Pump CI above the threshold.
        for _ in 0..4 {
            ats.on_abort(&tx);
        }
        assert!(ats.contention_intensity(0) > 0.1);
        ats.on_begin(&std::sync::Arc::clone(&tx), true);
        assert_eq!(ats.token_holder.load(Ordering::Acquire), 0);
        ats.on_commit(&tx);
        assert_eq!(ats.token_holder.load(Ordering::Acquire), NO_HOLDER);
    }

    #[test]
    fn end_to_end_under_stm() {
        use crate::{Stm, TVar};
        use std::sync::Arc;
        let ats = Arc::new(Ats::with_params(3, 0.5, 0.05));
        let stm = Stm::new(ats, 3);
        let counter: TVar<u64> = TVar::new(0);
        std::thread::scope(|s| {
            for t in 0..3 {
                let ctx = stm.thread(t);
                let counter = counter.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        ctx.atomic(|tx| {
                            let v = *tx.read(&counter)?;
                            tx.write(&counter, v + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(*counter.sample(), 300);
    }
}
