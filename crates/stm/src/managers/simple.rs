//! The two degenerate policies: always-attack and always-yield.
//!
//! They bracket the policy space — *Aggressive* maximizes progress of the
//! attacker at the cost of killing long-running victims repeatedly;
//! *Timid* can never hurt a competitor but livelocks under symmetric
//! contention. Useful as baselines and in unit tests.

use crate::{ConflictKind, ContentionManager, Resolution, TxState};

/// Always abort the enemy (DSTM's *Aggressive* policy).
#[derive(Debug, Default)]
pub struct Aggressive;

impl ContentionManager for Aggressive {
    fn resolve(&self, _me: &TxState, _enemy: &TxState, _kind: ConflictKind) -> Resolution {
        Resolution::AbortEnemy
    }

    fn name(&self) -> &str {
        "Aggressive"
    }
}

/// Always abort self (the *Timid* policy).
#[derive(Debug, Default)]
pub struct Timid;

impl ContentionManager for Timid {
    fn resolve(&self, _me: &TxState, _enemy: &TxState, _kind: ConflictKind) -> Resolution {
        Resolution::AbortSelf
    }

    fn name(&self) -> &str {
        "Timid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::managers::testutil::state;

    #[test]
    fn aggressive_always_attacks() {
        let a = state(1, 1);
        let b = state(2, 2);
        assert_eq!(
            Aggressive.resolve(&a, &b, ConflictKind::WriteWrite),
            Resolution::AbortEnemy
        );
        assert_eq!(
            Aggressive.resolve(&b, &a, ConflictKind::ReadWrite),
            Resolution::AbortEnemy
        );
    }

    #[test]
    fn timid_always_yields() {
        let a = state(1, 1);
        let b = state(2, 2);
        assert_eq!(
            Timid.resolve(&a, &b, ConflictKind::WriteWrite),
            Resolution::AbortSelf
        );
        assert_eq!(
            Timid.resolve(&b, &a, ConflictKind::WriteRead),
            Resolution::AbortSelf
        );
    }
}
