//! Kindergarten (Scherer & Scott, PODC 2005).
//!
//! "Taking turns": each transaction keeps a list of enemies it has
//! already backed off for. On a conflict with a *new* enemy it politely
//! aborts itself (giving the other side its turn); on a *repeat* conflict
//! with an enemy it already yielded to, it attacks — it is our turn now.
//! The hat list is kept per thread and survives transaction restarts
//! (that is the whole point: the restart remembers whom it yielded to).

use parking_lot::Mutex;

use crate::{ConflictKind, ContentionManager, Resolution, TxState};

/// A `(my logical txn, enemy logical txn)` pair we already yielded to.
type HatPair = (u64, u64);

/// See module docs.
pub struct Kindergarten {
    /// Per-thread list of [`HatPair`]s. Bounded to keep lookups cheap.
    hats: Box<[Mutex<Vec<HatPair>>]>,
}

const MAX_HATS: usize = 64;

impl Kindergarten {
    /// Manager for `num_threads` workers.
    pub fn new(num_threads: usize) -> Self {
        Kindergarten {
            hats: (0..num_threads.max(1))
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
        }
    }
}

impl ContentionManager for Kindergarten {
    fn resolve(&self, me: &TxState, enemy: &TxState, _kind: ConflictKind) -> Resolution {
        let slot = me.thread_id % self.hats.len();
        let mut hats = self.hats[slot].lock();
        let key = (me.txn_id, enemy.txn_id);
        if hats.contains(&key) {
            // We already gave this enemy a turn: now it is ours.
            Resolution::AbortEnemy
        } else {
            if hats.len() >= MAX_HATS {
                hats.remove(0);
            }
            hats.push(key);
            Resolution::AbortSelf
        }
    }

    fn on_commit(&self, tx: &TxState) {
        let slot = tx.thread_id % self.hats.len();
        self.hats[slot]
            .lock()
            .retain(|(mine, _)| *mine != tx.txn_id);
    }

    fn name(&self) -> &str {
        "Kindergarten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::managers::testutil::{state, state_on};

    #[test]
    fn first_conflict_yields_second_attacks() {
        let cm = Kindergarten::new(2);
        let me = state_on(0, 1, 1, 0);
        let enemy = state_on(1, 2, 2, 0);
        assert_eq!(
            cm.resolve(&me, &enemy, ConflictKind::WriteWrite),
            Resolution::AbortSelf,
            "first meeting: give the enemy a turn"
        );
        // Same logical pair again (our retry): now we attack.
        assert_eq!(
            cm.resolve(&me, &enemy, ConflictKind::WriteWrite),
            Resolution::AbortEnemy,
            "second meeting: our turn"
        );
    }

    #[test]
    fn different_enemies_each_get_one_turn() {
        let cm = Kindergarten::new(1);
        let me = state(1, 1);
        let e1 = state(2, 2);
        let e2 = state(3, 3);
        assert_eq!(
            cm.resolve(&me, &e1, ConflictKind::WriteWrite),
            Resolution::AbortSelf
        );
        assert_eq!(
            cm.resolve(&me, &e2, ConflictKind::WriteWrite),
            Resolution::AbortSelf
        );
        assert_eq!(
            cm.resolve(&me, &e1, ConflictKind::WriteWrite),
            Resolution::AbortEnemy
        );
        assert_eq!(
            cm.resolve(&me, &e2, ConflictKind::WriteWrite),
            Resolution::AbortEnemy
        );
    }

    #[test]
    fn commit_clears_the_hat_list() {
        let cm = Kindergarten::new(1);
        let me = state(1, 1);
        let enemy = state(2, 2);
        let _ = cm.resolve(&me, &enemy, ConflictKind::WriteWrite);
        cm.on_commit(&me);
        // A fresh logical transaction with the same ids yields again.
        assert_eq!(
            cm.resolve(&me, &enemy, ConflictKind::WriteWrite),
            Resolution::AbortSelf
        );
    }

    #[test]
    fn hat_list_is_bounded() {
        let cm = Kindergarten::new(1);
        let me = state(1, 1);
        for i in 0..(MAX_HATS as u64 + 20) {
            let enemy = state(i + 2, i + 2);
            let _ = cm.resolve(&me, &enemy, ConflictKind::WriteWrite);
        }
        assert!(cm.hats[0].lock().len() <= MAX_HATS);
    }
}
