//! Polite (Herlihy, Luchangco, Moir & Scherer, DSTM 2003).
//!
//! Per conflict, back off a bounded number of rounds with randomized
//! exponentially-growing intervals, re-checking the enemy after each; if
//! the enemy is still active when politeness runs out, abort it. The
//! per-conflict round counter lives in the transaction's scratch slot and
//! is reset on every new attempt.

use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::sync::cooperative_wait;
use crate::{ConflictKind, ContentionManager, Resolution, TxState};
use parking_lot::Mutex;

/// See module docs.
pub struct Polite {
    base: Duration,
    max_rounds: u32,
    rng: Mutex<SmallRng>,
}

impl Default for Polite {
    fn default() -> Self {
        Polite {
            base: Duration::from_micros(2),
            max_rounds: 8,
            rng: Mutex::new(SmallRng::seed_from_u64(0xB01_17E)),
        }
    }
}

impl Polite {
    /// Polite with custom base interval and round budget.
    pub fn new(base: Duration, max_rounds: u32) -> Self {
        Polite {
            base,
            max_rounds,
            ..Default::default()
        }
    }
}

impl ContentionManager for Polite {
    fn resolve(&self, me: &TxState, enemy: &TxState, _kind: ConflictKind) -> Resolution {
        let round = me.user_slot();
        if round >= u64::from(self.max_rounds) {
            me.set_user_slot(0);
            return Resolution::AbortEnemy;
        }
        me.set_user_slot(round + 1);
        // Randomized interval in [1, 2^round] × base (classic randomized
        // exponential backoff).
        let spread = 1u64 << round.min(16);
        let factor = self.rng.lock().random_range(1..=spread);
        me.set_waiting(true);
        cooperative_wait(Duration::from_nanos(self.base.as_nanos() as u64 * factor));
        me.set_waiting(false);
        if enemy.is_active() {
            Resolution::Retry // engine re-detects; we count rounds across re-entries
        } else {
            me.set_user_slot(0);
            Resolution::Retry
        }
    }

    fn on_begin(&self, tx: &std::sync::Arc<TxState>, _is_retry: bool) {
        tx.set_user_slot(0);
    }

    fn name(&self) -> &str {
        "Polite"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::managers::testutil::state;

    #[test]
    fn attacks_after_round_budget() {
        let cm = Polite::new(Duration::from_nanos(100), 3);
        let me = state(1, 1);
        let enemy = state(2, 2);
        let mut attacked = false;
        for _ in 0..4 {
            match cm.resolve(&me, &enemy, ConflictKind::WriteWrite) {
                Resolution::AbortEnemy => {
                    attacked = true;
                    break;
                }
                Resolution::Retry => continue,
                Resolution::AbortSelf => panic!("polite never aborts self"),
            }
        }
        assert!(attacked, "must attack once politeness is exhausted");
        // Round counter reset for the next conflict.
        assert_eq!(me.user_slot(), 0);
    }

    #[test]
    fn on_begin_resets_rounds() {
        let cm = Polite::default();
        let me = state(1, 1);
        me.set_user_slot(5);
        cm.on_begin(&me, true);
        assert_eq!(me.user_slot(), 0);
    }
}
