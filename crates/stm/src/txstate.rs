//! The shared per-attempt transaction record.
//!
//! Every transaction *attempt* runs under a [`TxState`] behind an `Arc`.
//! Locators and the reader registry hold clones of that `Arc`, which is
//! what lets any thread inspect a competitor's status, priority, and age —
//! and abort it with a single CAS.
//!
//! Attempt identity is the `attempt_id`: process-globally unique and never
//! reused, so any stale reference (a locator pointing at an old writer, a
//! reader-slot word from a finished attempt) is detectable by id mismatch.
//! The *allocation* behind a `TxState` may be recycled by the per-thread
//! pool in [`crate::stm`], but only via [`reset_for_attempt`]
//! (`Arc::get_mut`), i.e. only when no other reference exists — a locator
//! that still points at an old attempt therefore sees it permanently
//! `Aborted`/`Committed`, exactly as if the record were freshly allocated.
//! The reader registry's reference ([`crate::slots`]) is the one that
//! outlives the attempt: it is *retired* through [`crate::epoch`] when the
//! owner republishes its next attempt, and drains at a later quiesce —
//! which is why the pool holds three slots, not one.
//!
//! Fields that must *survive* retries of the same logical transaction (the
//! Greedy timestamp, Karma's accumulated priority) are seeded from the
//! logical-transaction context in [`crate::stm`] when each attempt starts.
//!
//! Timestamps (`first_start_ns`, `attempt_start_ns`) are nanoseconds from
//! the cheap coarse clock in [`crate::clockns`]; they feed metrics and τ
//! calibration only.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

use crate::clockns;
use crate::status::{AtomicStatus, TxStatus};

/// Sentinel for [`TxState::assigned_frame`]: the transaction is not running
/// under a window-based contention manager.
pub const NOT_WINDOWED: u64 = u64::MAX;

/// Shared record describing one attempt of one transaction.
///
/// Cheap to create, immutable except for the atomics. All cross-thread
/// communication about a transaction (status, priorities, window frame)
/// goes through this record.
#[derive(Debug)]
pub struct TxState {
    /// Unique id of this attempt (process-global, never reused, never 0).
    pub attempt_id: u64,
    /// Id of the logical transaction (stable across retries).
    pub txn_id: u64,
    /// Index of the thread running the transaction.
    pub thread_id: usize,
    /// Retry count: 0 for the first attempt.
    pub attempt: u32,
    /// Logical timestamp of the *first* attempt. Greedy and Priority order
    /// transactions by this value: smaller = older = higher priority.
    pub ts: u64,
    /// Logical timestamp of *this* attempt (used by the Timestamp manager).
    pub attempt_ts: u64,
    /// Coarse-clock start of the first attempt (response-time metric).
    pub first_start_ns: u64,
    /// Coarse-clock start of this attempt (wasted-work metric, τ samples).
    pub attempt_start_ns: u64,

    status: AtomicStatus,
    /// Karma/Polka priority: number of objects opened, accumulated across
    /// attempts of the logical transaction.
    karma: AtomicU64,
    /// Set while the transaction is blocked inside a contention manager
    /// wait. Greedy aborts an *older* enemy iff it is waiting.
    waiting: AtomicBool,
    /// Window CM: frame in which this transaction turns high-priority
    /// (`NOT_WINDOWED` when no window manager is installed).
    assigned_frame: AtomicU64,
    /// Window CM: the random rank π₂ ∈ [1, M], re-rolled after every abort.
    rank: AtomicU32,
    /// Window CM: raw pointer (as bits, 0 = none) to the frame clock of
    /// the window this attempt runs in, cached at `on_begin` so the
    /// conflict resolver reads the current frame without locking the
    /// per-thread window state or touching an `Arc` refcount. Only the
    /// owning thread dereferences it; see the safety contract on the
    /// window manager's `resolve`.
    window_run: AtomicU64,
    /// Window CM: barrier generation of the cached `window_run` pointer
    /// (diagnostics/debug assertions — lets a reader detect a stale cache
    /// without dereferencing).
    window_gen: AtomicU64,
    /// Scratch slot for contention-manager-specific data.
    user_slot: AtomicU64,
}

impl TxState {
    /// Create the record for a new attempt.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        attempt_id: u64,
        txn_id: u64,
        thread_id: usize,
        attempt: u32,
        ts: u64,
        attempt_ts: u64,
        first_start_ns: u64,
        karma_carryover: u64,
    ) -> Self {
        TxState {
            attempt_id,
            txn_id,
            thread_id,
            attempt,
            ts,
            attempt_ts,
            first_start_ns,
            // The first attempt starts when the transaction does; only
            // retries need a fresh clock read.
            attempt_start_ns: if attempt == 0 {
                first_start_ns
            } else {
                clockns::now()
            },
            status: AtomicStatus::new(),
            karma: AtomicU64::new(karma_carryover),
            waiting: AtomicBool::new(false),
            assigned_frame: AtomicU64::new(NOT_WINDOWED),
            rank: AtomicU32::new(0),
            window_run: AtomicU64::new(0),
            window_gen: AtomicU64::new(0),
            user_slot: AtomicU64::new(0),
        }
    }

    /// Reinitialize a recycled record for a fresh attempt.
    ///
    /// Requires exclusive access (`Arc::get_mut`): the caller proves no
    /// locator, registry entry, or contention manager still references the
    /// old attempt, so rewriting the identity fields cannot confuse anyone.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn reset_for_attempt(
        &mut self,
        attempt_id: u64,
        txn_id: u64,
        thread_id: usize,
        attempt: u32,
        ts: u64,
        attempt_ts: u64,
        first_start_ns: u64,
        karma_carryover: u64,
    ) {
        self.attempt_id = attempt_id;
        self.txn_id = txn_id;
        self.thread_id = thread_id;
        self.attempt = attempt;
        self.ts = ts;
        self.attempt_ts = attempt_ts;
        self.first_start_ns = first_start_ns;
        self.attempt_start_ns = if attempt == 0 {
            first_start_ns
        } else {
            clockns::now()
        };
        self.status = AtomicStatus::new();
        self.karma = AtomicU64::new(karma_carryover);
        self.waiting = AtomicBool::new(false);
        self.assigned_frame = AtomicU64::new(NOT_WINDOWED);
        self.rank = AtomicU32::new(0);
        self.window_run = AtomicU64::new(0);
        self.window_gen = AtomicU64::new(0);
        self.user_slot = AtomicU64::new(0);
    }

    /// Current status.
    #[inline]
    pub fn status(&self) -> TxStatus {
        self.status.load()
    }

    /// True iff still `Active`.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.status() == TxStatus::Active
    }

    /// Try to abort this transaction (any thread may call this on an
    /// enemy). Returns `true` iff this call performed the abort.
    #[inline]
    pub fn abort(&self) -> bool {
        self.status.try_transition(TxStatus::Aborted)
    }

    /// Try to commit (only the owning thread calls this).
    /// Returns `true` iff the commit CAS won.
    #[inline]
    pub fn try_commit(&self) -> bool {
        self.status.try_transition(TxStatus::Committed)
    }

    // ---- contention-manager metadata ------------------------------------

    /// Karma priority (objects opened, accumulated across retries).
    #[inline]
    pub fn karma(&self) -> u64 {
        self.karma.load(Ordering::Relaxed)
    }

    /// Bump karma by one (called on every successful object open).
    #[inline]
    pub fn add_karma(&self) {
        self.karma.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether the transaction is currently blocked in a CM wait loop.
    #[inline]
    pub fn is_waiting(&self) -> bool {
        self.waiting.load(Ordering::Acquire)
    }

    /// Mark entry/exit of a CM wait loop.
    #[inline]
    pub fn set_waiting(&self, w: bool) {
        self.waiting.store(w, Ordering::Release);
    }

    // ---- window-manager metadata -----------------------------------------

    /// Frame in which the transaction becomes high priority, or
    /// [`NOT_WINDOWED`].
    #[inline]
    pub fn assigned_frame(&self) -> u64 {
        self.assigned_frame.load(Ordering::Acquire)
    }

    /// Set the assigned frame (window CM bookkeeping).
    #[inline]
    pub fn set_assigned_frame(&self, f: u64) {
        self.assigned_frame.store(f, Ordering::Release);
    }

    /// The random rank π₂ used by the window Online algorithm.
    #[inline]
    pub fn rank(&self) -> u32 {
        self.rank.load(Ordering::Acquire)
    }

    /// Re-roll π₂ (done at frame entry and after every abort).
    #[inline]
    pub fn set_rank(&self, r: u32) {
        self.rank.store(r, Ordering::Release);
    }

    /// Cached frame-clock pointer bits of the window this attempt runs in
    /// (0 = not windowed / not yet begun). Owner-thread reads only are
    /// meaningful; the pointer is valid for the duration of the attempt.
    #[inline]
    pub fn window_run_bits(&self) -> u64 {
        // Owner-thread read of an owner-thread write: no synchronization
        // needed, Relaxed suffices.
        self.window_run.load(Ordering::Relaxed)
    }

    /// Cache the window frame-clock pointer + barrier generation for this
    /// attempt (window CM bookkeeping, called from `on_begin`).
    #[inline]
    pub fn set_window_run(&self, ptr_bits: u64, generation: u64) {
        self.window_run.store(ptr_bits, Ordering::Relaxed);
        self.window_gen.store(generation, Ordering::Relaxed);
    }

    /// Barrier generation recorded with [`Self::window_run_bits`].
    #[inline]
    pub fn window_gen(&self) -> u64 {
        self.window_gen.load(Ordering::Relaxed)
    }

    /// Generic scratch slot for contention managers.
    #[inline]
    pub fn user_slot(&self) -> u64 {
        self.user_slot.load(Ordering::Acquire)
    }

    /// Store into the scratch slot.
    #[inline]
    pub fn set_user_slot(&self, v: u64) {
        self.user_slot.store(v, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> TxState {
        TxState::new(1, 1, 0, 0, 10, 10, clockns::now(), 0)
    }

    #[test]
    fn fresh_state_is_active_not_windowed() {
        let s = mk();
        assert!(s.is_active());
        assert_eq!(s.assigned_frame(), NOT_WINDOWED);
        assert_eq!(s.karma(), 0);
        assert!(!s.is_waiting());
    }

    #[test]
    fn abort_then_commit_fails() {
        let s = mk();
        assert!(s.abort());
        assert!(!s.try_commit());
        assert_eq!(s.status(), TxStatus::Aborted);
        // Double abort is a no-op returning false.
        assert!(!s.abort());
    }

    #[test]
    fn commit_then_abort_fails() {
        let s = mk();
        assert!(s.try_commit());
        assert!(!s.abort());
        assert_eq!(s.status(), TxStatus::Committed);
    }

    #[test]
    fn karma_accumulates_with_carryover() {
        let s = TxState::new(2, 1, 0, 1, 10, 12, clockns::now(), 7);
        assert_eq!(s.karma(), 7);
        s.add_karma();
        s.add_karma();
        assert_eq!(s.karma(), 9);
    }

    #[test]
    fn window_fields_roundtrip() {
        let s = mk();
        s.set_assigned_frame(42);
        s.set_rank(17);
        assert_eq!(s.assigned_frame(), 42);
        assert_eq!(s.rank(), 17);
    }

    #[test]
    fn waiting_flag_roundtrip() {
        let s = mk();
        s.set_waiting(true);
        assert!(s.is_waiting());
        s.set_waiting(false);
        assert!(!s.is_waiting());
    }

    #[test]
    fn reset_restores_a_terminal_recycled_state() {
        let mut s = TxState::new(5, 5, 1, 2, 30, 32, clockns::now(), 4);
        s.add_karma();
        s.set_assigned_frame(9);
        s.set_rank(3);
        s.set_waiting(true);
        assert!(s.try_commit());
        s.reset_for_attempt(77, 70, 2, 0, 40, 40, clockns::now(), 1);
        assert_eq!(s.attempt_id, 77);
        assert_eq!(s.txn_id, 70);
        assert_eq!(s.thread_id, 2);
        assert_eq!(s.attempt, 0);
        assert_eq!(s.ts, 40);
        assert!(s.is_active(), "reset must restore Active");
        assert_eq!(s.karma(), 1);
        assert_eq!(s.assigned_frame(), NOT_WINDOWED);
        assert_eq!(s.rank(), 0);
        assert!(!s.is_waiting());
    }
}
