//! Transaction status word.
//!
//! A transaction's lifecycle is `Active → Committed` or `Active → Aborted`,
//! decided by a single compare-and-swap on an atomic byte. The CAS is the
//! linearization point of both commit and (enemy-initiated) abort: whichever
//! transition lands first wins, and the loser's CAS fails. This is exactly
//! DSTM's rule that lets any transaction abort any other *active*
//! transaction without locks.

use std::sync::atomic::{AtomicU8, Ordering};

/// The three states of a transaction attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TxStatus {
    /// Still running; may be aborted by any other transaction.
    Active = 0,
    /// Successfully committed; its shadow copies are the current versions.
    Committed = 1,
    /// Aborted (by itself or an enemy); its shadow copies are discarded.
    Aborted = 2,
}

impl TxStatus {
    #[inline]
    fn from_u8(v: u8) -> TxStatus {
        match v {
            0 => TxStatus::Active,
            1 => TxStatus::Committed,
            2 => TxStatus::Aborted,
            _ => unreachable!("invalid status byte {v}"),
        }
    }

    /// True iff the transaction finished (committed or aborted).
    #[inline]
    pub fn is_terminal(self) -> bool {
        self != TxStatus::Active
    }
}

/// Atomic cell holding a [`TxStatus`].
#[derive(Debug)]
pub struct AtomicStatus(AtomicU8);

impl Default for AtomicStatus {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicStatus {
    /// New cell in the `Active` state.
    #[inline]
    pub fn new() -> Self {
        AtomicStatus(AtomicU8::new(TxStatus::Active as u8))
    }

    /// Current status (acquire: pairs with the release CAS of
    /// [`try_transition`](Self::try_transition) so that a `Committed`
    /// observation also sees the published shadow copies).
    #[inline]
    pub fn load(&self) -> TxStatus {
        TxStatus::from_u8(self.0.load(Ordering::Acquire))
    }

    /// Attempt the `Active → to` transition. Returns `true` on success.
    ///
    /// `to` must be a terminal state. Uses `AcqRel` so a successful commit
    /// publishes the transaction's writes and a successful abort observes
    /// everything the victim did.
    #[inline]
    pub fn try_transition(&self, to: TxStatus) -> bool {
        debug_assert!(to.is_terminal(), "can only transition to a terminal state");
        self.0
            .compare_exchange(
                TxStatus::Active as u8,
                to as u8,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_active() {
        let s = AtomicStatus::new();
        assert_eq!(s.load(), TxStatus::Active);
        assert!(!s.load().is_terminal());
    }

    #[test]
    fn commit_transition_succeeds_once() {
        let s = AtomicStatus::new();
        assert!(s.try_transition(TxStatus::Committed));
        assert_eq!(s.load(), TxStatus::Committed);
        // A second transition (e.g. a racing enemy abort) must fail.
        assert!(!s.try_transition(TxStatus::Aborted));
        assert_eq!(s.load(), TxStatus::Committed);
    }

    #[test]
    fn abort_transition_blocks_commit() {
        let s = AtomicStatus::new();
        assert!(s.try_transition(TxStatus::Aborted));
        assert!(!s.try_transition(TxStatus::Committed));
        assert_eq!(s.load(), TxStatus::Aborted);
    }

    #[test]
    fn racing_transitions_exactly_one_winner() {
        // Hammer the CAS from many threads; exactly one must win.
        for _ in 0..50 {
            let s = Arc::new(AtomicStatus::new());
            let wins: usize = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for i in 0..8 {
                    let s = Arc::clone(&s);
                    handles.push(scope.spawn(move || {
                        let to = if i % 2 == 0 {
                            TxStatus::Committed
                        } else {
                            TxStatus::Aborted
                        };
                        usize::from(s.try_transition(to))
                    }));
                }
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            });
            assert_eq!(wins, 1);
            assert!(s.load().is_terminal());
        }
    }

    #[test]
    fn terminal_predicate() {
        assert!(TxStatus::Committed.is_terminal());
        assert!(TxStatus::Aborted.is_terminal());
        assert!(!TxStatus::Active.is_terminal());
    }
}
