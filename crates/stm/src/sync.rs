//! Cooperative waiting helpers and a cancellable barrier.
//!
//! Contention managers back off by *waiting*, but on an oversubscribed
//! machine (the paper ran 32 threads on 4 cores; this reproduction may run
//! on fewer) a spinning waiter steals cycles from the very enemy it is
//! waiting for. [`cooperative_wait`] therefore always yields the CPU inside
//! its loop, and switches to a real sleep for long waits.
//!
//! [`CancellableBarrier`] synchronizes the start of each execution window
//! across worker threads. Unlike `std::sync::Barrier` it can be *cancelled*
//! so that timed experiment runs can terminate while some threads are
//! parked at a window boundary.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// An `f64` stored as its bit pattern in an [`AtomicU64`].
///
/// The window contention manager keeps per-thread floating-point
/// estimators (the contention-intensity EWMA, the contention estimate
/// `Cᵢ`) that are *written by one owner thread* but *read by anyone*
/// (diagnostics, window-boundary recalculation from another generation's
/// creator). A mutex would serialize the abort hot path for what is a
/// single word of data; this cell makes those updates wait-free.
///
/// There is deliberately no `fetch_add`/CAS loop: the single-writer
/// protocol means plain `load`/`store` pairs are race-free for the owner,
/// and readers only ever need a consistent snapshot of one word.
#[derive(Debug)]
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    /// A new cell holding `v`.
    pub const fn new(v: f64) -> Self {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }

    /// Read the current value.
    #[inline]
    pub fn load(&self, order: Ordering) -> f64 {
        f64::from_bits(self.0.load(order))
    }

    /// Overwrite the value (owner thread only under the single-writer
    /// protocol; any thread otherwise, last write wins).
    #[inline]
    pub fn store(&self, v: f64, order: Ordering) {
        self.0.store(v.to_bits(), order);
    }
}

/// Threshold above which we sleep instead of yield-spinning.
const SLEEP_THRESHOLD: Duration = Duration::from_micros(200);

/// Wait approximately `d`, always giving other threads a chance to run.
///
/// Short waits are yield-loops (fine-grained, keeps latency low); long
/// waits use `thread::sleep` (releases the core entirely — important when
/// hardware threads are oversubscribed).
pub fn cooperative_wait(d: Duration) {
    if d.is_zero() {
        std::thread::yield_now();
        return;
    }
    if d >= SLEEP_THRESHOLD {
        std::thread::sleep(d);
        return;
    }
    let deadline = Instant::now() + d;
    while Instant::now() < deadline {
        std::thread::yield_now();
    }
}

/// Yield-wait until `pred()` is true or `timeout` elapses.
/// Returns `true` iff the predicate fired.
pub fn wait_until(timeout: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if pred() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::yield_now();
    }
}

/// Why a [`CancellableBarrier::wait`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierWait {
    /// All parties arrived; proceed with the next window.
    Released,
    /// The barrier was cancelled (experiment shutting down).
    Cancelled,
    /// A [`CancellableBarrier::wait_timeout`] deadline elapsed before all
    /// parties arrived — typically a party-count misconfiguration (fewer
    /// threads than the barrier expects). The timed-out waiter withdrew
    /// its arrival, so the barrier stays consistent for the remaining
    /// parties.
    TimedOut,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
}

/// A reusable barrier for `parties` threads that can be cancelled.
///
/// Worker threads call [`wait`](Self::wait) at every window boundary; the
/// harness calls [`cancel`](Self::cancel) when the measurement interval
/// ends, releasing all parked threads immediately.
pub struct CancellableBarrier {
    parties: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
    cancelled: AtomicBool,
}

impl CancellableBarrier {
    /// Barrier for `parties` participants (must be ≥ 1).
    pub fn new(parties: usize) -> Self {
        assert!(parties >= 1, "barrier needs at least one party");
        CancellableBarrier {
            parties,
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
            cancelled: AtomicBool::new(false),
        }
    }

    /// Number of participants.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Park until all parties arrive or the barrier is cancelled.
    pub fn wait(&self) -> BarrierWait {
        if self.cancelled.load(Ordering::Acquire) {
            return BarrierWait::Cancelled;
        }
        let mut st = self.state.lock();
        let gen = st.generation;
        st.arrived += 1;
        if st.arrived == self.parties {
            st.arrived = 0;
            st.generation += 1;
            self.cv.notify_all();
            return BarrierWait::Released;
        }
        while st.generation == gen && !self.cancelled.load(Ordering::Acquire) {
            self.cv.wait(&mut st);
        }
        if st.generation == gen {
            // Cancelled while parked: take ourselves out of the count so a
            // later (never expected, but harmless) reuse stays consistent.
            st.arrived = st.arrived.saturating_sub(1);
            BarrierWait::Cancelled
        } else {
            BarrierWait::Released
        }
    }

    /// Like [`wait`](Self::wait) but give up after `timeout`.
    ///
    /// Returns [`BarrierWait::TimedOut`] if the other parties did not all
    /// arrive in time; the caller withdrew from the arrival count, so
    /// parties that show up later still synchronize correctly among
    /// themselves. A release or cancellation racing the deadline wins over
    /// the timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> BarrierWait {
        if self.cancelled.load(Ordering::Acquire) {
            return BarrierWait::Cancelled;
        }
        let mut st = self.state.lock();
        let gen = st.generation;
        st.arrived += 1;
        if st.arrived == self.parties {
            st.arrived = 0;
            st.generation += 1;
            self.cv.notify_all();
            return BarrierWait::Released;
        }
        let deadline = Instant::now() + timeout;
        while st.generation == gen && !self.cancelled.load(Ordering::Acquire) {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() || self.cv.wait_for(&mut st, remaining).timed_out() {
                // Re-check under the lock: a release/cancel that raced the
                // timeout takes precedence.
                if st.generation != gen {
                    return BarrierWait::Released;
                }
                st.arrived = st.arrived.saturating_sub(1);
                return if self.cancelled.load(Ordering::Acquire) {
                    BarrierWait::Cancelled
                } else {
                    BarrierWait::TimedOut
                };
            }
        }
        if st.generation == gen {
            st.arrived = st.arrived.saturating_sub(1);
            BarrierWait::Cancelled
        } else {
            BarrierWait::Released
        }
    }

    /// Parties currently parked at the barrier (diagnostics: the error
    /// message for a timed-out window names how many threads showed up).
    pub fn arrived(&self) -> usize {
        self.state.lock().arrived
    }

    /// Release all current and future waiters with `Cancelled`.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
        let _guard = self.state.lock();
        self.cv.notify_all();
    }

    /// True once [`cancel`](Self::cancel) was called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn cooperative_wait_short_and_long() {
        let t0 = Instant::now();
        cooperative_wait(Duration::from_micros(20));
        assert!(t0.elapsed() >= Duration::from_micros(20));

        let t0 = Instant::now();
        cooperative_wait(Duration::from_millis(1));
        assert!(t0.elapsed() >= Duration::from_millis(1));
    }

    #[test]
    fn wait_until_predicate_fires() {
        let mut n = 0;
        assert!(wait_until(Duration::from_secs(1), || {
            n += 1;
            n >= 3
        }));
    }

    #[test]
    fn wait_until_times_out() {
        assert!(!wait_until(Duration::from_millis(5), || false));
    }

    #[test]
    fn barrier_releases_all_parties() {
        let b = Arc::new(CancellableBarrier::new(4));
        let results: Vec<BarrierWait> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let b = Arc::clone(&b);
                    s.spawn(move || b.wait())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|r| *r == BarrierWait::Released));
    }

    #[test]
    fn barrier_is_reusable_across_generations() {
        let b = Arc::new(CancellableBarrier::new(2));
        for _ in 0..10 {
            let res: Vec<BarrierWait> = std::thread::scope(|s| {
                let h1 = {
                    let b = Arc::clone(&b);
                    s.spawn(move || b.wait())
                };
                let h2 = {
                    let b = Arc::clone(&b);
                    s.spawn(move || b.wait())
                };
                vec![h1.join().unwrap(), h2.join().unwrap()]
            });
            assert!(res.iter().all(|r| *r == BarrierWait::Released));
        }
    }

    #[test]
    fn cancel_releases_parked_waiter() {
        let b = Arc::new(CancellableBarrier::new(2));
        let res = std::thread::scope(|s| {
            let waiter = {
                let b = Arc::clone(&b);
                s.spawn(move || b.wait())
            };
            // Give the waiter time to park, then cancel.
            std::thread::sleep(Duration::from_millis(10));
            b.cancel();
            waiter.join().unwrap()
        });
        assert_eq!(res, BarrierWait::Cancelled);
        // Future waits return immediately.
        assert_eq!(b.wait(), BarrierWait::Cancelled);
        assert!(b.is_cancelled());
    }

    #[test]
    fn cancel_wakes_current_and_future_waiters() {
        let b = Arc::new(CancellableBarrier::new(8));
        let results: Vec<BarrierWait> = std::thread::scope(|s| {
            // Three waiters park *before* the cancel…
            let early: Vec<_> = (0..3)
                .map(|_| {
                    let b = Arc::clone(&b);
                    s.spawn(move || b.wait())
                })
                .collect();
            std::thread::sleep(Duration::from_millis(10));
            b.cancel();
            // …and three more arrive only *after* it.
            let late: Vec<_> = (0..3)
                .map(|_| {
                    let b = Arc::clone(&b);
                    s.spawn(move || b.wait())
                })
                .collect();
            early
                .into_iter()
                .chain(late)
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(
            results.iter().all(|r| *r == BarrierWait::Cancelled),
            "cancel must release both parked and future waiters: {results:?}"
        );
        // Timed waits observe the cancellation too.
        assert_eq!(
            b.wait_timeout(Duration::from_secs(5)),
            BarrierWait::Cancelled
        );
    }

    #[test]
    fn wait_timeout_times_out_when_parties_missing() {
        let b = CancellableBarrier::new(2);
        let t0 = Instant::now();
        let res = b.wait_timeout(Duration::from_millis(20));
        assert_eq!(res, BarrierWait::TimedOut);
        assert!(t0.elapsed() >= Duration::from_millis(20));
        // The timed-out waiter withdrew its arrival…
        assert_eq!(b.arrived(), 0);
        // …so a later full complement still releases normally.
        let b = Arc::new(b);
        let results: Vec<BarrierWait> = std::thread::scope(|s| {
            (0..2)
                .map(|_| {
                    let b = Arc::clone(&b);
                    s.spawn(move || b.wait_timeout(Duration::from_secs(5)))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(results.iter().all(|r| *r == BarrierWait::Released));
    }

    #[test]
    fn wait_timeout_releases_when_all_arrive() {
        let b = Arc::new(CancellableBarrier::new(3));
        let results: Vec<BarrierWait> = std::thread::scope(|s| {
            (0..3)
                .map(|i| {
                    let b = Arc::clone(&b);
                    s.spawn(move || {
                        // Stagger arrivals; all still make the deadline.
                        std::thread::sleep(Duration::from_millis(2 * i));
                        b.wait_timeout(Duration::from_secs(5))
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(results.iter().all(|r| *r == BarrierWait::Released));
    }

    #[test]
    fn wait_timeout_cancelled_while_parked() {
        let b = Arc::new(CancellableBarrier::new(2));
        let res = std::thread::scope(|s| {
            let waiter = {
                let b = Arc::clone(&b);
                s.spawn(move || b.wait_timeout(Duration::from_secs(30)))
            };
            std::thread::sleep(Duration::from_millis(10));
            b.cancel();
            waiter.join().unwrap()
        });
        assert_eq!(res, BarrierWait::Cancelled);
    }
}
