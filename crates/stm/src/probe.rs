//! Debug-build hot-path operation counters.
//!
//! The scan-free claims of the sharded registries ("`try_advance` and
//! `conflicting_reader` are O(active threads), not O(capacity)") and the
//! lazy clock ("read-only and blind-write commits perform zero
//! `VERSION_CLOCK` RMW ops") are asserted by unit tests that count the
//! actual operations, not by inspection. The counters are thread-local
//! `Cell`s — tests in one binary run concurrently, and a process-global
//! counter would make every assertion racy — and exist only under
//! `debug_assertions`, so release hot paths carry zero probe cost.
//!
//! Each `take_*` returns the calling thread's count since its previous
//! `take_*` call (read-and-reset), which is the natural shape for a
//! before/after delta around one probed operation.

use std::cell::Cell;

thread_local! {
    static EPOCH_SLOT_LOADS: Cell<u64> = const { Cell::new(0) };
    static READER_SLOT_LOADS: Cell<u64> = const { Cell::new(0) };
    static CLOCK_RMWS: Cell<u64> = const { Cell::new(0) };
}

/// Record one epoch-slot load performed by [`crate::epoch::try_advance`].
#[inline]
pub(crate) fn count_epoch_slot_load() {
    let _ = EPOCH_SLOT_LOADS.try_with(|c| c.set(c.get() + 1));
}

/// Record one reader-slot word load performed by a conflict scan.
#[inline]
pub(crate) fn count_reader_slot_load() {
    let _ = READER_SLOT_LOADS.try_with(|c| c.set(c.get() + 1));
}

/// Record one RMW operation on the lazy engine's global version clock.
#[inline]
pub(crate) fn count_clock_rmw() {
    let _ = CLOCK_RMWS.try_with(|c| c.set(c.get() + 1));
}

/// Epoch-slot loads by this thread since the last call; resets to 0.
pub fn take_epoch_slot_loads() -> u64 {
    EPOCH_SLOT_LOADS.with(|c| c.replace(0))
}

/// Reader-slot word loads by this thread since the last call; resets to 0.
pub fn take_reader_slot_loads() -> u64 {
    READER_SLOT_LOADS.with(|c| c.replace(0))
}

/// Version-clock RMW ops by this thread since the last call; resets to 0.
pub fn take_clock_rmws() -> u64 {
    CLOCK_RMWS.with(|c| c.replace(0))
}
