//! Exhaustive interleaving model of the epoch reclamation protocol.
//!
//! The vendored offline dependency set has no `loom` and the toolchain
//! image has no sanitizer runtimes, so this file plays that role for the
//! one algorithm in the crate whose correctness is pure interleaving
//! logic: the epoch free rule in `wtm_stm::epoch`. It models a minimal
//! reader (pin → validate → load → dereference → unpin) and a minimal
//! writer (swap → retire → advance → advance → free-if-eligible) as two
//! small programs over shared state, then enumerates **every**
//! interleaving by depth-first search and asserts no schedule lets the
//! reader dereference a freed object.
//!
//! The model is sequentially consistent by construction (each step is one
//! atomic transition), so it checks the *epoch counting* logic — the
//! free rule `global >= retired_epoch + 2` and the advance gate "all
//! pinned slots are at the current epoch" — not the hardware fence
//! placement (that argument lives in the `epoch` module's comments). The
//! negative control below drops the free lag to 1 and shows the model
//! then *does* find a use-after-free, i.e. the assertion has teeth.

/// Shared state of the two-thread model. `false`/`true` in `shared`
/// and `loaded` name the old object A and its replacement B.
#[derive(Clone, Copy)]
struct State {
    /// Global epoch counter.
    global: u64,
    /// The reader's published epoch slot; 0 = unpinned. (The real slot
    /// stores the epoch value directly with 0 reserved, same as here.)
    slot: u64,
    /// Which object the shared pointer currently publishes.
    shared_is_b: bool,
    /// What the reader's local pointer holds after its load.
    loaded_is_b: Option<bool>,
    /// Epoch at which the writer retired A (None until retired).
    retired_at: Option<u64>,
    /// Whether A has been reclaimed.
    freed_a: bool,
    /// Program counters.
    r_pc: u8,
    w_pc: u8,
}

const R_DONE: u8 = 5;
const W_DONE: u8 = 5;

/// Advance gate: the slot is either unpinned or already at the current
/// epoch. (One reader suffices: additional readers only strengthen the
/// gate, never weaken it.)
fn advance_allowed(s: &State) -> bool {
    s.slot == 0 || s.slot == s.global
}

fn step_reader(mut s: State, lag: u64, trace: &mut Vec<&'static str>) -> Option<State> {
    match s.r_pc {
        // Pin: publish the observed global epoch into the slot.
        0 => {
            s.slot = s.global;
            s.r_pc = 1;
            trace.push("R:store-slot");
        }
        // Validate: the SeqCst-fence re-check. If the global moved after
        // the store, re-publish (the real code loops the same way).
        1 => {
            if s.global == s.slot {
                s.r_pc = 2;
                trace.push("R:validate-ok");
            } else {
                s.r_pc = 0;
                trace.push("R:validate-retry");
            }
        }
        // Load the shared pointer.
        2 => {
            s.loaded_is_b = Some(s.shared_is_b);
            s.r_pc = 3;
            trace.push("R:load");
        }
        // Dereference: the safety property. Only object A is ever
        // retired, so only a loaded A can be dangling.
        3 => {
            if s.loaded_is_b == Some(false) {
                assert!(
                    !s.freed_a,
                    "use-after-free (lag {lag}): reader dereferenced A after reclamation\n\
                     schedule: {trace:?}"
                );
            }
            s.r_pc = 4;
            trace.push("R:deref");
        }
        // Unpin.
        4 => {
            s.slot = 0;
            s.r_pc = R_DONE;
            trace.push("R:unpin");
        }
        _ => return None,
    }
    Some(s)
}

fn step_writer(mut s: State, lag: u64, trace: &mut Vec<&'static str>) -> Option<State> {
    match s.w_pc {
        // Unlink A by publishing B.
        0 => {
            s.shared_is_b = true;
            s.w_pc = 1;
            trace.push("W:swap");
        }
        // Retire A at the current epoch.
        1 => {
            s.retired_at = Some(s.global);
            s.w_pc = 2;
            trace.push("W:retire");
        }
        // Two advance attempts. An attempt that finds the gate closed is
        // simply spent — the schedules where the writer "waits" for the
        // reader and advances later are explored as the interleavings
        // that run reader steps first.
        2 | 3 => {
            if advance_allowed(&s) {
                s.global += 1;
                trace.push("W:advance-ok");
            } else {
                trace.push("W:advance-gated");
            }
            s.w_pc += 1;
        }
        // Free A if the lag rule says it is eligible.
        4 => {
            if let Some(r) = s.retired_at {
                if s.global >= r + lag {
                    s.freed_a = true;
                    trace.push("W:free");
                } else {
                    trace.push("W:free-ineligible");
                }
            }
            s.w_pc = W_DONE;
        }
        _ => return None,
    }
    Some(s)
}

/// DFS over all interleavings. Returns (schedules explored, schedules in
/// which A was actually freed). Panics (via `step_reader`) on any
/// schedule exhibiting a use-after-free.
fn explore(s: State, lag: u64, trace: &mut Vec<&'static str>) -> (u64, u64) {
    let mut schedules = 0;
    let mut freed = 0;
    let r_live = s.r_pc != R_DONE;
    let w_live = s.w_pc != W_DONE;
    if !r_live && !w_live {
        return (1, u64::from(s.freed_a));
    }
    if r_live {
        let depth = trace.len();
        if let Some(next) = step_reader(s, lag, trace) {
            let (n, f) = explore(next, lag, trace);
            schedules += n;
            freed += f;
        }
        trace.truncate(depth);
    }
    if w_live {
        let depth = trace.len();
        if let Some(next) = step_writer(s, lag, trace) {
            let (n, f) = explore(next, lag, trace);
            schedules += n;
            freed += f;
        }
        trace.truncate(depth);
    }
    (schedules, freed)
}

fn initial() -> State {
    State {
        global: 2, // the real GLOBAL starts at 2 (0 is the unpinned sentinel)
        slot: 0,
        shared_is_b: false,
        loaded_is_b: None,
        retired_at: None,
        freed_a: false,
        r_pc: 0,
        w_pc: 0,
    }
}

#[test]
fn no_interleaving_frees_a_pinned_object_under_the_two_epoch_lag() {
    let mut trace = Vec::new();
    let (schedules, freed) = explore(initial(), 2, &mut trace);
    // Sanity on the model itself: the DFS must actually branch, and the
    // free path must be reachable (a model in which A is never freed
    // would pass vacuously).
    assert!(schedules > 100, "model explored only {schedules} schedules");
    assert!(
        freed > 0,
        "free never became eligible — the model is vacuous"
    );
}

#[test]
fn negative_control_a_one_epoch_lag_is_unsound() {
    // With lag 1 the free rule is wrong: pin at epoch e, writer retires
    // at e and advances once (allowed, since slot == global), making A
    // eligible while the reader still holds a pre-swap pointer. The
    // model must find that schedule — proving the main test's assertion
    // is load-bearing.
    let mut trace = Vec::new();
    // Silence the expected panic's backtrace spam while keeping any
    // unexpected panic from other threads visible afterwards.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let found = std::panic::catch_unwind(move || explore(initial(), 1, &mut trace)).is_err();
    std::panic::set_hook(hook);
    assert!(
        found,
        "the model failed to find the use-after-free a 1-epoch lag permits"
    );
}
