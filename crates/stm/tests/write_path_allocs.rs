//! Allocation-regression test for the write/commit hot path.
//!
//! Installs the vendored counting allocator as the test binary's global
//! allocator and proves that, after warmup, transactions writing
//! `u64`-sized values perform **zero** heap allocations and deallocations:
//!
//! * write-set entries are stored inline (no `Box<dyn ErasedWrite>`),
//! * published `Arc` versions are recycled through `ObjState::spare`,
//! * `TxState` attempts come from the per-thread pool,
//! * stats are staged in pre-existing atomics.
//!
//! The counters are per-thread, so the libtest harness running other
//! tests concurrently cannot pollute the measurement — but this file
//! intentionally contains a single `#[test]` anyway so the assertion
//! failure output is unambiguous.

use wtm_stm::{CmDispatch, Stm, TVar};

#[global_allocator]
static ALLOC: counting_alloc::CountingAlloc = counting_alloc::CountingAlloc;

#[test]
fn write_commit_path_is_allocation_free_for_small_values() {
    let stm = Stm::with_dispatch(CmDispatch::AbortSelf, 1);
    let ctx = stm.thread(0);
    let a: TVar<u64> = TVar::new(0);
    let b: TVar<u64> = TVar::new(0);

    // Warmup: populate the TxState pool, the per-object spare-Arc slots,
    // write-set capacity, and the lazily-initialised clock. The warmup
    // runs the *same* transaction mix as the measured region so the pool
    // reaches the mix's own steady-state rotation (a released state stays
    // shared until the registry republish and any lazy locator collapses
    // drain, so the rotation depends on the interleaving). 96 pairs also
    // cross the stats flush threshold several times so the flush path
    // itself is inside the measured region's steady state.
    for _ in 0..96 {
        ctx.atomic(|tx| {
            let v = *tx.read(&a)?;
            tx.write(&a, v + 1)
        });
        ctx.atomic(|tx| {
            let v = *tx.read(&a)?;
            tx.write(&a, v)?;
            tx.write(&b, v)
        });
    }

    counting_alloc::reset();
    const N: u64 = 1_000;
    for _ in 0..N {
        // increment_txn shape: read + write on one object...
        ctx.atomic(|tx| {
            let v = *tx.read(&a)?;
            tx.write(&a, v + 1)
        });
        // ...and a two-object write txn for the multi-entry write set.
        ctx.atomic(|tx| {
            let v = *tx.read(&a)?;
            tx.write(&a, v)?;
            tx.write(&b, v)
        });
    }
    let allocs = counting_alloc::allocs();
    let deallocs = counting_alloc::deallocs();

    assert_eq!(
        (allocs, deallocs),
        (0, 0),
        "write/commit path allocated: {allocs} allocs / {deallocs} deallocs \
         over {N} read+write transaction pairs (expected zero after warmup)"
    );

    // The transactions above really ran.
    assert_eq!(ctx.atomic(|tx| tx.read(&a).map(|v| *v)), 96 + N);
}
