//! Drop-order regression test for thread teardown.
//!
//! A worker thread exits in the middle of a steady transaction loop. At
//! that point its most recent `TxState`s are referenced by three
//! thread-local owners whose destructors run in an order libstd does not
//! specify: the `TxState` pool (`stm.rs`), the reader-slot guard
//! (`slots.rs`, which retires the still-published state), and the epoch
//! participant (`epoch.rs`, which owns the bag those retirements sit
//! in). Whatever the order, nothing may leak: every deferred reference
//! must reach the epoch layer's orphan list and be released by a
//! *surviving* thread's quiescence. The regression this pins down is the
//! pool dropping its slots without flushing the thread's epoch bag — the
//! retired registry references would then sit in a dead thread's TLS
//! forever and the `Weak` upgrades below would never fail.

use std::sync::{Arc, Weak};

use wtm_stm::{epoch, CmDispatch, Stm, TVar, TxState};

/// Quiesce from the surviving thread until `cond` holds (bounded).
fn drain_until(cond: impl Fn() -> bool) -> bool {
    for _ in 0..100_000 {
        if cond() {
            return true;
        }
        epoch::quiesce();
        std::thread::yield_now();
    }
    cond()
}

#[test]
fn exiting_thread_hands_its_deferred_states_to_survivors() {
    let stm = Arc::new(Stm::with_dispatch(CmDispatch::AbortSelf, 2));
    let tv: TVar<u64> = TVar::new(0);

    // The worker returns a Weak for every attempt it ran; it exits
    // immediately after the last commit, with the final state still
    // published in the registry and earlier retirements still in its
    // epoch bag.
    let weaks: Vec<Weak<TxState>> = std::thread::scope(|s| {
        s.spawn(|| {
            let ctx = stm.thread(1);
            let mut weaks = Vec::new();
            for i in 0..8u64 {
                ctx.atomic(|tx| {
                    weaks.push(Arc::downgrade(tx.state()));
                    tx.write(&tv, i)
                });
            }
            weaks
        })
        .join()
        .unwrap()
    });
    assert_eq!(weaks.len(), 8);

    // The worker is gone; only this thread can run quiescence now. Every
    // one of the worker's attempts — including the last, whose registry
    // reference was retired by the slot guard at thread exit — must
    // become unreachable once the orphaned bags drain.
    let all_dead = drain_until(|| weaks.iter().all(|w| w.upgrade().is_none()));
    let alive = weaks.iter().filter(|w| w.upgrade().is_some()).count();
    assert!(
        all_dead,
        "{alive}/8 of the dead thread's TxStates are still reachable — \
         its deferred references leaked instead of draining through the \
         epoch orphan list"
    );
    assert_eq!(
        epoch::orphan_count(),
        0,
        "orphaned bag items must be consumed, not accumulate"
    );

    // The engine itself must still be fully usable from the survivor.
    let ctx = stm.thread(0);
    let v = ctx.atomic(|tx| tx.read(&tv).map(|v| *v));
    assert_eq!(v, 7);
}
