//! Multi-thread stress for the epoch reclamation layer.
//!
//! A writer republishes a shared canary object at full speed, retiring
//! each displaced one through [`wtm_stm::epoch`]; reader threads
//! continuously dereference the current canary under an epoch pin. The
//! canary's `Drop` poisons its magic word, so any reclamation that runs
//! while a pinned reader can still reach the object trips the readers'
//! magic assertion (with address reuse the poisoned word is typically
//! overwritten, but the assertion plus the drop-count reconciliation
//! below still catch double frees and lost retirements deterministically).
//!
//! The test also bounds the garbage backlog: with readers pinning and
//! unpinning around every dereference, epoch advance must keep making
//! progress, so retired-but-not-freed objects may not accumulate without
//! bound. This is the liveness half of the reclamation contract — the
//! safety half (no premature free) is the magic word plus the exhaustive
//! interleaving model in `epoch_model.rs`.
//!
//! Everything here runs in one test function: integration tests in one
//! file share the process-global epoch, and a second test's pins would
//! make the backlog bound meaningless.

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

use wtm_stm::epoch;

const MAGIC: u64 = 0x5ca1_ab1e_c0ff_ee00;
const POISON: u64 = 0xdead_beef_dead_beef;

static DROPS: AtomicUsize = AtomicUsize::new(0);

struct Canary {
    magic: u64,
    seq: u64,
}

impl Drop for Canary {
    fn drop(&mut self) {
        assert_eq!(
            self.magic, MAGIC,
            "canary {} dropped twice or corrupted",
            self.seq
        );
        self.magic = POISON;
        DROPS.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn readers_never_observe_reclaimed_canaries() {
    const WRITES: usize = 20_000;
    const READERS: usize = 3;
    // The writer's bag collects every 64 retires; a few batches may pile
    // up while a preempted reader holds a pin, but once the writer yields
    // and the reader unpins, the backlog must drain below this bound.
    const BACKLOG_BOUND: u64 = 1024;

    let shared = Arc::new(AtomicPtr::new(
        Arc::into_raw(Arc::new(Canary {
            magic: MAGIC,
            seq: 0,
        }))
        .cast_mut(),
    ));
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        for _ in 0..READERS {
            let shared = Arc::clone(&shared);
            let done = Arc::clone(&done);
            s.spawn(move || {
                let mut last_seq = 0u64;
                while !done.load(Ordering::Acquire) {
                    let _g = epoch::pin();
                    let p = shared.load(Ordering::Acquire);
                    // SAFETY: `p` was published from `Arc::into_raw` and
                    // is retired only after being unlinked; the pin above
                    // was taken before the load, so the epoch free rule
                    // keeps the allocation alive for this dereference.
                    let c = unsafe { &*p };
                    assert_eq!(c.magic, MAGIC, "reader saw a reclaimed canary");
                    // The single writer publishes in order, so each
                    // reader must observe a non-decreasing sequence.
                    assert!(
                        c.seq >= last_seq,
                        "canary sequence went backwards: {} -> {}",
                        last_seq,
                        c.seq
                    );
                    last_seq = c.seq;
                }
            });
        }

        let retired_before = epoch::retired_count();
        let freed_before = epoch::freed_count();
        for seq in 1..=WRITES as u64 {
            let fresh = Arc::into_raw(Arc::new(Canary { magic: MAGIC, seq })).cast_mut();
            let prev = shared.swap(fresh, Ordering::AcqRel);
            // SAFETY: `prev` is the unique unlinked publication reference.
            epoch::retire_arc(unsafe { Arc::from_raw(prev) });
            if seq % 256 == 0 {
                // Liveness with bounded patience: a single-CPU scheduler
                // can park a reader mid-pin for a whole writer timeslice,
                // so the backlog is allowed to spike — but it must drain
                // once the writer yields, because readers unpin around
                // every dereference. Only a genuinely stuck pin keeps the
                // backlog high through 10k yields.
                let backlog = || {
                    (epoch::retired_count() - retired_before)
                        .saturating_sub(epoch::freed_count() - freed_before)
                };
                let mut patience = 0;
                while backlog() > BACKLOG_BOUND {
                    epoch::quiesce();
                    std::thread::yield_now();
                    patience += 1;
                    assert!(
                        patience < 10_000,
                        "garbage backlog stuck at {} after {} retires",
                        backlog(),
                        seq
                    );
                }
            }
        }
        done.store(true, Ordering::Release);
    });

    // Reconciliation: every canary except the still-published last one
    // must eventually drop, once the readers are gone and quiescence
    // drains the bags.
    let mut spins = 0;
    while DROPS.load(Ordering::SeqCst) < WRITES {
        epoch::quiesce();
        spins += 1;
        assert!(spins < 100_000, "retired canaries never drained");
        std::thread::yield_now();
    }
    assert_eq!(DROPS.load(Ordering::SeqCst), WRITES);

    // Drop the final publication and confirm the total: no canary was
    // leaked, none was dropped twice (the Drop impl asserts the magic).
    let last = shared.swap(std::ptr::null_mut(), Ordering::AcqRel);
    // SAFETY: the writer is done; `last` is the unique publication ref.
    drop(unsafe { Arc::from_raw(last) });
    assert_eq!(DROPS.load(Ordering::SeqCst), WRITES + 1);
}
