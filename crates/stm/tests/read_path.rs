//! Stress tests for the lock-free read path: many concurrent readers over
//! a shared working set while a writer mutates it, checking snapshot
//! consistency (no torn multi-object reads) and zero lost updates.
//!
//! These run in the default test profile too, but they are sized to be
//! meaningful under `--release`, where the fast path's raciest
//! interleavings actually occur.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;

use wtm_stm::{CmDispatch, EngineKind, Stm, TVar};

/// Readers sum a pair of variables that a writer only ever updates
/// together preserving `a + b == TOTAL`. Any torn read — a value pair from
/// two different committed states — breaks the invariant.
#[test]
fn readers_never_see_torn_writes() {
    for engine in EngineKind::ALL {
        readers_never_see_torn_writes_on(engine);
    }
}

fn readers_never_see_torn_writes_on(engine: EngineKind) {
    const TOTAL: u64 = 1_000;
    const READERS: usize = 6;
    const WRITER_TXNS: u64 = 2_000;
    let stm = Stm::with_engine(CmDispatch::AbortEnemy, READERS + 1, engine);
    let a: TVar<u64> = TVar::new(TOTAL);
    let b: TVar<u64> = TVar::new(0);
    let done = AtomicBool::new(false);
    let barrier = Barrier::new(READERS + 1);
    std::thread::scope(|s| {
        for r in 0..READERS {
            let ctx = stm.thread(r + 1);
            let (a, b) = (a.clone(), b.clone());
            let done = &done;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                // do-while: on a loaded box the writer can finish before a
                // descheduled reader runs, so check `done` only after a
                // read — every reader validates at least one snapshot.
                loop {
                    let (va, vb) = ctx.atomic(|tx| {
                        let va = *tx.read(&a)?;
                        let vb = *tx.read(&b)?;
                        Ok((va, vb))
                    });
                    assert_eq!(va + vb, TOTAL, "torn read: a={va} b={vb}");
                    if done.load(Ordering::Relaxed) {
                        break;
                    }
                }
            });
        }
        let ctx = stm.thread(0);
        barrier.wait();
        for i in 1..=WRITER_TXNS {
            let delta = i % 7;
            ctx.atomic(|tx| {
                let va = *tx.read(&a)?;
                if va >= delta {
                    tx.write(&a, va - delta)?;
                    let vb = *tx.read(&b)?;
                    tx.write(&b, vb + delta)?;
                } else {
                    tx.write(&a, TOTAL)?;
                    tx.write(&b, 0)?;
                }
                Ok(())
            });
        }
        done.store(true, Ordering::Relaxed);
    });
    assert_eq!(*a.sample() + *b.sample(), TOTAL);
}

/// Concurrent increments from every thread (read + write on one hot
/// object): the final value proves no update was lost even while other
/// threads hammer the lock-free read path on the same variable.
#[test]
fn no_lost_updates_with_concurrent_fast_readers() {
    for engine in EngineKind::ALL {
        no_lost_updates_with_concurrent_fast_readers_on(engine);
    }
}

fn no_lost_updates_with_concurrent_fast_readers_on(engine: EngineKind) {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 300;
    let stm = Stm::with_engine(CmDispatch::AbortEnemy, THREADS, engine);
    let counter: TVar<u64> = TVar::new(0);
    let observed_max = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let ctx = stm.thread(t);
            let counter = counter.clone();
            let observed_max = &observed_max;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    if t % 2 == 0 || i % 3 != 0 {
                        ctx.atomic(|tx| {
                            let v = *tx.read(&counter)?;
                            tx.write(&counter, v + 1)
                        });
                    } else {
                        // Interleave pure reads: they must never go back
                        // in time on a single thread (their own monotonic
                        // observation of a counter that only grows).
                        let v = ctx.atomic(|tx| tx.read(&counter).map(|v| *v));
                        observed_max.fetch_max(v, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let increments: u64 = (0..THREADS as u64)
        .map(|t| {
            if t % 2 == 0 {
                PER_THREAD
            } else {
                PER_THREAD - PER_THREAD.div_ceil(3)
            }
        })
        .sum();
    assert_eq!(*counter.sample(), increments, "lost update detected");
    assert!(observed_max.load(Ordering::Relaxed) <= increments);
}

/// Read-only transactions across many objects and threads: every snapshot
/// must be internally consistent while writers rotate values through the
/// set (each write txn shifts all variables by the same amount, keeping
/// their pairwise differences fixed).
#[test]
fn multi_object_snapshots_stay_consistent() {
    for engine in EngineKind::ALL {
        multi_object_snapshots_stay_consistent_on(engine);
    }
}

fn multi_object_snapshots_stay_consistent_on(engine: EngineKind) {
    const VARS: usize = 8;
    const READERS: usize = 4;
    const ROUNDS: u64 = 800;
    let stm = Stm::with_engine(CmDispatch::AbortEnemy, READERS + 1, engine);
    let vars: Vec<TVar<u64>> = (0..VARS as u64).map(TVar::new).collect();
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        for r in 0..READERS {
            let ctx = stm.thread(r + 1);
            let vars = vars.clone();
            let done = &done;
            s.spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    let vals = ctx.atomic(|tx| {
                        let mut vals = Vec::with_capacity(VARS);
                        for v in &vars {
                            vals.push(*tx.read(v)?);
                        }
                        Ok(vals)
                    });
                    for (i, v) in vals.iter().enumerate() {
                        assert_eq!(v - vals[0], i as u64, "inconsistent snapshot: {vals:?}");
                    }
                }
            });
        }
        let ctx = stm.thread(0);
        for round in 1..=ROUNDS {
            ctx.atomic(|tx| {
                for (i, v) in vars.iter().enumerate() {
                    tx.write(v, round + i as u64)?;
                }
                Ok(())
            });
        }
        done.store(true, Ordering::Relaxed);
    });
    for (i, v) in vars.iter().enumerate() {
        assert_eq!(*v.sample(), ROUNDS + i as u64);
    }
}

/// A read-only workload must keep committing while a writer repeatedly
/// owns and releases the object — exercising the seqlock fallback (odd
/// sequence → mutex path) without ever returning a stale value older than
/// the last committed write.
#[test]
fn fallback_path_reads_are_fresh_after_commit() {
    for engine in EngineKind::ALL {
        fallback_path_reads_are_fresh_after_commit_on(engine);
    }
}

fn fallback_path_reads_are_fresh_after_commit_on(engine: EngineKind) {
    const ROUNDS: u64 = 1_500;
    let stm = Stm::with_engine(CmDispatch::AbortSelf, 2, engine);
    let v: TVar<u64> = TVar::new(0);
    let barrier = Barrier::new(2);
    std::thread::scope(|s| {
        let writer = stm.thread(0);
        let vv = v.clone();
        let barrier_ref = &barrier;
        s.spawn(move || {
            barrier_ref.wait();
            for i in 1..=ROUNDS {
                writer.atomic(|tx| tx.write(&vv, i));
            }
        });
        let reader = stm.thread(1);
        barrier.wait();
        let mut last = 0u64;
        loop {
            let cur = reader.atomic(|tx| tx.read(&v).map(|x| *x));
            assert!(cur >= last, "read went back in time: {last} -> {cur}");
            last = cur;
            if cur == ROUNDS {
                break;
            }
        }
    });
}
