//! Engine-level edge cases and stress tests: locator collapse, reader
//! list hygiene, self-conflict freedom, commit/abort races, and metric
//! accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use wtm_stm::cm::AbortSelfManager;
use wtm_stm::sync::cooperative_wait;
use wtm_stm::{
    CmDispatch, ConflictKind, ContentionManager, EngineKind, Resolution, Stm, TVar, TxState,
};

#[test]
fn read_then_write_same_object_is_not_a_self_conflict() {
    for engine in EngineKind::ALL {
        read_then_write_same_object_is_not_a_self_conflict_on(engine);
    }
}

fn read_then_write_same_object_is_not_a_self_conflict_on(engine: EngineKind) {
    let stm = Stm::with_engine(CmDispatch::AbortSelf, 1, engine);
    let ctx = stm.thread(0);
    let v: TVar<u64> = TVar::new(1);
    let out = ctx.atomic(|tx| {
        let a = *tx.read(&v)?; // registers us as a visible reader
        tx.write(&v, a + 1)?; // must not treat our own read as an enemy
        let b = *tx.read(&v)?; // read-your-writes
        Ok((a, b))
    });
    assert_eq!(out, (1, 2));
    assert_eq!(*v.sample(), 2);
    assert_eq!(stm.aggregate().aborts, 0, "no self-conflicts allowed");
}

#[test]
fn write_then_read_then_write_accumulates_in_one_shadow() {
    for engine in EngineKind::ALL {
        write_then_read_then_write_accumulates_in_one_shadow_on(engine);
    }
}

fn write_then_read_then_write_accumulates_in_one_shadow_on(engine: EngineKind) {
    let stm = Stm::with_engine(CmDispatch::AbortSelf, 1, engine);
    let ctx = stm.thread(0);
    let v: TVar<Vec<u32>> = TVar::new(vec![]);
    ctx.atomic(|tx| {
        tx.modify(&v, |x| x.push(1))?;
        let snapshot = tx.read(&v)?;
        assert_eq!(*snapshot, vec![1]);
        tx.modify(&v, |x| x.push(2))?;
        Ok(())
    });
    assert_eq!(*v.sample(), vec![1, 2]);
}

#[test]
fn reader_lists_do_not_grow_without_bound() {
    let stm = Stm::new(Arc::new(AbortSelfManager), 1);
    let ctx = stm.thread(0);
    let v: TVar<u64> = TVar::new(0);
    for _ in 0..10_000 {
        ctx.atomic(|tx| tx.read(&v).map(|_| ()));
    }
    // Registration prunes dead readers inline, so the list stays O(live).
    assert!(
        v.reader_count() <= 2,
        "reader list leaked: {}",
        v.reader_count()
    );
}

#[test]
fn repeated_writes_collapse_locators() {
    for engine in EngineKind::ALL {
        repeated_writes_collapse_locators_on(engine);
    }
}

fn repeated_writes_collapse_locators_on(engine: EngineKind) {
    let stm = Stm::with_engine(CmDispatch::AbortSelf, 1, engine);
    let ctx = stm.thread(0);
    let v: TVar<u64> = TVar::new(0);
    for i in 1..=1000u64 {
        ctx.atomic(|tx| tx.write(&v, i));
        assert_eq!(*v.sample(), i);
    }
}

/// A manager that aborts the enemy, but first records how often it was
/// consulted — used to verify conflict plumbing.
struct CountingManager {
    consults: AtomicU64,
}

impl ContentionManager for CountingManager {
    fn resolve(&self, _me: &TxState, _enemy: &TxState, _kind: ConflictKind) -> Resolution {
        self.consults.fetch_add(1, Ordering::Relaxed);
        Resolution::AbortEnemy
    }
    fn name(&self) -> &str {
        "Counting"
    }
}

#[test]
fn contention_manager_is_consulted_on_real_conflicts() {
    let cm = Arc::new(CountingManager {
        consults: AtomicU64::new(0),
    });
    let stm = Stm::new(cm.clone() as Arc<dyn ContentionManager>, 2);
    let v: TVar<u64> = TVar::new(0);
    // Thread 0 parks inside a transaction holding `v`; thread 1 then
    // opens `v` and must hit the conflict path.
    let barrier = std::sync::Barrier::new(2);
    std::thread::scope(|s| {
        {
            let ctx = stm.thread(0);
            let v = v.clone();
            let barrier = &barrier;
            s.spawn(move || {
                let mut first = true;
                let _: Option<()> = ctx.atomic_with_budget(5, &mut |tx| {
                    tx.write(&v, 7)?;
                    if first {
                        first = false;
                        barrier.wait(); // signal: ownership installed
                        cooperative_wait(Duration::from_millis(20));
                    }
                    Ok(())
                });
            });
        }
        {
            let ctx = stm.thread(1);
            let v = v.clone();
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                ctx.atomic(|tx| tx.write(&v, 9));
            });
        }
    });
    assert!(
        cm.consults.load(Ordering::Relaxed) >= 1,
        "the sleeping writer must have caused at least one consult"
    );
    let snap = stm.aggregate();
    assert!(snap.conflicts() >= 1);
}

#[test]
fn victim_discovers_enemy_abort_and_retries() {
    for engine in EngineKind::ALL {
        victim_discovers_enemy_abort_and_retries_on(engine);
    }
}

fn victim_discovers_enemy_abort_and_retries_on(engine: EngineKind) {
    // Aggressive manager: thread 1 kills thread 0's in-flight transaction;
    // thread 0 must retry and still complete every increment.
    let stm = Stm::with_engine(CmDispatch::AbortEnemy, 2, engine);
    let v: TVar<u64> = TVar::new(0);
    std::thread::scope(|s| {
        for t in 0..2 {
            let ctx = stm.thread(t);
            let v = v.clone();
            s.spawn(move || {
                for _ in 0..300 {
                    ctx.atomic(|tx| {
                        let x = *tx.read(&v)?;
                        tx.write(&v, x + 1)
                    });
                }
            });
        }
    });
    assert_eq!(*v.sample(), 600, "{engine}: increments lost");
}

#[test]
fn wait_time_is_accounted_for_waiting_managers() {
    /// Always waits 1 ms, then retries (forever yielding to the enemy).
    struct Sleeper;
    impl ContentionManager for Sleeper {
        fn resolve(&self, _m: &TxState, _e: &TxState, _k: ConflictKind) -> Resolution {
            cooperative_wait(Duration::from_millis(1));
            Resolution::Retry
        }
        fn name(&self) -> &str {
            "Sleeper"
        }
    }
    let stm = Stm::new(Arc::new(Sleeper), 2);
    let v: TVar<u64> = TVar::new(0);
    let barrier = std::sync::Barrier::new(2);
    std::thread::scope(|s| {
        {
            let ctx = stm.thread(0);
            let v = v.clone();
            let barrier = &barrier;
            s.spawn(move || {
                let mut first = true;
                ctx.atomic(|tx| {
                    tx.write(&v, 1)?;
                    if first {
                        first = false;
                        barrier.wait();
                        cooperative_wait(Duration::from_millis(10));
                    }
                    Ok(())
                });
            });
        }
        {
            let ctx = stm.thread(1);
            let v = v.clone();
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                ctx.atomic(|tx| tx.write(&v, 2));
            });
        }
    });
    let snap = stm.aggregate();
    assert!(
        snap.wait_ns >= 1_000_000,
        "CM waiting must be recorded: {} ns",
        snap.wait_ns
    );
}

#[test]
fn many_tvars_one_transaction() {
    for engine in EngineKind::ALL {
        many_tvars_one_transaction_on(engine);
    }
}

fn many_tvars_one_transaction_on(engine: EngineKind) {
    let stm = Stm::with_engine(CmDispatch::AbortSelf, 1, engine);
    let ctx = stm.thread(0);
    let vars: Vec<TVar<u64>> = (0..256).map(TVar::new).collect();
    let sum = ctx.atomic(|tx| {
        let mut s = 0;
        for v in &vars {
            s += *tx.read(v)?;
        }
        for v in &vars {
            tx.modify(v, |x| *x += 1)?;
        }
        Ok(s)
    });
    assert_eq!(sum, (0..256).sum::<u64>());
    for (i, v) in vars.iter().enumerate() {
        assert_eq!(*v.sample(), i as u64 + 1);
    }
}

#[test]
fn tvar_default_and_debug() {
    let v: TVar<u64> = TVar::default();
    assert_eq!(*v.sample(), 0);
    let dbg = format!("{v:?}");
    assert!(dbg.contains("TVar"));
}

#[test]
fn concurrent_disjoint_writes_never_conflict() {
    for engine in EngineKind::ALL {
        concurrent_disjoint_writes_never_conflict_on(engine);
    }
}

fn concurrent_disjoint_writes_never_conflict_on(engine: EngineKind) {
    let stm = Stm::with_engine(CmDispatch::AbortSelf, 4, engine);
    let vars: Arc<Vec<TVar<u64>>> = Arc::new((0..4).map(|_| TVar::new(0)).collect());
    std::thread::scope(|s| {
        for t in 0..4 {
            let ctx = stm.thread(t);
            let vars = Arc::clone(&vars);
            s.spawn(move || {
                for _ in 0..500 {
                    ctx.atomic(|tx| tx.modify(&vars[t], |x| *x += 1));
                }
            });
        }
    });
    for v in vars.iter() {
        assert_eq!(*v.sample(), 500);
    }
    let snap = stm.aggregate();
    assert_eq!(
        snap.conflicts(),
        0,
        "{engine}: disjoint writers must never conflict"
    );
    assert_eq!(snap.aborts, 0);
}

#[test]
fn traced_atomic_records_committed_footprint() {
    let stm = Stm::new(Arc::new(AbortSelfManager), 1);
    let ctx = stm.thread(0);
    let a: TVar<u64> = TVar::new(0);
    let b: TVar<u64> = TVar::new(0);
    let (_, fp) = ctx.atomic_traced(|tx| {
        let x = *tx.read(&a)?;
        tx.write(&b, x + 1)?;
        Ok(())
    });
    assert_eq!(fp.len(), 2);
    assert_eq!(fp[0], (a.id(), false), "read of a recorded first");
    assert_eq!(fp[1], (b.id(), true), "write of b recorded second");
}

#[test]
fn traced_atomic_skips_read_after_write_duplicates() {
    let stm = Stm::new(Arc::new(AbortSelfManager), 1);
    let ctx = stm.thread(0);
    let a: TVar<u64> = TVar::new(3);
    let (v, fp) = ctx.atomic_traced(|tx| {
        tx.modify(&a, |x| *x += 1)?;
        let v = *tx.read(&a)?; // served from the write set
        Ok(v)
    });
    assert_eq!(v, 4);
    assert_eq!(fp, vec![(a.id(), true)], "only the write is recorded");
}

/// Eager multi-object commits leave their locators uncollapsed (seqlock
/// word odd, terminal writer installed) for the next accessor's eager
/// mutex path to fold. A later *lazy* run over the same objects has no
/// such path — it must fold the leftover itself instead of waiting for a
/// commit-lock holder that never existed. Regression test: both the lazy
/// read loop and the commit-time lock loop used to spin forever here
/// (first seen as `Vacation` hanging under `--engine lazy`, whose
/// populate step commits through an internal eager `Stm`).
#[test]
fn lazy_run_collapses_eager_runs_leftover_locators() {
    let a: TVar<u64> = TVar::new(1);
    let b: TVar<u64> = TVar::new(2);
    let c: TVar<u64> = TVar::new(3);
    let d: TVar<u64> = TVar::new(4);

    // One multi-object eager commit per pair: all four locators are left
    // uncollapsed (the eager engine only folds on the *next* access).
    let eager = Stm::with_engine(CmDispatch::AbortSelf, 1, EngineKind::Eager);
    let ctx = eager.thread(0);
    ctx.atomic(|tx| {
        tx.write(&a, 10)?;
        tx.write(&b, 20)?;
        Ok(())
    });
    ctx.atomic(|tx| {
        tx.write(&c, 30)?;
        tx.write(&d, 40)?;
        Ok(())
    });

    let lazy = Stm::with_engine(CmDispatch::AbortSelf, 1, EngineKind::Lazy);
    let ctx = lazy.thread(0);

    // Blind writes join no read set, so the leftover is first met by the
    // commit-time lock loop (`lock_and_validate`).
    ctx.atomic(|tx| {
        tx.write(&a, 11)?;
        tx.write(&b, 21)?;
        Ok(())
    });
    assert_eq!(*a.sample(), 11);
    assert_eq!(*b.sample(), 21);

    // Reads meet the leftover in the invisible-read loop
    // (`read_committed`) and must both fold it and see the eager commit.
    let sum = ctx.atomic(|tx| Ok(*tx.read(&c)? + *tx.read(&d)?));
    assert_eq!(sum, 70);
    ctx.atomic(|tx| {
        tx.modify(&c, |x| *x += 1)?;
        tx.modify(&d, |x| *x += 1)?;
        Ok(())
    });
    assert_eq!(*c.sample(), 31);
    assert_eq!(*d.sample(), 41);
}
