//! Inline-vs-boxed write-entry equivalence.
//!
//! The write set stores values with payload ≤ 24 bytes *inline* in the
//! entry and spills larger types to the boxed representation
//! (`Box<dyn ErasedWrite>`). The representation must be invisible to
//! users: for the same operation sequence, a transaction over an
//! inline-sized type and one over a boxed-sized type must observe
//! identical read-your-writes values, identical committed values, and
//! identical abort semantics.
//!
//! Property test: random operation sequences (write / modify / read,
//! chunked into transactions, with a forced first-attempt abort on every
//! third transaction) replayed against padded payload types on both sides
//! of the 24-byte threshold — 16 and 24 value bytes (inline; 24 is the
//! exact boundary) vs 25 and 48 (boxed; 25 is one past it).

use proptest::prelude::*;
use wtm_stm::{CmDispatch, Stm, TVar};

/// `u64` observable plus `N` padding bytes: the payload is `8 + N` bytes,
/// so `N <= 16` stays inline and `N >= 17` spills to the boxed path.
#[derive(Clone, Debug, PartialEq)]
struct Pad<const N: usize> {
    x: u64,
    pad: [u8; N],
}

impl<const N: usize> Pad<N> {
    fn new(x: u64) -> Self {
        Pad { x, pad: [0xAB; N] }
    }
}

/// One step of a transaction body.
#[derive(Clone, Copy, Debug)]
enum Op {
    Write(u64),
    Modify(u64),
    Read,
}

fn decode(kind: u8, v: u64) -> Op {
    match kind % 3 {
        0 => Op::Write(v),
        1 => Op::Modify(v),
        _ => Op::Read,
    }
}

/// Replay `ops` (3 steps per transaction; every third transaction's first
/// attempt aborts after running its steps) and return every observable:
/// each in-transaction read and each post-commit value.
fn observe<const N: usize>(ops: &[(u8, u64)]) -> Vec<u64> {
    let stm = Stm::with_dispatch(CmDispatch::AbortSelf, 1);
    let ctx = stm.thread(0);
    let tv: TVar<Pad<N>> = TVar::new(Pad::new(0));
    let mut obs: Vec<u64> = Vec::new();
    for (i, chunk) in ops.chunks(3).enumerate() {
        let force_abort = i % 3 == 2;
        let mut first_attempt = true;
        let reads = ctx.atomic(|tx| {
            let mut reads = Vec::new();
            for &(kind, v) in chunk {
                match decode(kind, v) {
                    Op::Write(v) => tx.write(&tv, Pad::new(v))?,
                    Op::Modify(d) => tx.modify(&tv, |p| p.x = p.x.wrapping_add(d))?,
                    Op::Read => {}
                }
                reads.push(tx.read(&tv)?.x);
            }
            if force_abort && first_attempt {
                first_attempt = false;
                // The aborted attempt's writes must be invisible: the
                // retry (which writes nothing) re-reads the pre-abort
                // state below.
                return Err(tx.abort_self());
            }
            Ok(reads)
        });
        // The retry of a force-abort transaction runs the same steps, so
        // its reads are still comparable observables.
        obs.extend(reads);
        obs.push(ctx.atomic(|tx| tx.read(&tv).map(|p| p.x)));
    }
    obs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn representation_is_invisible(
        ops in proptest::collection::vec((0..6u8, 0..1000u64), 1..30)
    ) {
        let inline_small = observe::<8>(&ops);
        let inline_edge = observe::<16>(&ops); // 24-byte payload: last inline size
        let boxed_edge = observe::<17>(&ops); // 25-byte payload: first boxed size
        let boxed_large = observe::<40>(&ops);
        prop_assert_eq!(&inline_small, &inline_edge);
        prop_assert_eq!(&inline_edge, &boxed_edge);
        prop_assert_eq!(&boxed_edge, &boxed_large);
    }
}

/// Deterministic spot-check that the force-abort path really discards
/// writes on both representations (guards the proptest's premise).
#[test]
fn aborted_writes_are_invisible_on_both_representations() {
    fn check<const N: usize>() {
        let stm = Stm::with_dispatch(CmDispatch::AbortSelf, 1);
        let ctx = stm.thread(0);
        let tv: TVar<Pad<N>> = TVar::new(Pad::new(1));
        let mut first = true;
        ctx.atomic(|tx| {
            if first {
                first = false;
                tx.write(&tv, Pad::new(99))?;
                assert_eq!(tx.read(&tv)?.x, 99, "read-your-writes before abort");
                return Err(tx.abort_self());
            }
            assert_eq!(tx.read(&tv)?.x, 1, "aborted write leaked");
            Ok(())
        });
        assert_eq!(ctx.atomic(|tx| tx.read(&tv).map(|p| p.x)), 1);
    }
    check::<16>(); // inline
    check::<17>(); // boxed
}
