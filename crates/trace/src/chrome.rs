//! Chrome-trace (Trace Event Format) JSON export, loadable in
//! `chrome://tracing` and <https://ui.perfetto.dev>.
//!
//! Span events ([`EventKind::Commit`], `Abort`, `Wait`, `BarrierWait`)
//! become `"ph":"X"` complete events — the duration is carried in the
//! terminal event itself, so no begin/end matching is needed. Point events
//! become `"ph":"i"` thread-scoped instants. Timestamps are microseconds
//! (the format's unit) derived from the coarse-clock nanoseconds.
//!
//! [`validate_json`] is a minimal recursive-descent JSON checker used by
//! the trace smoke tests: the build environment is offline and
//! dependency-free, so "the exported JSON parses" is asserted in-repo.

use std::fmt::Write as _;

use crate::{abort_reason_name, unpack_conflict, Event, EventKind};

fn conflict_kind_name(kind: u64) -> &'static str {
    match kind {
        0 => "WW",
        1 => "RW",
        2 => "WR",
        _ => "??",
    }
}

fn verdict_name(verdict: u64) -> &'static str {
    match verdict {
        crate::VERDICT_ABORT_ENEMY => "abort-enemy",
        crate::VERDICT_ABORT_SELF => "abort-self",
        crate::VERDICT_RETRY => "retry",
        _ => "??",
    }
}

fn barrier_outcome_name(outcome: u64) -> &'static str {
    match outcome {
        crate::BARRIER_RELEASED => "released",
        crate::BARRIER_CANCELLED => "cancelled",
        crate::BARRIER_TIMED_OUT => "timed-out",
        _ => "??",
    }
}

/// Microseconds with sub-µs precision, as the format expects.
fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1_000.0)
}

fn push_common(out: &mut String, name: &str, ph: &str, ts_ns: u64, tid: u32) {
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"cat\":\"wtm\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":0,\"tid\":{tid}",
        us(ts_ns)
    );
}

/// Render a drained event stream as a Chrome-trace JSON document.
/// `metadata` becomes the top-level `otherData` object (manager name,
/// benchmark, …); keys and values must not need JSON escaping (plain
/// ASCII identifiers).
pub fn to_chrome_json(events: &[Event], metadata: &[(&str, &str)]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for ev in events {
        if !first {
            out.push(',');
        }
        first = false;
        match ev.kind {
            EventKind::Commit | EventKind::Abort | EventKind::Wait | EventKind::BarrierWait => {
                let start = ev.ts_ns.saturating_sub(ev.dur_ns);
                push_common(&mut out, ev.kind.name(), "X", start, ev.tid);
                let _ = write!(out, ",\"dur\":{}", us(ev.dur_ns));
                match ev.kind {
                    EventKind::Commit => {
                        let _ = write!(out, ",\"args\":{{\"txn\":{},\"attempt\":{}}}", ev.a, ev.b);
                    }
                    EventKind::Abort => {
                        let _ = write!(
                            out,
                            ",\"args\":{{\"txn\":{},\"reason\":\"{}\"}}",
                            ev.a,
                            abort_reason_name(ev.b)
                        );
                    }
                    EventKind::Wait => {
                        let _ = write!(out, ",\"args\":{{\"enemy_tid\":{}}}", ev.a);
                    }
                    EventKind::BarrierWait => {
                        let _ = write!(
                            out,
                            ",\"args\":{{\"phase\":{},\"outcome\":\"{}\"}}",
                            ev.a,
                            barrier_outcome_name(ev.b)
                        );
                    }
                    _ => unreachable!(),
                }
            }
            EventKind::Conflict => {
                let (kind, verdict, killed) = unpack_conflict(ev.b);
                push_common(&mut out, "conflict", "i", ev.ts_ns, ev.tid);
                let _ = write!(
                    out,
                    ",\"s\":\"t\",\"args\":{{\"enemy_tid\":{},\"kind\":\"{}\",\"verdict\":\"{}\",\"killed\":{}}}",
                    ev.a,
                    conflict_kind_name(kind),
                    verdict_name(verdict),
                    killed
                );
            }
            EventKind::TxBegin
            | EventKind::FrameAssign
            | EventKind::WindowStart
            | EventKind::FrameAdvance => {
                push_common(&mut out, ev.kind.name(), "i", ev.ts_ns, ev.tid);
                let (ka, kb) = match ev.kind {
                    EventKind::TxBegin => ("txn", "attempt"),
                    EventKind::FrameAssign => ("frame", "rank"),
                    EventKind::FrameAdvance => ("frame", "high_water"),
                    _ => ("window", "q"),
                };
                let _ = write!(
                    out,
                    ",\"s\":\"t\",\"args\":{{\"{ka}\":{},\"{kb}\":{}}}",
                    ev.a, ev.b
                );
            }
        }
        out.push('}');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{");
    for (i, (k, v)) in metadata.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{k}\":\"{v}\"");
    }
    out.push_str("}}");
    out
}

// ---- minimal JSON validation --------------------------------------------

/// Check that `s` is one well-formed JSON value (object/array/string/
/// number/bool/null) with nothing but whitespace after it.
pub fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, "true"),
        Some(b'f') => parse_lit(b, pos, "false"),
        Some(b'n') => parse_lit(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        other => Err(format!("unexpected {other:?} at byte {}", *pos)),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'{')?;
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or '}}', got {other:?} at {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'[')?;
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or ']', got {other:?} at {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'"')?;
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => *pos += 2,
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map_err(|e| format!("bad number {text:?}: {e}"))?;
    Ok(())
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pack_conflict, ABORT_KILLED, VERDICT_ABORT_ENEMY};

    fn sample_events() -> Vec<Event> {
        vec![
            Event::instant(EventKind::TxBegin, 1_000, 0, 41, 0),
            Event::instant(
                EventKind::Conflict,
                1_500,
                0,
                1,
                pack_conflict(0, VERDICT_ABORT_ENEMY, true),
            ),
            Event::span(EventKind::Commit, 2_000, 900, 0, 41, 0),
            Event::span(EventKind::Abort, 2_500, 400, 1, 42, ABORT_KILLED),
            Event::span(EventKind::Wait, 3_000, 100, 1, 0, 0),
            Event::span(EventKind::BarrierWait, 4_000, 500, 1, 0, 0),
            Event::instant(EventKind::FrameAssign, 4_100, 1, 3, 2),
            Event::instant(EventKind::WindowStart, 4_200, 1, 1, 0),
            Event::instant(EventKind::FrameAdvance, 4_300, u32::MAX, 2, 9),
        ]
    }

    #[test]
    fn export_is_valid_json_with_all_kinds() {
        let json = to_chrome_json(&sample_events(), &[("manager", "Polka"), ("bench", "List")]);
        validate_json(&json).expect("chrome export must parse");
        assert!(json.contains("\"name\":\"commit\""));
        assert!(json.contains("\"reason\":\"killed\""));
        assert!(json.contains("\"verdict\":\"abort-enemy\""));
        assert!(json.contains("\"manager\":\"Polka\""));
        // Complete events carry ts = start (end − dur) in µs.
        assert!(
            json.contains("\"ts\":1.100"),
            "commit starts at 1.1µs: {json}"
        );
    }

    #[test]
    fn empty_trace_still_valid() {
        let json = to_chrome_json(&[], &[]);
        validate_json(&json).unwrap();
        assert!(json.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate_json("{\"a\":[1,2.5,-3e2,true,false,null,\"x\\\"y\"]}").unwrap();
        validate_json("  [ ]  ").unwrap();
        assert!(validate_json("{\"a\":1,}").is_err());
        assert!(validate_json("{\"a\" 1}").is_err());
        assert!(validate_json("[1,2] trailing").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("01a").is_err());
    }
}
