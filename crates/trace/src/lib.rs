//! # wtm-trace — low-overhead transaction-event tracing
//!
//! The engine's end-of-run counters (`wtm_stm::stats`) say *how much*
//! work was wasted; they cannot say *who aborted whom*, how long
//! transactions sat at window barriers, or where the wait time went. This
//! crate records those per-event facts with a protocol cheap enough to
//! leave woven through the STM hot path:
//!
//! * **Fixed-size events** ([`Event`], 40 bytes): a coarse-clock timestamp
//!   (the caller passes in `wtm_stm::clockns::now()` values — this crate
//!   is timestamp-agnostic so it depends on nothing), an optional span
//!   duration, a kind tag, the engine thread id, and two payload words
//!   whose meaning is per-kind (see [`EventKind`]).
//! * **Per-thread ring buffers** ([`TraceBuf`]): single-producer, wrapping
//!   overwrite, one atomic store per event. No locks, no allocation after
//!   the buffer exists. A global registry collects every thread's buffer
//!   so a collector can drain them once producers are quiescent.
//! * **Two-level gating**: call sites are compiled in only under the
//!   `trace` cargo feature of the instrumented crates, and even then every
//!   [`emit`] starts with one relaxed load of a global flag
//!   ([`enabled`]) — tracing that is compiled in but switched off costs a
//!   predicted-not-taken branch per event site.
//!
//! The collector side lives in [`collect`] (who-killed-whom conflict
//! matrices, log-bucketed latency histograms) and [`chrome`] (Chrome-trace
//! JSON for `chrome://tracing` / Perfetto).
//!
//! ## Drain protocol
//!
//! Producers own their buffer; the collector may only call
//! [`drain`]/[`reset`] while no thread is emitting (in practice: tracing
//! disabled and worker threads joined). The harness enforces this by
//! enabling tracing after prepopulation, disabling it after the worker
//! scope ends, and only then draining.

pub mod chrome;
pub mod collect;

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// What an [`Event`] records. Payload word meaning per kind:
///
/// | kind | `dur_ns` | `a` | `b` |
/// |---|---|---|---|
/// | `TxBegin` | 0 | txn id | attempt number |
/// | `Commit` | attempt duration | txn id | attempt number |
/// | `Abort` | wasted attempt duration | txn id | abort reason (`ABORT_*`) |
/// | `Conflict` | 0 | enemy thread id | packed kind/verdict/killed ([`pack_conflict`]) |
/// | `Wait` | time blocked in the CM | enemy thread id | 0 |
/// | `BarrierWait` | time parked at the window barrier | phase (0 = entry, 1 = post-registration) | outcome (`BARRIER_*`) |
/// | `FrameAssign` | 0 | assigned frame | rank π₂ |
/// | `WindowStart` | 0 | window generation | random delay q |
/// | `FrameAdvance` | 0 | new frame index | high-water mark |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    TxBegin = 0,
    Commit = 1,
    Abort = 2,
    Conflict = 3,
    Wait = 4,
    BarrierWait = 5,
    FrameAssign = 6,
    WindowStart = 7,
    FrameAdvance = 8,
}

impl EventKind {
    /// All kinds, in tag order.
    pub const ALL: [EventKind; 9] = [
        EventKind::TxBegin,
        EventKind::Commit,
        EventKind::Abort,
        EventKind::Conflict,
        EventKind::Wait,
        EventKind::BarrierWait,
        EventKind::FrameAssign,
        EventKind::WindowStart,
        EventKind::FrameAdvance,
    ];

    /// Short lower-case name (trace viewer slice names, table rows).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::TxBegin => "begin",
            EventKind::Commit => "commit",
            EventKind::Abort => "abort",
            EventKind::Conflict => "conflict",
            EventKind::Wait => "cm-wait",
            EventKind::BarrierWait => "barrier-wait",
            EventKind::FrameAssign => "frame-assign",
            EventKind::WindowStart => "window-start",
            EventKind::FrameAdvance => "frame-advance",
        }
    }
}

// ---- abort reason taxonomy (the `b` word of `Abort` events) -------------

/// The contention manager told this transaction to abort itself.
pub const ABORT_CM_SELF: u64 = 0;
/// An enemy transaction aborted this one (status CAS from another thread).
pub const ABORT_KILLED: u64 = 1;
/// The transaction body bailed out voluntarily (`Txn::abort_self` or a
/// user `Err` that nobody else caused).
pub const ABORT_USER: u64 = 2;
/// The lazy engine's read validation failed: a read no longer belongs to
/// the committed snapshot at the attempt's watermark (at read time or at
/// commit-time re-validation).
pub const ABORT_VALIDATION: u64 = 3;

/// Human-readable abort reason.
pub fn abort_reason_name(reason: u64) -> &'static str {
    match reason {
        ABORT_CM_SELF => "cm-self",
        ABORT_KILLED => "killed",
        ABORT_USER => "user",
        ABORT_VALIDATION => "validation",
        _ => "unknown",
    }
}

// ---- conflict verdicts (packed into the `b` word of `Conflict`) ---------

/// The manager ruled `AbortEnemy`.
pub const VERDICT_ABORT_ENEMY: u64 = 0;
/// The manager ruled `AbortSelf`.
pub const VERDICT_ABORT_SELF: u64 = 1;
/// The manager ruled `Retry` (wait and re-examine).
pub const VERDICT_RETRY: u64 = 2;

/// Barrier-wait outcomes (the `b` word of `BarrierWait` events).
pub const BARRIER_RELEASED: u64 = 0;
pub const BARRIER_CANCELLED: u64 = 1;
pub const BARRIER_TIMED_OUT: u64 = 2;

/// Pack a conflict's `(kind, verdict, killed)` triple into one payload
/// word. `kind` is the engine's `ConflictKind` as 0/1/2 (WW/RW/WR).
#[inline]
pub fn pack_conflict(kind: u64, verdict: u64, killed: bool) -> u64 {
    (kind & 0xFF) | ((verdict & 0xFF) << 8) | ((killed as u64) << 16)
}

/// Inverse of [`pack_conflict`]: `(kind, verdict, killed)`.
#[inline]
pub fn unpack_conflict(b: u64) -> (u64, u64, bool) {
    (b & 0xFF, (b >> 8) & 0xFF, (b >> 16) & 1 != 0)
}

/// One fixed-size trace record. See [`EventKind`] for payload meaning.
///
/// `ts_ns` is the coarse-clock time at which the event was *recorded* —
/// for span events that is the span's **end**; the start is
/// `ts_ns - dur_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub ts_ns: u64,
    pub dur_ns: u64,
    pub kind: EventKind,
    pub tid: u32,
    pub a: u64,
    pub b: u64,
}

impl Event {
    /// A point event (no duration).
    #[inline]
    pub fn instant(kind: EventKind, ts_ns: u64, tid: u32, a: u64, b: u64) -> Self {
        Event {
            ts_ns,
            dur_ns: 0,
            kind,
            tid,
            a,
            b,
        }
    }

    /// A span event ending at `end_ns` with length `dur_ns`.
    #[inline]
    pub fn span(kind: EventKind, end_ns: u64, dur_ns: u64, tid: u32, a: u64, b: u64) -> Self {
        Event {
            ts_ns: end_ns,
            dur_ns,
            kind,
            tid,
            a,
            b,
        }
    }

    const ZERO: Event = Event {
        ts_ns: 0,
        dur_ns: 0,
        kind: EventKind::TxBegin,
        tid: 0,
        a: 0,
        b: 0,
    };
}

// ---- the per-thread ring buffer -----------------------------------------

/// Lock-free single-producer ring buffer of [`Event`]s.
///
/// The owning thread is the only writer; `head` counts events ever pushed
/// (the buffer wraps, overwriting the oldest — `dropped()` reports how
/// many were lost). Readers ([`TraceBuf::drain_into`]) require the
/// producer to be quiescent: the `Release` store on `head` publishes the
/// slot contents, but a concurrent wrap-around overwrite is not detected.
pub struct TraceBuf {
    head: AtomicU64,
    events: Box<[UnsafeCell<Event>]>,
}

// SAFETY: slots are plain `Copy` data; the single-producer/quiescent-reader
// protocol documented on the type keeps accesses race-free.
unsafe impl Sync for TraceBuf {}
unsafe impl Send for TraceBuf {}

impl TraceBuf {
    /// Buffer holding the most recent `capacity` events (min 16).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(16);
        TraceBuf {
            head: AtomicU64::new(0),
            events: (0..capacity)
                .map(|_| UnsafeCell::new(Event::ZERO))
                .collect(),
        }
    }

    /// Append one event (producer thread only).
    #[inline]
    pub fn push(&self, ev: Event) {
        let h = self.head.load(Ordering::Relaxed);
        let idx = (h % self.events.len() as u64) as usize;
        // SAFETY: only the owning thread pushes, so no concurrent writer;
        // readers honor the quiescence protocol (see type docs).
        unsafe { *self.events[idx].get() = ev };
        self.head.store(h + 1, Ordering::Release);
    }

    /// Events ever pushed.
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events lost to wrap-around overwrite.
    pub fn dropped(&self) -> u64 {
        self.pushed().saturating_sub(self.events.len() as u64)
    }

    /// Copy the retained events (oldest first) into `out`. Producer must
    /// be quiescent.
    pub fn drain_into(&self, out: &mut Vec<Event>) {
        let h = self.head.load(Ordering::Acquire);
        let cap = self.events.len() as u64;
        let n = h.min(cap);
        let start = h - n;
        out.reserve(n as usize);
        for i in 0..n {
            let idx = ((start + i) % cap) as usize;
            // SAFETY: producer quiescent per the drain protocol.
            out.push(unsafe { *self.events[idx].get() });
        }
    }

    /// Forget everything (producer must be quiescent).
    pub fn clear(&self) {
        self.head.store(0, Ordering::Release);
    }
}

// ---- global registry and runtime toggle ---------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(1 << 16);

fn registry() -> &'static Mutex<Vec<Arc<TraceBuf>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<TraceBuf>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: std::cell::RefCell<Option<Arc<TraceBuf>>> =
        const { std::cell::RefCell::new(None) };
}

/// Is tracing currently recording? One relaxed load — this is the whole
/// hot-path cost of compiled-in-but-off tracing.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Switch recording on or off. Enabling does not clear old events; call
/// [`reset`] between runs.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Per-thread ring capacity for buffers created *after* this call.
pub fn set_capacity(events_per_thread: usize) {
    CAPACITY.store(events_per_thread.max(16), Ordering::SeqCst);
}

/// Record one event into this thread's ring buffer (creating and
/// registering the buffer on first use). No-op while tracing is off.
#[inline]
pub fn emit(ev: Event) {
    if !enabled() {
        return;
    }
    emit_always(ev);
}

/// [`emit`] without the enabled check (tests, unconditional call sites).
pub fn emit_always(ev: Event) {
    // `try_with`: never panic during thread teardown — just drop the event.
    let _ = LOCAL.try_with(|cell| {
        let mut slot = cell.borrow_mut();
        let buf = slot.get_or_insert_with(|| {
            let buf = Arc::new(TraceBuf::new(CAPACITY.load(Ordering::SeqCst)));
            registry()
                .lock()
                .expect("trace registry")
                .push(Arc::clone(&buf));
            buf
        });
        buf.push(ev);
    });
}

/// Collect every thread's retained events, oldest-first per thread, then
/// globally sorted by timestamp. Producers must be quiescent (see module
/// docs).
pub fn drain() -> Vec<Event> {
    let bufs = registry().lock().expect("trace registry");
    let mut out = Vec::new();
    for b in bufs.iter() {
        b.drain_into(&mut out);
    }
    out.sort_by_key(|e| e.ts_ns);
    out
}

/// Total events lost to ring wrap-around across all threads.
pub fn dropped_total() -> u64 {
    registry()
        .lock()
        .expect("trace registry")
        .iter()
        .map(|b| b.dropped())
        .sum()
}

/// Clear every registered buffer (between runs; producers quiescent).
pub fn reset() {
    for b in registry().lock().expect("trace registry").iter() {
        b.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent_events_on_wrap() {
        let buf = TraceBuf::new(16);
        for i in 0..40u64 {
            buf.push(Event::instant(EventKind::Commit, i, 0, i, 0));
        }
        assert_eq!(buf.pushed(), 40);
        assert_eq!(buf.dropped(), 24);
        let mut out = Vec::new();
        buf.drain_into(&mut out);
        assert_eq!(out.len(), 16);
        assert_eq!(out.first().unwrap().a, 24, "oldest retained");
        assert_eq!(out.last().unwrap().a, 39, "newest retained");
        buf.clear();
        let mut out2 = Vec::new();
        buf.drain_into(&mut out2);
        assert!(out2.is_empty());
    }

    #[test]
    fn conflict_packing_roundtrips() {
        for kind in 0..3u64 {
            for verdict in 0..3u64 {
                for killed in [false, true] {
                    assert_eq!(
                        unpack_conflict(pack_conflict(kind, verdict, killed)),
                        (kind, verdict, killed)
                    );
                }
            }
        }
    }

    #[test]
    fn global_emit_respects_toggle_and_drains_across_threads() {
        // This test owns the global flag; no other test in this crate
        // enables it.
        reset();
        emit(Event::instant(EventKind::TxBegin, 1, 0, 0, 0));
        assert!(
            !drain().iter().any(|e| e.ts_ns == 1),
            "emit while disabled must drop the event"
        );
        set_enabled(true);
        std::thread::scope(|s| {
            for t in 0..3u32 {
                s.spawn(move || {
                    for i in 0..10u64 {
                        emit(Event::span(EventKind::Commit, 100 + i, 5, t, i, 0));
                    }
                });
            }
        });
        set_enabled(false);
        let events = drain();
        let commits = events
            .iter()
            .filter(|e| e.kind == EventKind::Commit)
            .count();
        assert!(commits >= 30, "all three threads' events collected");
        assert!(
            events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
            "drain sorts by timestamp"
        );
        reset();
        assert!(!drain().iter().any(|e| e.kind == EventKind::Commit));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(EventKind::Commit.name(), "commit");
        assert_eq!(abort_reason_name(ABORT_KILLED), "killed");
        assert_eq!(abort_reason_name(99), "unknown");
    }
}
