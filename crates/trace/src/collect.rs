//! Collector: turn a drained event stream into aggregate structures —
//! who-killed-whom conflict matrices and log-bucketed latency histograms.

use crate::{unpack_conflict, Event, EventKind, VERDICT_ABORT_ENEMY, VERDICT_ABORT_SELF};

/// `M × M` matrix of resolved conflicts: `kills[killer][victim]` counts how
/// often the contention manager let thread `killer`'s transaction abort
/// thread `victim`'s. Both verdicts feed it: `AbortEnemy` makes the
/// emitting thread the killer; `AbortSelf` makes the *enemy* the killer
/// (the emitting transaction stepped aside because of it).
#[derive(Debug, Clone)]
pub struct ConflictMatrix {
    pub threads: usize,
    kills: Vec<u64>,
}

impl ConflictMatrix {
    /// Build from a drained event stream. Threads outside `0..threads`
    /// (none in practice) are ignored.
    pub fn from_events(events: &[Event], threads: usize) -> Self {
        let mut m = ConflictMatrix {
            threads,
            kills: vec![0; threads * threads],
        };
        for ev in events {
            if ev.kind != EventKind::Conflict {
                continue;
            }
            let (_kind, verdict, killed) = unpack_conflict(ev.b);
            if !killed {
                continue;
            }
            let (killer, victim) = match verdict {
                VERDICT_ABORT_ENEMY => (ev.tid as usize, ev.a as usize),
                VERDICT_ABORT_SELF => (ev.a as usize, ev.tid as usize),
                _ => continue,
            };
            if killer < threads && victim < threads {
                m.kills[killer * threads + victim] += 1;
            }
        }
        m
    }

    /// Kill count of `killer` over `victim`.
    pub fn get(&self, killer: usize, victim: usize) -> u64 {
        self.kills[killer * self.threads + victim]
    }

    /// Total kills recorded.
    pub fn total(&self) -> u64 {
        self.kills.iter().sum()
    }
}

/// Power-of-two-bucketed histogram of nanosecond durations: bucket `i`
/// counts values `v` with `⌊log₂ v⌋ = i` (0 ns lands in bucket 0).
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: [u64; 64],
    pub count: u64,
    pub sum_ns: u64,
    pub max_ns: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; 64],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl LogHistogram {
    /// Record one duration.
    pub fn record(&mut self, ns: u64) {
        let idx = if ns <= 1 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += ns;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Count in bucket `i` (values in `[2^i, 2^(i+1))`).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Index of the highest non-empty bucket, if any value was recorded.
    pub fn max_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }

    /// Mean in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Human label for a bucket's upper bound: `"<2µs"` etc.
    pub fn bucket_label(i: usize) -> String {
        let hi = 1u128 << (i + 1);
        if hi < 1_000 {
            format!("<{hi}ns")
        } else if hi < 1_000_000 {
            format!("<{:.1}µs", hi as f64 / 1e3)
        } else if hi < 1_000_000_000 {
            format!("<{:.1}ms", hi as f64 / 1e6)
        } else {
            format!("<{:.1}s", hi as f64 / 1e9)
        }
    }
}

/// Latency histograms of the span-bearing event kinds.
#[derive(Debug, Clone, Default)]
pub struct Histograms {
    pub commit: LogHistogram,
    pub abort: LogHistogram,
    pub wait: LogHistogram,
    pub barrier: LogHistogram,
}

impl Histograms {
    /// Build from a drained event stream.
    pub fn from_events(events: &[Event]) -> Self {
        let mut h = Histograms::default();
        for ev in events {
            match ev.kind {
                EventKind::Commit => h.commit.record(ev.dur_ns),
                EventKind::Abort => h.abort.record(ev.dur_ns),
                EventKind::Wait => h.wait.record(ev.dur_ns),
                EventKind::BarrierWait => h.barrier.record(ev.dur_ns),
                _ => {}
            }
        }
        h
    }

    /// The four histograms with their column names.
    pub fn named(&self) -> [(&'static str, &LogHistogram); 4] {
        [
            ("commit", &self.commit),
            ("abort", &self.abort),
            ("cm-wait", &self.wait),
            ("barrier", &self.barrier),
        ]
    }
}

/// Event counts per kind — the cheap sanity view of a trace.
pub fn counts_by_kind(events: &[Event]) -> [(EventKind, u64); 9] {
    let mut out = EventKind::ALL.map(|k| (k, 0u64));
    for ev in events {
        out[ev.kind as usize].1 += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pack_conflict, VERDICT_RETRY};

    fn conflict(tid: u32, enemy: u64, verdict: u64, killed: bool) -> Event {
        Event::instant(
            EventKind::Conflict,
            0,
            tid,
            enemy,
            pack_conflict(0, verdict, killed),
        )
    }

    #[test]
    fn matrix_attributes_kills_to_the_winner() {
        let events = vec![
            // Thread 0 kills thread 1 directly.
            conflict(0, 1, VERDICT_ABORT_ENEMY, true),
            // Thread 2 steps aside for thread 0: the kill is 0 → 2.
            conflict(2, 0, VERDICT_ABORT_SELF, true),
            // A retry verdict and an unsuccessful kill count nothing.
            conflict(1, 0, VERDICT_RETRY, false),
            conflict(1, 0, VERDICT_ABORT_ENEMY, false),
        ];
        let m = ConflictMatrix::from_events(&events, 3);
        assert_eq!(m.get(0, 1), 1);
        assert_eq!(m.get(0, 2), 1);
        assert_eq!(m.get(1, 0), 0);
        assert_eq!(m.total(), 2);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = LogHistogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.bucket(0), 2, "0 and 1 share bucket 0");
        assert_eq!(h.bucket(1), 2, "2 and 3 in bucket 1");
        assert_eq!(h.bucket(10), 1);
        assert_eq!(h.count, 5);
        assert_eq!(h.max_ns, 1024);
        assert_eq!(h.max_bucket(), Some(10));
        assert!(h.mean_ns() > 0.0);
    }

    #[test]
    fn bucket_labels_scale_units() {
        assert_eq!(LogHistogram::bucket_label(0), "<2ns");
        assert!(LogHistogram::bucket_label(10).ends_with("µs"));
        assert!(LogHistogram::bucket_label(20).ends_with("ms"));
        assert!(LogHistogram::bucket_label(30).ends_with('s'));
    }

    #[test]
    fn histograms_route_kinds() {
        let events = vec![
            Event::span(EventKind::Commit, 10, 5, 0, 0, 0),
            Event::span(EventKind::Abort, 10, 7, 0, 0, 0),
            Event::span(EventKind::Wait, 10, 9, 0, 0, 0),
            Event::span(EventKind::BarrierWait, 10, 11, 0, 0, 0),
            Event::instant(EventKind::TxBegin, 10, 0, 0, 0),
        ];
        let h = Histograms::from_events(&events);
        assert_eq!(h.commit.count, 1);
        assert_eq!(h.abort.count, 1);
        assert_eq!(h.wait.count, 1);
        assert_eq!(h.barrier.count, 1);
        let counts = counts_by_kind(&events);
        assert_eq!(counts[EventKind::TxBegin as usize].1, 1);
        assert_eq!(counts[EventKind::Commit as usize].1, 1);
    }
}
