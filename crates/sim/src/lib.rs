//! # wtm-sim — deterministic discrete-event transaction-scheduling simulator
//!
//! The paper's theory (§II) reasons about an abstract model: an `M × N`
//! window of transactions over an explicit **conflict graph**, scheduled
//! in discrete steps. Two of its algorithms need that model directly:
//!
//! * **Offline** (§II-B1) resolves conflicts by greedy-coloring the
//!   conflict graph inside each frame — impossible in a real STM (it
//!   requires global knowledge), natural in a simulator.
//! * The makespan theorems 2.1–2.4 predict scaling shapes
//!   (`O(τ·(C + N·log MN))` etc.) that wall-clock runs on a noisy host
//!   cannot cleanly exhibit.
//!
//! The crate is layered, dslab-style:
//!
//! 1. **Event core** ([`event`]) — a deterministic priority-queue event
//!    loop: virtual clock, `(time, class, seeded-tiebreak)` total order,
//!    and an append-only byte [`EventLog`] that makes two runs comparable
//!    bit for bit and recorded runs [`replay`]able.
//! 2. **Topology layer** ([`net`]) — threads pinned to nodes, per-node
//!    window clocks with configurable skew, and a pluggable
//!    [`NetworkModel`] between conflict detection and CM-verdict
//!    delivery: [`ZeroLatency`] (the paper's instantaneous-verdict
//!    assumption, bit-identical to the old discrete-time stepper),
//!    [`FixedLatency`], and [`SeededJitter`] with optional message drop.
//! 3. **Scenario layer** ([`scenario`]) — registry-named, `@k=v`-
//!    parameterized setups: the paper-shaped graphs ([`graph`]) plus
//!    beyond-paper distributed scenarios (multi-node windows with skew,
//!    K-way replicated transactions with commit-ack gating, participant
//!    crash/recovery mid-window), all runnable through one
//!    [`SimRunSpec`].
//!
//! The schedulers ([`sched`]) — one-shot, free-running RandomizedRounds,
//! Greedy timestamps, Polka, and the window family (Online,
//! Online-Dynamic, Adaptive, coloring-based Offline) — run unchanged on
//! the event core; [`engine::simulate`] is the zero-latency single-node
//! entry point the theory tables and property tests use.
//!
//! Everything is seeded and deterministic: the same [`SimRunSpec`]
//! produces the same event log, which the replay gate in CI enforces.
//!
//! ```
//! use wtm_sim::graph::ConflictGraph;
//! use wtm_sim::engine::{simulate, SimConfig};
//! use wtm_sim::sched::{OneShotScheduler, OnlineWindowScheduler, WindowMode};
//!
//! let g = ConflictGraph::per_column_random(8, 10, 0.5, 42);
//! let cfg = SimConfig::new(8, 10, 1);
//! let one_shot = simulate(&g, &cfg, &mut OneShotScheduler::new(&cfg, 1));
//! let window = simulate(
//!     &g,
//!     &cfg,
//!     &mut OnlineWindowScheduler::new(&cfg, &g, WindowMode::Dynamic, 1),
//! );
//! assert!(one_shot.all_committed && window.all_committed);
//! ```
//!
//! And the event-core surface the harness sweeps:
//!
//! ```
//! use wtm_sim::{replay, record_run, run_sim, SimRunSpec};
//!
//! let spec = SimRunSpec {
//!     scenario: "distributed@nodes=2,skew=1".into(),
//!     scheduler: "Online-Dynamic".into(),
//!     m: 4,
//!     n: 3,
//!     tau: 2,
//!     net: "fixed:2".into(),
//!     seed: 7,
//! };
//! let run = run_sim(&spec, false).unwrap();
//! assert!(run.outcome.all_committed);
//! let recorded = record_run(&spec).unwrap();
//! assert_eq!(replay(&recorded).unwrap(), run.outcome);
//! ```

pub mod coloring;
pub mod engine;
pub mod error;
pub mod event;
pub mod graph;
pub mod net;
pub mod scenario;
pub mod sched;

pub use coloring::greedy_coloring;
pub use engine::{run_events, simulate, SimConfig, SimOutcome, SimSetup};
pub use error::SimError;
pub use event::{EventLog, EventQueue, Record};
pub use graph::ConflictGraph;
pub use net::{
    CrashEvent, FixedLatency, NetSpec, NetworkModel, NodeId, SeededJitter, Topology, ZeroLatency,
};
pub use scenario::{
    build_scenario, build_sim_scheduler, record_run, replay, run_sim, scenario_infos, Scenario,
    ScenarioInfo, SimRun, SimRunSpec, SIM_SCHEDULER_NAMES,
};
pub use sched::{
    FreeRandomizedScheduler, GreedyTimestampScheduler, OfflineWindowScheduler, OneShotScheduler,
    OnlineWindowScheduler, PolkaProgressScheduler, SimScheduler, WindowMode,
};
