//! # wtm-sim — deterministic discrete-time transaction-scheduling simulator
//!
//! The paper's theory (§II) reasons about an abstract model: an `M × N`
//! window of unit-duration transactions over an explicit **conflict
//! graph**, scheduled in discrete time steps. Two of its algorithms need
//! that model directly:
//!
//! * **Offline** (§II-B1) resolves conflicts by greedy-coloring the
//!   conflict graph inside each frame — impossible in a real STM (it
//!   requires global knowledge; the paper excludes it from the DSTM2
//!   evaluation for exactly this reason), natural in a simulator.
//! * The makespan theorems 2.1–2.4 predict scaling shapes
//!   (`O(τ·(C + N·log MN))` etc.) that wall-clock runs on a noisy host
//!   cannot cleanly exhibit.
//!
//! This crate implements that abstract model: conflict-graph generators
//! ([`graph`]), greedy coloring ([`coloring`]), a step-accurate execution
//! engine ([`engine`]), and schedulers ([`sched`]) for the one-shot
//! baseline, free-running RandomizedRounds, Greedy timestamps, and the
//! window family (Online, Online-Dynamic, Adaptive, and the coloring-based
//! Offline).
//!
//! Everything is seeded and deterministic: the same inputs produce the
//! same makespan, which the property tests rely on.
//!
//! ```
//! use wtm_sim::graph::ConflictGraph;
//! use wtm_sim::engine::{simulate, SimConfig};
//! use wtm_sim::sched::{OneShotScheduler, OnlineWindowScheduler, WindowMode};
//!
//! let g = ConflictGraph::per_column_random(8, 10, 0.5, 42);
//! let cfg = SimConfig::new(8, 10, 1);
//! let one_shot = simulate(&g, &cfg, &mut OneShotScheduler::new(&cfg, 1));
//! let window = simulate(
//!     &g,
//!     &cfg,
//!     &mut OnlineWindowScheduler::new(&cfg, &g, WindowMode::Dynamic, 1),
//! );
//! assert!(one_shot.all_committed && window.all_committed);
//! ```

pub mod coloring;
pub mod engine;
pub mod graph;
pub mod sched;

pub use coloring::greedy_coloring;
pub use engine::{simulate, SimConfig, SimOutcome};
pub use graph::ConflictGraph;
pub use sched::{
    FreeRandomizedScheduler, GreedyTimestampScheduler, OfflineWindowScheduler, OneShotScheduler,
    OnlineWindowScheduler, PolkaProgressScheduler, SimScheduler, WindowMode,
};
