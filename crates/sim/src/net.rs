//! The topology layer: nodes, clock skew, and the network model.
//!
//! The paper's model is implicitly single-node: conflict detection and the
//! contention manager's verdict are instantaneous. This layer makes that
//! assumption explicit and breakable. Threads are **pinned to nodes** by a
//! [`Topology`]; a duel between two transactions is detected at the
//! lower-id party's node (instantaneously — detection is local), and the
//! verdict then travels to the loser's node through a pluggable
//! [`NetworkModel`]:
//!
//! * [`ZeroLatency`] — the default; reproduces the paper's semantics (and
//!   the pre-event-core simulator) exactly.
//! * [`FixedLatency`] — every message takes a constant number of steps.
//! * [`SeededJitter`] — seeded uniform jitter on top of a base latency,
//!   with an optional per-message drop probability. Dropped verdicts are
//!   never retransmitted: a loser whose verdict is lost can commit as a
//!   **zombie** (counted separately in the outcome).
//!
//! Per-node **window clocks** may also be skewed: a node's local time is
//! `step + skew(node)`, and duels are stamped with the detector node's
//! local time, so timestamp-based managers (Greedy, the window family)
//! see skewed priorities — exactly the failure mode a distributed window
//! CM would face.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::error::SimError;

/// Node index inside a [`Topology`].
pub type NodeId = usize;

/// Threads pinned to nodes, plus per-node clock skew in steps.
#[derive(Debug, Clone)]
pub struct Topology {
    node_of: Vec<NodeId>,
    skew: Vec<u64>,
}

impl Topology {
    /// Everything on one node with a true clock: the paper's world.
    pub fn single_node(m: usize) -> Self {
        Topology {
            node_of: vec![0; m],
            skew: vec![0],
        }
    }

    /// Threads dealt round-robin over `nodes` nodes; node `k`'s clock
    /// runs `k · skew_step` steps ahead.
    pub fn round_robin(m: usize, nodes: usize, skew_step: u64) -> Self {
        assert!(nodes >= 1, "need at least one node");
        Topology {
            node_of: (0..m).map(|i| i % nodes).collect(),
            skew: (0..nodes).map(|k| k as u64 * skew_step).collect(),
        }
    }

    /// `replicas` contiguous blocks of `base_m` threads, block `r` on
    /// node `r` (the replicated-transactions layout).
    pub fn blocks(base_m: usize, replicas: usize, skew_step: u64) -> Self {
        assert!(replicas >= 1, "need at least one replica");
        Topology {
            node_of: (0..base_m * replicas).map(|i| i / base_m).collect(),
            skew: (0..replicas).map(|k| k as u64 * skew_step).collect(),
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.skew.len()
    }

    /// Number of pinned threads.
    pub fn threads(&self) -> usize {
        self.node_of.len()
    }

    /// Which node runs thread `i`.
    pub fn node_of(&self, thread: usize) -> NodeId {
        self.node_of[thread]
    }

    /// Clock skew of `node` in steps (local time = `step + skew`).
    pub fn skew(&self, node: NodeId) -> u64 {
        self.skew[node]
    }
}

/// A scheduled node failure: `node` goes down at step `at` and recovers
/// `down` steps later. Its in-flight transactions abort at the crash and
/// the node issues nothing while down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    pub node: NodeId,
    pub at: u64,
    pub down: u64,
}

/// Message latency between nodes, in steps. `None` = the message is
/// dropped (verdicts are not retransmitted; commit acks are).
pub trait NetworkModel {
    fn delay(&mut self, src: NodeId, dst: NodeId, now: u64) -> Option<u64>;
}

/// Instantaneous delivery: the paper's assumption, bit-identical to the
/// pre-event-core simulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroLatency;

impl NetworkModel for ZeroLatency {
    fn delay(&mut self, _src: NodeId, _dst: NodeId, _now: u64) -> Option<u64> {
        Some(0)
    }
}

/// Every message takes exactly this many steps. `FixedLatency(0)` is
/// semantically identical to [`ZeroLatency`].
#[derive(Debug, Clone, Copy)]
pub struct FixedLatency(pub u64);

impl NetworkModel for FixedLatency {
    fn delay(&mut self, _src: NodeId, _dst: NodeId, _now: u64) -> Option<u64> {
        Some(self.0)
    }
}

/// `base + U[0, jitter]` steps, with `drop_permille`/1000 probability of
/// losing the message entirely. Fully seeded: the same seed draws the
/// same delay sequence.
#[derive(Debug, Clone)]
pub struct SeededJitter {
    pub base: u64,
    pub jitter: u64,
    pub drop_permille: u32,
    rng: SmallRng,
}

impl SeededJitter {
    pub fn new(base: u64, jitter: u64, drop_permille: u32, seed: u64) -> Self {
        SeededJitter {
            base,
            jitter,
            drop_permille: drop_permille.min(1000),
            rng: SmallRng::seed_from_u64(seed ^ 0x01A7_E9C7),
        }
    }
}

impl NetworkModel for SeededJitter {
    fn delay(&mut self, _src: NodeId, _dst: NodeId, _now: u64) -> Option<u64> {
        if self.drop_permille > 0 && self.rng.random_range(0..1000u32) < self.drop_permille {
            return None;
        }
        let j = if self.jitter > 0 {
            self.rng.random_range(0..=self.jitter)
        } else {
            0
        };
        Some(self.base + j)
    }
}

/// A parsed, canonical network-model spec — the form that enters cell
/// identity keys:
///
/// * `zero`
/// * `fixed:<steps>`
/// * `jitter:<base>,j=<jitter>,drop=<permille>` (suffix parts optional on
///   input, always printed in canonical form)
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetSpec {
    Zero,
    Fixed(u64),
    Jitter {
        base: u64,
        jitter: u64,
        drop_permille: u32,
    },
}

impl NetSpec {
    pub fn parse(s: &str) -> Result<NetSpec, SimError> {
        let bad = |reason: &str| SimError::BadNetSpec {
            spec: s.to_string(),
            reason: reason.to_string(),
        };
        if s == "zero" {
            return Ok(NetSpec::Zero);
        }
        if let Some(rest) = s.strip_prefix("fixed:") {
            let steps = rest
                .parse::<u64>()
                .map_err(|_| bad("latency must be an integer number of steps"))?;
            return Ok(NetSpec::Fixed(steps));
        }
        if let Some(rest) = s.strip_prefix("jitter:") {
            let mut parts = rest.split(',');
            let base = parts
                .next()
                .and_then(|p| p.parse::<u64>().ok())
                .ok_or_else(|| bad("jitter needs an integer base latency"))?;
            let mut jitter = 0u64;
            let mut drop_permille = 0u32;
            for p in parts {
                if let Some(v) = p.strip_prefix("j=") {
                    jitter = v.parse().map_err(|_| bad("j= must be an integer"))?;
                } else if let Some(v) = p.strip_prefix("drop=") {
                    drop_permille = v
                        .parse()
                        .map_err(|_| bad("drop= must be an integer permille"))?;
                    if drop_permille > 1000 {
                        return Err(bad("drop= is permille, max 1000"));
                    }
                } else {
                    return Err(bad("unknown jitter parameter (want j= or drop=)"));
                }
            }
            return Ok(NetSpec::Jitter {
                base,
                jitter,
                drop_permille,
            });
        }
        Err(bad("unknown model (want zero, fixed:<steps>, or jitter:…)"))
    }

    /// Instantiate the model; `seed` feeds [`SeededJitter`] only.
    pub fn build(&self, seed: u64) -> Box<dyn NetworkModel> {
        match *self {
            NetSpec::Zero => Box::new(ZeroLatency),
            NetSpec::Fixed(d) => Box::new(FixedLatency(d)),
            NetSpec::Jitter {
                base,
                jitter,
                drop_permille,
            } => Box::new(SeededJitter::new(base, jitter, drop_permille, seed)),
        }
    }
}

impl std::fmt::Display for NetSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            NetSpec::Zero => write!(f, "zero"),
            NetSpec::Fixed(d) => write!(f, "fixed:{d}"),
            NetSpec::Jitter {
                base,
                jitter,
                drop_permille,
            } => write!(f, "jitter:{base},j={jitter},drop={drop_permille}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topologies_pin_and_skew() {
        let t = Topology::single_node(4);
        assert_eq!(t.nodes(), 1);
        assert!((0..4).all(|i| t.node_of(i) == 0));
        assert_eq!(t.skew(0), 0);

        let rr = Topology::round_robin(5, 2, 3);
        assert_eq!(rr.nodes(), 2);
        assert_eq!(
            (0..5).map(|i| rr.node_of(i)).collect::<Vec<_>>(),
            vec![0, 1, 0, 1, 0]
        );
        assert_eq!(rr.skew(1), 3);

        let b = Topology::blocks(3, 2, 0);
        assert_eq!(b.threads(), 6);
        assert_eq!(b.node_of(2), 0);
        assert_eq!(b.node_of(3), 1);
    }

    #[test]
    fn netspec_parse_roundtrips_canonically() {
        for s in ["zero", "fixed:0", "fixed:4", "jitter:2,j=3,drop=50"] {
            let spec = NetSpec::parse(s).unwrap();
            assert_eq!(spec.to_string(), s);
            assert_eq!(NetSpec::parse(&spec.to_string()).unwrap(), spec);
        }
        // Suffix parts are optional on input but canonicalized on output.
        assert_eq!(
            NetSpec::parse("jitter:5").unwrap().to_string(),
            "jitter:5,j=0,drop=0"
        );
    }

    #[test]
    fn netspec_rejects_garbage() {
        for s in [
            "warp:9",
            "fixed:abc",
            "fixed:",
            "jitter:",
            "jitter:1,x=2",
            "jitter:1,drop=2000",
            "",
        ] {
            let e = NetSpec::parse(s).unwrap_err();
            assert!(matches!(e, SimError::BadNetSpec { .. }), "{s}: {e}");
        }
    }

    #[test]
    fn models_deliver_what_they_promise() {
        assert_eq!(ZeroLatency.delay(0, 1, 9), Some(0));
        assert_eq!(FixedLatency(4).delay(0, 1, 9), Some(4));
        let mut j = SeededJitter::new(2, 3, 0, 42);
        for _ in 0..100 {
            let d = j.delay(0, 1, 0).unwrap();
            assert!((2..=5).contains(&d));
        }
        // Same seed, same delay stream.
        let draw = |seed| {
            let mut m = SeededJitter::new(1, 10, 100, seed);
            (0..50).map(|t| m.delay(0, 1, t)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        // drop=1000 drops everything.
        let mut d = SeededJitter::new(1, 0, 1000, 3);
        assert!((0..20).all(|t| d.delay(0, 1, t).is_none()));
    }
}
