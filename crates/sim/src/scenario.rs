//! The scenario layer: named, parameterized simulation setups.
//!
//! A scenario bundles everything above the event core — the conflict
//! graph, the topology, the fault plan, and replication — behind a
//! registry name with optional `@k=v,…` parameters (the same idiom the
//! harness uses for manager names). The paper-shaped scenarios build
//! single-node windows; the *beyond-paper* scenarios place threads on
//! nodes and exercise the network model:
//!
//! | name | shape |
//! |---|---|
//! | `fig2-shape` | every column a clique (`C = M−1`), single node |
//! | `per-column@p=50` | per-column random conflicts, single node |
//! | `clustered@pin=90,pcross=5` | dense columns, sparse cross edges |
//! | `resources@s=64,ops=4,write=50` | §II-A resource-footprint conflicts |
//! | `distributed@nodes=2,skew=0,…` | clustered graph, threads round-robin over nodes, optional per-node clock skew |
//! | `replicated@nodes=2,p=50` | each base thread replicated K ways, one replica block per node, commit-ack gating between columns |
//! | `crash-recovery@nodes=2,node=1,at=8,down=16,…` | distributed + one scheduled node failure mid-window |
//!
//! Schedulers are likewise built by registry name
//! ([`build_sim_scheduler`]), and a whole run is described by a
//! [`SimRunSpec`] — which is what the harness sweeps, what
//! [`record_run`] serializes, and what [`replay`] re-executes and
//! byte-compares.

use crate::engine::{run_events, SimConfig, SimOutcome, SimSetup};
use crate::error::SimError;
use crate::event::EventLog;
use crate::graph::{ConflictGraph, TxnId};
use crate::net::{CrashEvent, NetSpec, Topology};
use crate::sched::{
    FreeRandomizedScheduler, GreedyTimestampScheduler, OfflineWindowScheduler, OneShotScheduler,
    OnlineWindowScheduler, PolkaProgressScheduler, SimScheduler, WindowMode,
};

/// Registry metadata for one scenario.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioInfo {
    pub name: &'static str,
    pub summary: &'static str,
    /// True for scenarios the paper's model cannot express (distributed
    /// topologies, replication, faults).
    pub beyond_paper: bool,
}

/// Everything the registry knows.
pub fn scenario_infos() -> &'static [ScenarioInfo] {
    &[
        ScenarioInfo {
            name: "fig2-shape",
            summary: "every column a clique (C = M-1), single node",
            beyond_paper: false,
        },
        ScenarioInfo {
            name: "per-column",
            summary: "per-column random conflicts (p= percent), single node",
            beyond_paper: false,
        },
        ScenarioInfo {
            name: "clustered",
            summary: "dense columns (pin=), sparse cross edges (pcross=)",
            beyond_paper: false,
        },
        ScenarioInfo {
            name: "resources",
            summary: "resource-footprint conflicts (s=, ops=, write=)",
            beyond_paper: false,
        },
        ScenarioInfo {
            name: "distributed",
            summary: "threads round-robin over nodes= with clock skew=",
            beyond_paper: true,
        },
        ScenarioInfo {
            name: "replicated",
            summary: "K-way replicated window (nodes=), ack-gated columns",
            beyond_paper: true,
        },
        ScenarioInfo {
            name: "crash-recovery",
            summary: "distributed + node= crashes at= for down= steps",
            beyond_paper: true,
        },
    ]
}

fn scenario_names() -> Vec<&'static str> {
    scenario_infos().iter().map(|i| i.name).collect()
}

/// Scheduler registry names accepted by [`build_sim_scheduler`].
pub const SIM_SCHEDULER_NAMES: &[&str] = &[
    "OneShot",
    "RandomizedRounds",
    "Greedy",
    "Polka",
    "Online",
    "Online-Dynamic",
    "Adaptive-Dynamic",
    "Offline",
];

/// Build a scheduler by registry name. The seed is passed through to the
/// scheduler constructor untouched (each mixes in its own constant).
pub fn build_sim_scheduler(
    name: &str,
    cfg: &SimConfig,
    graph: &ConflictGraph,
    seed: u64,
) -> Result<Box<dyn SimScheduler>, SimError> {
    Ok(match name {
        "OneShot" => Box::new(OneShotScheduler::new(cfg, seed)),
        "RandomizedRounds" => Box::new(FreeRandomizedScheduler::new(cfg, seed)),
        "Greedy" => Box::new(GreedyTimestampScheduler::new(cfg)),
        "Polka" => Box::new(PolkaProgressScheduler::new(cfg, seed)),
        "Online" => Box::new(OnlineWindowScheduler::new(
            cfg,
            graph,
            WindowMode::Static,
            seed,
        )),
        "Online-Dynamic" => Box::new(OnlineWindowScheduler::new(
            cfg,
            graph,
            WindowMode::Dynamic,
            seed,
        )),
        "Adaptive-Dynamic" => Box::new(OnlineWindowScheduler::adaptive(
            cfg,
            WindowMode::Dynamic,
            seed,
        )),
        "Offline" => Box::new(OfflineWindowScheduler::new(cfg, graph, seed)),
        _ => {
            return Err(SimError::UnknownScheduler {
                name: name.to_string(),
                known: SIM_SCHEDULER_NAMES.to_vec(),
            })
        }
    })
}

/// A built scenario, ready for [`run_events`].
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The spec string it was built from.
    pub spec: String,
    /// Expanded conflict graph (`m × replicas` threads when replicated).
    pub graph: ConflictGraph,
    pub topo: Topology,
    pub crash_plan: Vec<CrashEvent>,
    pub replicas: usize,
    pub beyond_paper: bool,
}

/// Split `name@k=v,…`, rejecting duplicate keys.
type ParsedParams<'a> = (&'a str, Vec<(String, String)>);

fn parse_params(spec: &str) -> Result<ParsedParams<'_>, SimError> {
    let (base, rest) = match spec.split_once('@') {
        Some((b, r)) => (b, r),
        None => return Ok((spec, Vec::new())),
    };
    let mut params = Vec::new();
    for part in rest.split(',') {
        let (k, v) = part.split_once('=').ok_or_else(|| SimError::BadParams {
            name: spec.to_string(),
            reason: format!("parameter {part:?} is not k=v"),
        })?;
        if params.iter().any(|(pk, _)| pk == k) {
            return Err(SimError::BadParams {
                name: spec.to_string(),
                reason: format!("duplicate parameter {k:?}"),
            });
        }
        params.push((k.to_string(), v.to_string()));
    }
    Ok((base, params))
}

struct Params<'a> {
    spec: &'a str,
    entries: Vec<(String, String)>,
    used: Vec<bool>,
}

impl<'a> Params<'a> {
    fn get(&mut self, key: &str) -> Option<&str> {
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if k == key {
                self.used[i] = true;
                return Some(v);
            }
        }
        None
    }

    fn u64_or(&mut self, key: &str, default: u64) -> Result<u64, SimError> {
        let spec = self.spec.to_string();
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| SimError::BadParams {
                name: spec,
                reason: format!("{key}= must be an integer, got {v:?}"),
            }),
        }
    }

    fn pct_or(&mut self, key: &str, default: u64) -> Result<f64, SimError> {
        let v = self.u64_or(key, default)?;
        if v > 100 {
            return Err(SimError::BadParams {
                name: self.spec.to_string(),
                reason: format!("{key}= is a percentage, max 100 (got {v})"),
            });
        }
        Ok(v as f64 / 100.0)
    }

    fn finish(self) -> Result<(), SimError> {
        for (i, (k, _)) in self.entries.iter().enumerate() {
            if !self.used[i] {
                return Err(SimError::BadParams {
                    name: self.spec.to_string(),
                    reason: format!("unknown parameter {k:?}"),
                });
            }
        }
        Ok(())
    }
}

/// Replicate `base` K times: replica r's copy of thread i is thread
/// `r·m + i`, and conflict edges exist only *within* a replica (each
/// replica re-executes the same window against its own node's state).
fn replicate_graph(base: &ConflictGraph, k: usize) -> ConflictGraph {
    let (bm, n) = (base.m(), base.n());
    let mut g = ConflictGraph::empty(bm * k, n);
    for r in 0..k {
        for a in 0..base.len() as TxnId {
            let (i, j) = base.coords(a);
            for &b in base.neighbors(a) {
                if b > a {
                    let (i2, j2) = base.coords(b);
                    g.add_edge(g.id(r * bm + i, j), g.id(r * bm + i2, j2));
                }
            }
        }
    }
    g
}

/// Build a scenario from its spec string for an `m × n` base window.
pub fn build_scenario(spec: &str, m: usize, n: usize, seed: u64) -> Result<Scenario, SimError> {
    if m == 0 || n == 0 {
        return Err(SimError::BadConfig {
            reason: format!("scenario dimensions must be >= 1, got m={m} n={n}"),
        });
    }
    let (base, entries) = parse_params(spec)?;
    let used = vec![false; entries.len()];
    let mut p = Params {
        spec,
        entries,
        used,
    };
    let info = scenario_infos()
        .iter()
        .find(|i| i.name == base)
        .copied()
        .ok_or_else(|| SimError::UnknownScenario {
            name: base.to_string(),
            known: scenario_names(),
        })?;

    let mut crash_plan = Vec::new();
    let mut replicas = 1usize;
    let (graph, topo) = match base {
        "fig2-shape" => (
            ConflictGraph::complete_columns(m, n),
            Topology::single_node(m),
        ),
        "per-column" => {
            let prob = p.pct_or("p", 50)?;
            (
                ConflictGraph::per_column_random(m, n, prob, seed),
                Topology::single_node(m),
            )
        }
        "clustered" => {
            let pin = p.pct_or("pin", 90)?;
            let pcross = p.pct_or("pcross", 5)?;
            (
                ConflictGraph::clustered(m, n, pin, pcross, seed),
                Topology::single_node(m),
            )
        }
        "resources" => {
            let s = p.u64_or("s", 64)? as usize;
            let ops = p.u64_or("ops", 4)? as usize;
            let write = p.pct_or("write", 50)?;
            if s == 0 || ops == 0 {
                return Err(SimError::BadParams {
                    name: spec.to_string(),
                    reason: "s= and ops= must be >= 1".into(),
                });
            }
            (
                ConflictGraph::from_resources(m, n, s, ops, write, seed),
                Topology::single_node(m),
            )
        }
        "distributed" | "crash-recovery" => {
            let nodes = p.u64_or("nodes", 2)? as usize;
            let skew = p.u64_or("skew", 0)?;
            let pin = p.pct_or("pin", 90)?;
            let pcross = p.pct_or("pcross", 5)?;
            if nodes == 0 {
                return Err(SimError::BadParams {
                    name: spec.to_string(),
                    reason: "nodes= must be >= 1".into(),
                });
            }
            if base == "crash-recovery" {
                let node = p.u64_or("node", 1)? as usize;
                let at = p.u64_or("at", 8)?;
                let down = p.u64_or("down", 16)?;
                if node >= nodes {
                    return Err(SimError::BadParams {
                        name: spec.to_string(),
                        reason: format!("node={node} out of range (nodes={nodes})"),
                    });
                }
                crash_plan.push(CrashEvent { node, at, down });
            }
            (
                ConflictGraph::clustered(m, n, pin, pcross, seed),
                Topology::round_robin(m, nodes, skew),
            )
        }
        "replicated" => {
            let nodes = p.u64_or("nodes", 2)? as usize;
            let skew = p.u64_or("skew", 0)?;
            let prob = p.pct_or("p", 50)?;
            if nodes == 0 {
                return Err(SimError::BadParams {
                    name: spec.to_string(),
                    reason: "nodes= must be >= 1".into(),
                });
            }
            replicas = nodes;
            let base_graph = ConflictGraph::per_column_random(m, n, prob, seed);
            (
                replicate_graph(&base_graph, nodes),
                Topology::blocks(m, nodes, skew),
            )
        }
        _ => unreachable!("filtered by the registry lookup above"),
    };
    p.finish()?;
    Ok(Scenario {
        spec: spec.to_string(),
        graph,
        topo,
        crash_plan,
        replicas,
        beyond_paper: info.beyond_paper,
    })
}

/// A complete, serializable description of one simulator run — the unit
/// the harness sweeps and the replay format pins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRunSpec {
    /// Scenario spec string (registry name + `@k=v,…` params).
    pub scenario: String,
    /// Scheduler registry name (see [`SIM_SCHEDULER_NAMES`]).
    pub scheduler: String,
    /// Base window height M (replicated scenarios expand this).
    pub m: usize,
    /// Window width N.
    pub n: usize,
    /// Transaction duration τ in steps.
    pub tau: u32,
    /// Network model spec (see [`NetSpec::parse`]).
    pub net: String,
    pub seed: u64,
}

/// What [`run_sim`] returns.
#[derive(Debug, Clone)]
pub struct SimRun {
    pub outcome: SimOutcome,
    /// Event log; empty unless `with_log` was set.
    pub log: EventLog,
    /// Thread count actually simulated (`m × replicas`).
    pub sim_m: usize,
}

/// Build everything from a [`SimRunSpec`] and run it through the event
/// core.
pub fn run_sim(spec: &SimRunSpec, with_log: bool) -> Result<SimRun, SimError> {
    let scenario = build_scenario(&spec.scenario, spec.m, spec.n, spec.seed)?;
    let cfg = SimConfig::try_new(scenario.graph.m(), spec.n, spec.tau)?;
    let net_spec = NetSpec::parse(&spec.net)?;
    let mut net = net_spec.build(spec.seed ^ 0x0005_EED5);
    let mut sched = build_sim_scheduler(&spec.scheduler, &cfg, &scenario.graph, spec.seed)?;
    let mut log = if with_log {
        EventLog::recording()
    } else {
        EventLog::disabled()
    };
    let setup = SimSetup {
        graph: &scenario.graph,
        cfg: &cfg,
        topo: &scenario.topo,
        crash_plan: &scenario.crash_plan,
        replicas: scenario.replicas,
        queue_seed: spec.seed,
    };
    let outcome = run_events(&setup, sched.as_mut(), net.as_mut(), &mut log);
    Ok(SimRun {
        outcome,
        log,
        sim_m: cfg.m,
    })
}

const LOG_HEADER: &str = "wtm-sim-log v1";

/// Run `spec` with logging and serialize the recorded run: a text header
/// naming the full spec, the outcome, and the event log in hex.
pub fn record_run(spec: &SimRunSpec) -> Result<String, SimError> {
    let run = run_sim(spec, true)?;
    let o = run.outcome;
    Ok(format!(
        "{LOG_HEADER}\nscenario={}\nscheduler={}\nm={}\nn={}\ntau={}\nnet={}\nseed={:#x}\n\
         outcome={} {} {} {} {} {}\nlog={}\n",
        spec.scenario,
        spec.scheduler,
        spec.m,
        spec.n,
        spec.tau,
        spec.net,
        spec.seed,
        o.makespan,
        o.commits,
        o.aborts,
        o.zombie_commits,
        o.sum_response,
        o.all_committed,
        run.log.hex(),
    ))
}

fn replay_err(reason: impl Into<String>) -> SimError {
    SimError::ReplayMismatch {
        reason: reason.into(),
    }
}

/// Re-execute a recorded run and assert the event log and outcome are
/// byte-identical; returns the (re-verified) outcome.
pub fn replay(recorded: &str) -> Result<SimOutcome, SimError> {
    let mut lines = recorded.lines();
    if lines.next() != Some(LOG_HEADER) {
        return Err(replay_err(format!("missing {LOG_HEADER:?} header")));
    }
    let mut field = |name: &str| -> Result<String, SimError> {
        let line = lines
            .next()
            .ok_or_else(|| replay_err(format!("truncated log: missing {name}=")))?;
        line.strip_prefix(name)
            .and_then(|r| r.strip_prefix('='))
            .map(str::to_string)
            .ok_or_else(|| replay_err(format!("expected {name}=, got {line:?}")))
    };
    let scenario = field("scenario")?;
    let scheduler = field("scheduler")?;
    let parse_num = |s: &str, what: &str| -> Result<u64, SimError> {
        let s = s.trim();
        if let Some(hex) = s.strip_prefix("0x") {
            u64::from_str_radix(hex, 16)
        } else {
            s.parse()
        }
        .map_err(|_| replay_err(format!("bad {what}: {s:?}")))
    };
    let m = parse_num(&field("m")?, "m")? as usize;
    let n = parse_num(&field("n")?, "n")? as usize;
    let tau = parse_num(&field("tau")?, "tau")? as u32;
    let net = field("net")?;
    let seed = parse_num(&field("seed")?, "seed")?;
    let outcome_line = field("outcome")?;
    let log_hex = field("log")?;

    let spec = SimRunSpec {
        scenario,
        scheduler,
        m,
        n,
        tau,
        net,
        seed,
    };
    let run = run_sim(&spec, true)?;
    let fresh = run.log.hex();
    if fresh != log_hex {
        let at = fresh
            .bytes()
            .zip(log_hex.bytes())
            .position(|(a, b)| a != b)
            .map(|i| i / 2)
            .unwrap_or_else(|| fresh.len().min(log_hex.len()) / 2);
        return Err(replay_err(format!(
            "event log diverges at byte {at} (recorded {} bytes, replayed {})",
            log_hex.len() / 2,
            fresh.len() / 2,
        )));
    }
    let o = run.outcome;
    let fresh_outcome = format!(
        "{} {} {} {} {} {}",
        o.makespan, o.commits, o.aborts, o.zombie_commits, o.sum_response, o.all_committed
    );
    if fresh_outcome != outcome_line {
        return Err(replay_err(format!(
            "outcome mismatch: recorded {outcome_line:?}, replayed {fresh_outcome:?}"
        )));
    }
    Ok(o)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_rejects_unknowns_and_bad_params() {
        let e = build_scenario("bogus", 4, 4, 1).unwrap_err();
        assert!(matches!(e, SimError::UnknownScenario { .. }), "{e}");
        for spec in [
            "per-column@p=abc",
            "per-column@p=150",
            "per-column@p=1,p=2",
            "per-column@junk",
            "fig2-shape@x=1",
            "crash-recovery@nodes=2,node=5",
            "resources@s=0",
        ] {
            let e = build_scenario(spec, 4, 4, 1).unwrap_err();
            assert!(matches!(e, SimError::BadParams { .. }), "{spec}: {e}");
        }
        let e = match build_sim_scheduler(
            "Bogus",
            &SimConfig::new(2, 2, 1),
            &ConflictGraph::empty(2, 2),
            1,
        ) {
            Err(e) => e,
            Ok(_) => panic!("expected an error for an unknown scheduler"),
        };
        assert!(matches!(e, SimError::UnknownScheduler { .. }));
    }

    #[test]
    fn paper_shaped_scenarios_build_single_node() {
        for spec in ["fig2-shape", "per-column@p=30", "clustered", "resources"] {
            let sc = build_scenario(spec, 4, 5, 7).unwrap();
            assert_eq!(sc.topo.nodes(), 1, "{spec}");
            assert_eq!(sc.graph.m(), 4);
            assert_eq!(sc.replicas, 1);
            assert!(!sc.beyond_paper, "{spec}");
            assert!(sc.crash_plan.is_empty());
        }
    }

    #[test]
    fn distributed_scenarios_expose_topology_and_faults() {
        let d = build_scenario("distributed@nodes=4,skew=2", 8, 4, 7).unwrap();
        assert_eq!(d.topo.nodes(), 4);
        assert_eq!(d.topo.skew(3), 6);
        assert!(d.beyond_paper);

        let r = build_scenario("replicated@nodes=3,p=40", 4, 4, 7).unwrap();
        assert_eq!(r.replicas, 3);
        assert_eq!(r.graph.m(), 12, "replication expands the window height");
        // Edges stay within a replica block.
        for a in 0..r.graph.len() as TxnId {
            let block = r.graph.coords(a).0 / 4;
            for &b in r.graph.neighbors(a) {
                assert_eq!(r.graph.coords(b).0 / 4, block);
            }
        }

        let c = build_scenario("crash-recovery@nodes=2,node=1,at=5,down=9", 4, 4, 7).unwrap();
        assert_eq!(
            c.crash_plan,
            vec![CrashEvent {
                node: 1,
                at: 5,
                down: 9
            }]
        );
    }

    #[test]
    fn every_scheduler_completes_every_scenario() {
        for info in scenario_infos() {
            for sched in SIM_SCHEDULER_NAMES {
                let spec = SimRunSpec {
                    scenario: info.name.to_string(),
                    scheduler: sched.to_string(),
                    m: 4,
                    n: 3,
                    tau: 2,
                    net: "fixed:1".into(),
                    seed: 11,
                };
                let run = run_sim(&spec, false).unwrap();
                assert!(
                    run.outcome.all_committed,
                    "{}/{sched}: {:?}",
                    info.name, run.outcome
                );
            }
        }
    }

    #[test]
    fn replicated_run_commits_every_replica() {
        let spec = SimRunSpec {
            scenario: "replicated@nodes=2".into(),
            scheduler: "Greedy".into(),
            m: 3,
            n: 4,
            tau: 2,
            net: "fixed:2".into(),
            seed: 5,
        };
        let run = run_sim(&spec, false).unwrap();
        assert_eq!(run.sim_m, 6);
        assert_eq!(run.outcome.commits, 6 * 4);
        assert!(run.outcome.all_committed);
        // Ack gating means a column can't finish before its siblings'
        // acks crossed the wire: makespan exceeds the unreplicated run.
        let solo = run_sim(
            &SimRunSpec {
                scenario: "per-column@p=50".into(),
                m: 3,
                ..spec.clone()
            },
            false,
        )
        .unwrap();
        assert!(run.outcome.makespan >= solo.outcome.makespan);
    }

    #[test]
    fn record_then_replay_roundtrips_and_detects_tampering() {
        let spec = SimRunSpec {
            scenario: "fig2-shape".into(),
            scheduler: "Online-Dynamic".into(),
            m: 4,
            n: 3,
            tau: 2,
            net: "fixed:1".into(),
            seed: 42,
        };
        let recorded = record_run(&spec).unwrap();
        let direct = run_sim(&spec, false).unwrap().outcome;
        let replayed = replay(&recorded).unwrap();
        assert_eq!(replayed, direct);

        // Flip one hex digit of the log: replay must refuse.
        let idx = recorded.find("log=").unwrap() + 10;
        let mut bad = recorded.clone().into_bytes();
        bad[idx] = if bad[idx] == b'0' { b'1' } else { b'0' };
        let e = replay(std::str::from_utf8(&bad).unwrap()).unwrap_err();
        assert!(matches!(e, SimError::ReplayMismatch { .. }), "{e}");

        // Corrupt the header: typed error, not a panic.
        assert!(replay("not a log").is_err());
    }
}
