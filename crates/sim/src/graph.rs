//! Conflict graphs over an `M × N` execution window.
//!
//! Node `(i, j)` is thread `i`'s `j`-th transaction, numbered
//! `id = i·N + j`. An edge means the two transactions conflict whenever
//! they run concurrently (they share a resource with at least one
//! writer, §II-A). Generators cover the regimes the paper discusses:
//!
//! * [`per_column_random`](ConflictGraph::per_column_random) — conflicts
//!   only between same-position transactions of different threads: the
//!   regime where "the benefits become more apparent … conflicts are more
//!   frequent inside the same column … and less frequent between
//!   different column transactions" (§I-B).
//! * [`clustered`](ConflictGraph::clustered) — dense within a column,
//!   sparse across neighbouring columns.
//! * [`from_resources`](ConflictGraph::from_resources) — transactions
//!   draw read/write sets over `s` shared resources and edges follow the
//!   paper's conflict definition; used for competitive-ratio experiments
//!   where `s` is the parameter.
//! * [`complete_columns`](ConflictGraph::complete_columns) — worst case,
//!   every column a clique (`C = M − 1`).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Transaction id inside a window (`i·N + j`).
pub type TxnId = u32;

/// Undirected conflict graph over the `M·N` window transactions.
#[derive(Debug, Clone)]
pub struct ConflictGraph {
    m: usize,
    n: usize,
    adj: Vec<Vec<TxnId>>,
}

impl ConflictGraph {
    /// Empty graph (no conflicts).
    pub fn empty(m: usize, n: usize) -> Self {
        assert!(m >= 1 && n >= 1);
        ConflictGraph {
            m,
            n,
            adj: vec![Vec::new(); m * n],
        }
    }

    /// Threads.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Transactions per thread.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total transactions.
    pub fn len(&self) -> usize {
        self.m * self.n
    }

    /// True if the window has no transactions (never, by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Node id of thread `i`'s `j`-th transaction.
    pub fn id(&self, i: usize, j: usize) -> TxnId {
        debug_assert!(i < self.m && j < self.n);
        (i * self.n + j) as TxnId
    }

    /// `(thread, position)` of a node id.
    pub fn coords(&self, t: TxnId) -> (usize, usize) {
        let t = t as usize;
        (t / self.n, t % self.n)
    }

    /// Add an undirected edge (idempotent).
    pub fn add_edge(&mut self, a: TxnId, b: TxnId) {
        assert_ne!(a, b, "no self-conflicts");
        if !self.adj[a as usize].contains(&b) {
            self.adj[a as usize].push(b);
            self.adj[b as usize].push(a);
        }
    }

    /// Neighbours of `t`.
    pub fn neighbors(&self, t: TxnId) -> &[TxnId] {
        &self.adj[t as usize]
    }

    /// Degree of `t`.
    pub fn degree(&self, t: TxnId) -> usize {
        self.adj[t as usize].len()
    }

    /// The paper's contention measure `C`: the maximum conflicts of any
    /// transaction in the window (max degree).
    pub fn contention(&self) -> usize {
        (0..self.len())
            .map(|t| self.degree(t as TxnId))
            .max()
            .unwrap_or(0)
    }

    /// Per-thread contention `Cᵢ`: max degree among thread `i`'s txns.
    pub fn contention_of_thread(&self, i: usize) -> usize {
        (0..self.n)
            .map(|j| self.degree(self.id(i, j)))
            .max()
            .unwrap_or(0)
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Are `a` and `b` adjacent?
    pub fn conflicts(&self, a: TxnId, b: TxnId) -> bool {
        self.adj[a as usize].contains(&b)
    }

    // ---- generators -------------------------------------------------------

    /// Edges only inside columns, each pair with probability `p`.
    pub fn per_column_random(m: usize, n: usize, p: f64, seed: u64) -> Self {
        let mut g = Self::empty(m, n);
        let mut rng = SmallRng::seed_from_u64(seed);
        for j in 0..n {
            for a in 0..m {
                for b in (a + 1)..m {
                    if rng.random_bool(p.clamp(0.0, 1.0)) {
                        g.add_edge(g.id(a, j), g.id(b, j));
                    }
                }
            }
        }
        g
    }

    /// Dense inside columns (`p_in`), sparse across adjacent columns
    /// (`p_cross`).
    pub fn clustered(m: usize, n: usize, p_in: f64, p_cross: f64, seed: u64) -> Self {
        let mut g = Self::per_column_random(m, n, p_in, seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xC105_7E2D);
        for j in 0..n.saturating_sub(1) {
            for a in 0..m {
                for b in 0..m {
                    if a != b && rng.random_bool(p_cross.clamp(0.0, 1.0)) {
                        g.add_edge(g.id(a, j), g.id(b, j + 1));
                    }
                }
            }
        }
        g
    }

    /// Every column is a clique: the worst case `C = M − 1`.
    pub fn complete_columns(m: usize, n: usize) -> Self {
        Self::per_column_random(m, n, 1.0, 0)
    }

    /// Resource-footprint model: each transaction reads/writes
    /// `ops_per_txn` of `s` shared resources (each op a write with
    /// probability `write_frac`); transactions conflict iff they share a
    /// resource at least one of them writes (§II-A's definition).
    pub fn from_resources(
        m: usize,
        n: usize,
        s: usize,
        ops_per_txn: usize,
        write_frac: f64,
        seed: u64,
    ) -> Self {
        assert!(s >= 1);
        let mut g = Self::empty(m, n);
        let mut rng = SmallRng::seed_from_u64(seed);
        // Footprints: per txn, sorted resource ids with a write flag.
        let mut footprints: Vec<Vec<(usize, bool)>> = Vec::with_capacity(m * n);
        for _ in 0..m * n {
            let mut fp: Vec<(usize, bool)> = (0..ops_per_txn)
                .map(|_| {
                    (
                        rng.random_range(0..s),
                        rng.random_bool(write_frac.clamp(0.0, 1.0)),
                    )
                })
                .collect();
            fp.sort_unstable();
            fp.dedup_by_key(|e| e.0); // keep strongest access per resource? writes sort after reads on ties of id
            footprints.push(fp);
        }
        // Invert: resource → (txn, writes?) list, then connect.
        let mut users: Vec<Vec<(TxnId, bool)>> = vec![Vec::new(); s];
        for (t, fp) in footprints.iter().enumerate() {
            for &(r, w) in fp {
                users[r].push((t as TxnId, w));
            }
        }
        for list in &users {
            for x in 0..list.len() {
                for y in (x + 1)..list.len() {
                    let (a, wa) = list[x];
                    let (b, wb) = list[y];
                    if (wa || wb) && a != b {
                        g.add_edge(a, b);
                    }
                }
            }
        }
        g
    }

    /// Build the conflict graph of an `M × N` window from *recorded*
    /// access footprints — e.g. traces captured from the real STM with
    /// `ThreadCtx::atomic_traced`. `footprints[i * n + j]` is transaction
    /// `(i, j)`'s `(object id, is_write)` list; two transactions conflict
    /// iff they share an object at least one of them writes (§II-A).
    pub fn from_footprints(m: usize, n: usize, footprints: &[Vec<(u64, bool)>]) -> Self {
        assert_eq!(footprints.len(), m * n, "one footprint per transaction");
        let mut g = Self::empty(m, n);
        // object id → (txn, wrote?) users.
        let mut users: std::collections::HashMap<u64, Vec<(TxnId, bool)>> =
            std::collections::HashMap::new();
        for (t, fp) in footprints.iter().enumerate() {
            // Collapse duplicate accesses, keeping the strongest (write).
            let mut seen: std::collections::HashMap<u64, bool> = std::collections::HashMap::new();
            for &(obj, w) in fp {
                let e = seen.entry(obj).or_insert(false);
                *e |= w;
            }
            for (obj, w) in seen {
                users.entry(obj).or_default().push((t as TxnId, w));
            }
        }
        for list in users.values() {
            for x in 0..list.len() {
                for y in (x + 1)..list.len() {
                    let (a, wa) = list[x];
                    let (b, wb) = list[y];
                    if (wa || wb) && a != b {
                        g.add_edge(a, b);
                    }
                }
            }
        }
        g
    }

    /// Greedy heuristic for a large clique inside one column (a valid
    /// makespan lower-bound witness: clique members must serialize).
    pub fn column_clique_bound(&self) -> usize {
        let mut best = 1.min(self.m);
        for j in 0..self.n {
            let col: Vec<TxnId> = (0..self.m).map(|i| self.id(i, j)).collect();
            // Greedy: repeatedly add the column node adjacent to all chosen.
            let mut chosen: Vec<TxnId> = Vec::new();
            for &c in &col {
                if chosen.iter().all(|&x| self.conflicts(c, x)) {
                    chosen.push(c);
                }
            }
            best = best.max(chosen.len());
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_and_coords_roundtrip() {
        let g = ConflictGraph::empty(4, 7);
        for i in 0..4 {
            for j in 0..7 {
                let t = g.id(i, j);
                assert_eq!(g.coords(t), (i, j));
            }
        }
        assert_eq!(g.len(), 28);
    }

    #[test]
    fn add_edge_is_idempotent_and_symmetric() {
        let mut g = ConflictGraph::empty(2, 2);
        g.add_edge(0, 2);
        g.add_edge(2, 0);
        assert_eq!(g.edge_count(), 1);
        assert!(g.conflicts(0, 2));
        assert!(g.conflicts(2, 0));
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    #[should_panic(expected = "no self-conflicts")]
    fn self_edge_rejected() {
        let mut g = ConflictGraph::empty(2, 2);
        g.add_edge(1, 1);
    }

    #[test]
    fn per_column_random_stays_in_columns() {
        let g = ConflictGraph::per_column_random(6, 5, 0.8, 3);
        for t in 0..g.len() as TxnId {
            let (_, j) = g.coords(t);
            for &nb in g.neighbors(t) {
                let (_, jn) = g.coords(nb);
                assert_eq!(j, jn, "edges must stay within a column");
            }
        }
        assert!(g.edge_count() > 0);
    }

    #[test]
    fn complete_columns_has_full_contention() {
        let g = ConflictGraph::complete_columns(8, 3);
        assert_eq!(g.contention(), 7);
        assert_eq!(g.edge_count(), 3 * 8 * 7 / 2);
        assert_eq!(g.column_clique_bound(), 8);
    }

    #[test]
    fn clustered_includes_cross_column_edges() {
        let g = ConflictGraph::clustered(4, 6, 0.9, 0.3, 9);
        let mut cross = 0;
        for t in 0..g.len() as TxnId {
            let (_, j) = g.coords(t);
            for &nb in g.neighbors(t) {
                if nb > t && g.coords(nb).1 != j {
                    cross += 1;
                }
            }
        }
        assert!(cross > 0, "expected cross-column edges");
    }

    #[test]
    fn resource_model_read_only_never_conflicts() {
        let g = ConflictGraph::from_resources(4, 4, 8, 3, 0.0, 5);
        assert_eq!(g.edge_count(), 0, "pure readers cannot conflict");
    }

    #[test]
    fn resource_model_fewer_resources_more_conflicts() {
        let sparse = ConflictGraph::from_resources(8, 8, 1024, 4, 0.5, 7);
        let dense = ConflictGraph::from_resources(8, 8, 4, 4, 0.5, 7);
        assert!(dense.edge_count() > sparse.edge_count());
    }

    #[test]
    fn footprints_build_expected_edges() {
        // 2x2 window; object 100 written by txn 0, read by txn 2;
        // object 200 read by txns 1 and 3 (no writer: no edge).
        let fps = vec![
            vec![(100u64, true)],
            vec![(200, false)],
            vec![(100, false)],
            vec![(200, false)],
        ];
        let g = ConflictGraph::from_footprints(2, 2, &fps);
        assert!(g.conflicts(0, 2));
        assert!(!g.conflicts(1, 3), "read-read must not conflict");
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn footprints_duplicate_access_keeps_strongest() {
        // Txn 0 reads then writes object 5; txn 1 reads it: conflict.
        let fps = vec![vec![(5u64, false), (5, true)], vec![(5, false)]];
        let g = ConflictGraph::from_footprints(2, 1, &fps);
        assert!(g.conflicts(0, 1));
    }

    #[test]
    #[should_panic(expected = "one footprint per transaction")]
    fn footprints_length_checked() {
        let _ = ConflictGraph::from_footprints(2, 2, &[vec![]]);
    }

    #[test]
    fn determinism_per_seed() {
        let a = ConflictGraph::per_column_random(6, 6, 0.4, 11);
        let b = ConflictGraph::per_column_random(6, 6, 0.4, 11);
        for t in 0..a.len() as TxnId {
            assert_eq!(a.neighbors(t), b.neighbors(t));
        }
    }

    #[test]
    fn contention_per_thread_bounded_by_global() {
        let g = ConflictGraph::clustered(5, 5, 0.7, 0.2, 13);
        let global = g.contention();
        for i in 0..5 {
            assert!(g.contention_of_thread(i) <= global);
        }
    }
}
