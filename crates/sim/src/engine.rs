//! The step-accurate execution engine.
//!
//! Time advances in unit steps; every transaction needs `τ` *scheduled*
//! steps to commit. Per step the engine:
//!
//! 1. determines the **issued** transactions — each thread's next
//!    uncommitted transaction, issued as soon as its predecessor commits
//!    (§II-A's sequential-per-thread rule);
//! 2. asks the scheduler to **select** which issued transactions execute
//!    this step (window schedulers select everything; one-shot holds back
//!    future columns; Offline runs one independent set per slot);
//! 3. resolves every conflicting selected pair through the scheduler —
//!    each pair names a **loser**, and any transaction that lost at least
//!    one duel aborts (its progress resets to `τ`, matching an eager STM
//!    where a doomed transaction restarts from scratch);
//! 4. survivors advance one step and commit when their `τ` steps are done.
//!
//! The engine is deterministic given the scheduler's seed, which makes
//! makespan comparisons across schedulers exact rather than statistical.

use crate::graph::{ConflictGraph, TxnId};
use crate::sched::SimScheduler;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Threads (window height `M`).
    pub m: usize,
    /// Transactions per thread (window width `N`).
    pub n: usize,
    /// Transaction duration `τ` in steps.
    pub tau: u32,
    /// The constant in `Φ = phi_factor · ln(MN)` slots per frame.
    pub phi_factor: f64,
    /// Safety valve: abort the simulation after this many steps.
    pub max_steps: u64,
}

impl SimConfig {
    /// Defaults: `phi_factor = 1.0`, a generous step budget.
    pub fn new(m: usize, n: usize, tau: u32) -> Self {
        assert!(m >= 1 && n >= 1 && tau >= 1);
        SimConfig {
            m,
            n,
            tau,
            phi_factor: 1.0,
            max_steps: (tau as u64)
                .saturating_mul((m as u64 + 16) * (n as u64 + 16))
                .saturating_mul(64)
                .max(1_000_000),
        }
    }

    /// `ln(MN)` clamped below by 1.
    pub fn ln_mn(&self) -> f64 {
        ((self.m * self.n) as f64).ln().max(1.0)
    }

    /// Slots per frame: `max(1, ⌈phi_factor · ln(MN)⌉)`.
    pub fn phi_slots(&self) -> u64 {
        (self.phi_factor * self.ln_mn()).ceil().max(1.0) as u64
    }

    /// Steps per frame (`phi_slots · τ`).
    pub fn phi_steps(&self) -> u64 {
        self.phi_slots() * self.tau as u64
    }
}

/// What a simulation produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOutcome {
    /// Steps until the last commit (= the paper's makespan).
    pub makespan: u64,
    /// Committed transactions (always `M·N` when `all_committed`).
    pub commits: u64,
    /// Total aborts across the run.
    pub aborts: u64,
    /// Whether every transaction committed within the step budget.
    pub all_committed: bool,
    /// Sum over transactions of (commit step − issue step).
    pub sum_response: u64,
}

impl SimOutcome {
    /// Aborts per commit (Fig. 4's metric, in the simulator).
    pub fn aborts_per_commit(&self) -> f64 {
        if self.commits == 0 {
            self.aborts as f64
        } else {
            self.aborts as f64 / self.commits as f64
        }
    }

    /// Mean response time in steps.
    pub fn avg_response(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.sum_response as f64 / self.commits as f64
        }
    }
}

/// Run `sched` over `graph`. See module docs for the step semantics.
pub fn simulate(
    graph: &ConflictGraph,
    cfg: &SimConfig,
    sched: &mut dyn SimScheduler,
) -> SimOutcome {
    assert_eq!(graph.m(), cfg.m, "graph/config thread mismatch");
    assert_eq!(graph.n(), cfg.n, "graph/config width mismatch");
    let total = cfg.m * cfg.n;
    let mut remaining: Vec<u32> = vec![cfg.tau; total];
    let mut committed: Vec<bool> = vec![false; total];
    let mut ever_issued: Vec<bool> = vec![false; total];
    let mut issue_step: Vec<u64> = vec![0; total];
    let mut next_j: Vec<usize> = vec![0; cfg.m];

    let mut commits = 0u64;
    let mut aborts = 0u64;
    let mut sum_response = 0u64;
    let mut makespan = 0u64;

    let mut selected_mask = vec![false; total];
    let mut step = 0u64;

    while commits < total as u64 && step < cfg.max_steps {
        // 1. Issued transactions (one per thread at most).
        let mut issued: Vec<TxnId> = Vec::with_capacity(cfg.m);
        for (i, &j) in next_j.iter().enumerate() {
            if j < cfg.n {
                let t = graph.id(i, j);
                if !ever_issued[t as usize] {
                    ever_issued[t as usize] = true;
                    issue_step[t as usize] = step;
                    remaining[t as usize] = cfg.tau;
                }
                issued.push(t);
            }
        }

        // 2. Scheduler picks who runs this step.
        let selected = sched.select(step, &issued, graph);
        for &t in &selected {
            debug_assert!(
                issued.contains(&t),
                "scheduler selected a non-issued transaction"
            );
            selected_mask[t as usize] = true;
        }

        // 3. Duels between conflicting selected pairs.
        let mut losers: Vec<TxnId> = Vec::new();
        for &a in &selected {
            for &b in graph.neighbors(a) {
                if b > a && selected_mask[b as usize] {
                    losers.push(sched.loser(step, a, b));
                }
            }
        }
        let mut loser_mask = vec![false; 0];
        if !losers.is_empty() {
            loser_mask = vec![false; total];
            for &l in &losers {
                loser_mask[l as usize] = true;
            }
        }

        // 4. Progress survivors, restart losers.
        for &t in &selected {
            selected_mask[t as usize] = false;
            let ti = t as usize;
            if !loser_mask.is_empty() && loser_mask[ti] {
                aborts += 1;
                remaining[ti] = cfg.tau;
                sched.on_abort(t);
                continue;
            }
            remaining[ti] -= 1;
            if remaining[ti] == 0 {
                committed[ti] = true;
                commits += 1;
                let (i, _) = graph.coords(t);
                next_j[i] += 1;
                makespan = step + 1;
                sum_response += (step + 1) - issue_step[ti];
                sched.on_commit(t, step + 1);
            }
        }
        step += 1;
    }

    SimOutcome {
        makespan,
        commits,
        aborts,
        all_committed: commits == total as u64,
        sum_response,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::FreeRandomizedScheduler;

    #[test]
    fn empty_graph_runs_fully_parallel() {
        let g = ConflictGraph::empty(4, 3);
        let cfg = SimConfig::new(4, 3, 5);
        let mut s = FreeRandomizedScheduler::new(&cfg, 1);
        let out = simulate(&g, &cfg, &mut s);
        assert!(out.all_committed);
        assert_eq!(out.commits, 12);
        assert_eq!(out.aborts, 0);
        // No conflicts: N transactions back to back, τ steps each.
        assert_eq!(out.makespan, 3 * 5);
    }

    #[test]
    fn single_thread_is_sequential() {
        let g = ConflictGraph::empty(1, 10);
        let cfg = SimConfig::new(1, 10, 3);
        let mut s = FreeRandomizedScheduler::new(&cfg, 2);
        let out = simulate(&g, &cfg, &mut s);
        assert_eq!(out.makespan, 30);
        assert_eq!(out.avg_response(), 3.0);
    }

    #[test]
    fn clique_column_serializes() {
        let g = ConflictGraph::complete_columns(4, 1);
        let cfg = SimConfig::new(4, 1, 2);
        let mut s = FreeRandomizedScheduler::new(&cfg, 3);
        let out = simulate(&g, &cfg, &mut s);
        assert!(out.all_committed);
        // Four mutually conflicting txns of duration 2 cannot finish in
        // fewer than 8 steps.
        assert!(out.makespan >= 8, "makespan {} too small", out.makespan);
        assert!(out.aborts > 0);
    }

    #[test]
    fn phi_arithmetic() {
        let cfg = SimConfig::new(8, 50, 4);
        assert!(cfg.ln_mn() > 5.9 && cfg.ln_mn() < 6.0);
        assert_eq!(cfg.phi_slots(), 6);
        assert_eq!(cfg.phi_steps(), 24);
    }

    #[test]
    fn outcome_derived_metrics() {
        let o = SimOutcome {
            makespan: 100,
            commits: 10,
            aborts: 5,
            all_committed: true,
            sum_response: 200,
        };
        assert!((o.aborts_per_commit() - 0.5).abs() < 1e-12);
        assert!((o.avg_response() - 20.0).abs() < 1e-12);
    }
}
