//! The execution engine, rebuilt on the deterministic event core.
//!
//! The original simulator was a discrete-*time* stepper: one `while` loop,
//! one implicit node, verdicts applied in the same step they were decided.
//! The engine is now driven by the [`event`](crate::event) core — a
//! virtual-clock priority queue — with the step loop living inside the
//! `Tick` event handler and everything *between* steps (verdict
//! deliveries, commit acks, node crashes/recoveries) scheduled as
//! delivery-class events that fire before the tick of the same instant.
//!
//! Per tick the engine:
//!
//! 1. determines the **issued** transactions — each up node's thread
//!    issues its next uncommitted transaction (§II-A's sequential-per-
//!    thread rule); replicated scenarios additionally gate issue on the
//!    previous column's sibling acks;
//! 2. asks the scheduler to **select** which issued transactions execute
//!    this step;
//! 3. resolves every conflicting selected pair through the scheduler —
//!    detection is local to the lower-id party's node and stamped with
//!    that node's skewed clock; the verdict then travels to the loser's
//!    node through the [`NetworkModel`]. At zero latency the loser aborts
//!    this same step (the paper's semantics); at nonzero latency it keeps
//!    executing — and dueling — until the verdict arrives, and a verdict
//!    the network *drops* never arrives at all, so the loser can commit
//!    as a **zombie** ([`SimOutcome::zombie_commits`]);
//! 4. survivors advance one step and commit when their `τ` steps are done
//!    and no verdict is pending against them.
//!
//! With the default single-node topology and [`ZeroLatency`] the event
//! core replays the old loop *exactly* — same phase order, same RNG
//! consumption, same `loser`/`on_abort`/`on_commit` call order — which
//! `tests/sim_determinism.rs` pins with golden outcome vectors captured
//! from the pre-refactor simulator.

use crate::error::SimError;
use crate::event::{
    AbortCause, EventKind, EventLog, EventQueue, Record, CLASS_DELIVERY, CLASS_TICK,
};
use crate::graph::{ConflictGraph, TxnId};
use crate::net::{CrashEvent, NetworkModel, Topology, ZeroLatency};
use crate::sched::SimScheduler;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Threads (window height `M`).
    pub m: usize,
    /// Transactions per thread (window width `N`).
    pub n: usize,
    /// Transaction duration `τ` in steps.
    pub tau: u32,
    /// The constant in `Φ = phi_factor · ln(MN)` slots per frame.
    pub phi_factor: f64,
    /// Safety valve: abort the simulation after this many steps.
    pub max_steps: u64,
}

impl SimConfig {
    /// Defaults: `phi_factor = 1.0`, a generous step budget. Returns a
    /// typed [`SimError::BadConfig`] on zero dimensions.
    pub fn try_new(m: usize, n: usize, tau: u32) -> Result<Self, SimError> {
        for (what, v) in [("m (threads)", m), ("n (transactions per thread)", n)] {
            if v == 0 {
                return Err(SimError::BadConfig {
                    reason: format!("{what} must be >= 1, got 0"),
                });
            }
        }
        if tau == 0 {
            return Err(SimError::BadConfig {
                reason: "tau (steps per transaction) must be >= 1, got 0".into(),
            });
        }
        Ok(SimConfig {
            m,
            n,
            tau,
            phi_factor: 1.0,
            max_steps: (tau as u64)
                .saturating_mul((m as u64 + 16) * (n as u64 + 16))
                .saturating_mul(64)
                .max(1_000_000),
        })
    }

    /// [`try_new`](Self::try_new) that panics with the error's message
    /// (kept for the tests and callers that validate dimensions upfront).
    pub fn new(m: usize, n: usize, tau: u32) -> Self {
        Self::try_new(m, n, tau).unwrap_or_else(|e| panic!("{e}"))
    }

    /// `ln(MN)` clamped below by 1.
    pub fn ln_mn(&self) -> f64 {
        ((self.m * self.n) as f64).ln().max(1.0)
    }

    /// Slots per frame: `max(1, ⌈phi_factor · ln(MN)⌉)`.
    pub fn phi_slots(&self) -> u64 {
        (self.phi_factor * self.ln_mn()).ceil().max(1.0) as u64
    }

    /// Steps per frame (`phi_slots · τ`).
    pub fn phi_steps(&self) -> u64 {
        self.phi_slots() * self.tau as u64
    }
}

/// What a simulation produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOutcome {
    /// Steps until the last commit (= the paper's makespan).
    pub makespan: u64,
    /// Committed transactions (always `M·N` when `all_committed`).
    pub commits: u64,
    /// Total aborts across the run.
    pub aborts: u64,
    /// Whether every transaction committed within the step budget.
    pub all_committed: bool,
    /// Sum over transactions of (commit step − issue step).
    pub sum_response: u64,
    /// Commits by transactions that had *lost* a duel whose verdict the
    /// network dropped: safety violations only a lossy [`NetworkModel`]
    /// can produce. Always 0 at zero/fixed latency.
    pub zombie_commits: u64,
}

impl SimOutcome {
    /// Aborts per commit (Fig. 4's metric, in the simulator).
    pub fn aborts_per_commit(&self) -> f64 {
        if self.commits == 0 {
            self.aborts as f64
        } else {
            self.aborts as f64 / self.commits as f64
        }
    }

    /// Mean response time in steps.
    pub fn avg_response(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.sum_response as f64 / self.commits as f64
        }
    }
}

/// Full description of one event-core run: the window, where its threads
/// live, which faults are scheduled, and how replicated it is.
#[derive(Debug, Clone, Copy)]
pub struct SimSetup<'a> {
    pub graph: &'a ConflictGraph,
    pub cfg: &'a SimConfig,
    pub topo: &'a Topology,
    /// Scheduled node failures (delivered before the tick of step `at`).
    pub crash_plan: &'a [CrashEvent],
    /// K-way replication: the `cfg.m` threads are K contiguous blocks of
    /// `m/K`, block `r` holding replica `r` of each base thread. A
    /// replica issues column `j+1` only after its own column-`j` commit
    /// *and* commit acks from all K−1 siblings. 1 = no replication.
    pub replicas: usize,
    /// Seed for the event queue's tie-breaking among simultaneous
    /// same-class deliveries.
    pub queue_seed: u64,
}

impl<'a> SimSetup<'a> {
    /// Single-node, fault-free, unreplicated — the paper's world.
    pub fn plain(graph: &'a ConflictGraph, cfg: &'a SimConfig, topo: &'a Topology) -> Self {
        SimSetup {
            graph,
            cfg,
            topo,
            crash_plan: &[],
            replicas: 1,
            queue_seed: 0,
        }
    }
}

/// Run `sched` over `graph` in the paper's configuration: one node, zero
/// latency, no faults, no logging. Bit-identical to the pre-event-core
/// simulator (see the golden vectors in `tests/sim_determinism.rs`).
pub fn simulate(
    graph: &ConflictGraph,
    cfg: &SimConfig,
    sched: &mut dyn SimScheduler,
) -> SimOutcome {
    let topo = Topology::single_node(cfg.m);
    let mut net = ZeroLatency;
    let mut log = EventLog::disabled();
    run_events(
        &SimSetup::plain(graph, cfg, &topo),
        sched,
        &mut net,
        &mut log,
    )
}

/// Per-transaction mutable state of [`run_events`].
struct TxnState {
    remaining: Vec<u32>,
    committed: Vec<bool>,
    ever_issued: Vec<bool>,
    issue_step: Vec<u64>,
    /// Restart counter; in-flight verdicts carry the attempt they doom,
    /// so verdicts against an already-restarted attempt are stale.
    attempt: Vec<u32>,
    /// Verdicts in flight against the current attempt.
    pending: Vec<u32>,
    /// The current attempt lost a duel whose verdict the network dropped.
    doomed_drop: Vec<bool>,
    /// Sibling commit acks received (replicated runs only).
    acks: Vec<u32>,
}

/// Run a full [`SimSetup`] through the event core. See the module docs
/// for the step semantics and the latency/crash extensions.
pub fn run_events(
    setup: &SimSetup,
    sched: &mut dyn SimScheduler,
    net: &mut dyn NetworkModel,
    log: &mut EventLog,
) -> SimOutcome {
    let (graph, cfg, topo) = (setup.graph, setup.cfg, setup.topo);
    assert_eq!(graph.m(), cfg.m, "graph/config thread mismatch");
    assert_eq!(graph.n(), cfg.n, "graph/config width mismatch");
    assert_eq!(topo.threads(), cfg.m, "topology/config thread mismatch");
    assert!(
        setup.replicas >= 1 && cfg.m % setup.replicas == 0,
        "replicas must divide m"
    );
    let total = cfg.m * cfg.n;
    let base_m = cfg.m / setup.replicas;

    let mut st = TxnState {
        remaining: vec![cfg.tau; total],
        committed: vec![false; total],
        ever_issued: vec![false; total],
        issue_step: vec![0; total],
        attempt: vec![0; total],
        pending: vec![0; total],
        doomed_drop: vec![false; total],
        acks: vec![0; total],
    };
    let mut next_j: Vec<usize> = vec![0; cfg.m];
    let mut node_up: Vec<bool> = vec![true; topo.nodes()];

    let mut commits = 0u64;
    let mut aborts = 0u64;
    let mut sum_response = 0u64;
    let mut makespan = 0u64;
    let mut zombie_commits = 0u64;

    let mut selected_mask = vec![false; total];
    // Per-step scratch: lost any duel this step / must abort this step.
    let mut lost_now = vec![false; total];
    let mut abort_now = vec![false; total];

    let mut queue = EventQueue::new(setup.queue_seed);
    for c in setup.crash_plan {
        assert!(c.node < topo.nodes(), "crash plan names a missing node");
        queue.push(
            c.at,
            CLASS_DELIVERY,
            EventKind::Crash {
                node: c.node as u32,
            },
        );
        queue.push(
            c.at + c.down,
            CLASS_DELIVERY,
            EventKind::Recover {
                node: c.node as u32,
            },
        );
    }
    queue.push(0, CLASS_TICK, EventKind::Tick);

    // One abort, whatever delivered it.
    let abort_txn = |st: &mut TxnState,
                     sched: &mut dyn SimScheduler,
                     log: &mut EventLog,
                     aborts: &mut u64,
                     t: TxnId,
                     step: u64,
                     cause: AbortCause| {
        let ti = t as usize;
        *aborts += 1;
        st.remaining[ti] = cfg.tau;
        st.attempt[ti] += 1;
        st.pending[ti] = 0;
        st.doomed_drop[ti] = false;
        sched.on_abort(t);
        log.push(Record::Abort {
            step,
            txn: t,
            cause,
        });
    };

    let mut issued: Vec<TxnId> = Vec::with_capacity(cfg.m);
    while let Some(ev) = queue.pop() {
        let step = ev.time;
        match ev.kind {
            EventKind::Verdict { txn, attempt } => {
                let ti = txn as usize;
                if !st.committed[ti] && attempt == st.attempt[ti] {
                    abort_txn(
                        &mut st,
                        sched,
                        log,
                        &mut aborts,
                        txn,
                        step,
                        AbortCause::RemoteVerdict,
                    );
                }
            }
            EventKind::Ack { txn } => {
                st.acks[txn as usize] += 1;
            }
            EventKind::Crash { node } => {
                node_up[node as usize] = false;
                log.push(Record::Crash { step, node });
                for (i, &j) in next_j.iter().enumerate() {
                    if topo.node_of(i) == node as usize && j < cfg.n {
                        let t = graph.id(i, j);
                        if st.ever_issued[t as usize] && !st.committed[t as usize] {
                            abort_txn(
                                &mut st,
                                sched,
                                log,
                                &mut aborts,
                                t,
                                step,
                                AbortCause::NodeCrash,
                            );
                        }
                    }
                }
            }
            EventKind::Recover { node } => {
                node_up[node as usize] = true;
                log.push(Record::Recover { step, node });
            }
            EventKind::Tick => {
                if commits >= total as u64 || step >= cfg.max_steps {
                    break;
                }

                // 1. Issued transactions (one per up-node thread at most).
                issued.clear();
                for (i, &j) in next_j.iter().enumerate() {
                    if j >= cfg.n || !node_up[topo.node_of(i)] {
                        continue;
                    }
                    let t = graph.id(i, j);
                    let ti = t as usize;
                    if !st.ever_issued[ti] {
                        if setup.replicas > 1 && j > 0 {
                            // Gate on the previous column's sibling acks.
                            let prev = graph.id(i, j - 1) as usize;
                            if st.acks[prev] + 1 < setup.replicas as u32 {
                                continue;
                            }
                        }
                        st.ever_issued[ti] = true;
                        st.issue_step[ti] = step;
                        st.remaining[ti] = cfg.tau;
                        log.push(Record::Issue { step, txn: t });
                    }
                    issued.push(t);
                }

                // 2. Scheduler picks who runs this step.
                let selected = sched.select(step, &issued, graph);
                for &t in &selected {
                    debug_assert!(
                        issued.contains(&t),
                        "scheduler selected a non-issued transaction"
                    );
                    selected_mask[t as usize] = true;
                }

                // 3. Duels between conflicting selected pairs. Detection
                // is local to the lower-id party's node and stamped with
                // its skewed clock; the verdict rides the network to the
                // loser's node.
                for &a in &selected {
                    for &b in graph.neighbors(a) {
                        if b > a && selected_mask[b as usize] {
                            let det = topo.node_of(graph.coords(a).0);
                            let local = step.wrapping_add(topo.skew(det));
                            let loser = sched.loser(local, a, b);
                            let li = loser as usize;
                            log.push(Record::Duel {
                                step,
                                winner: if loser == a { b } else { a },
                                loser,
                            });
                            lost_now[li] = true;
                            let dst = topo.node_of(graph.coords(loser).0);
                            if det == dst {
                                abort_now[li] = true;
                            } else {
                                match net.delay(det, dst, step) {
                                    Some(0) => abort_now[li] = true,
                                    Some(d) => {
                                        st.pending[li] += 1;
                                        queue.push(
                                            step + d,
                                            CLASS_DELIVERY,
                                            EventKind::Verdict {
                                                txn: loser,
                                                attempt: st.attempt[li],
                                            },
                                        );
                                        log.push(Record::VerdictSent {
                                            step,
                                            loser,
                                            attempt: st.attempt[li],
                                            arrives: step + d,
                                        });
                                    }
                                    None => {
                                        st.doomed_drop[li] = true;
                                        log.push(Record::VerdictDropped {
                                            step,
                                            loser,
                                            attempt: st.attempt[li],
                                        });
                                    }
                                }
                            }
                        }
                    }
                }

                // 4. Progress survivors, restart same-step losers.
                for &t in &selected {
                    let ti = t as usize;
                    selected_mask[ti] = false;
                    let was_lost = lost_now[ti];
                    lost_now[ti] = false;
                    if abort_now[ti] {
                        abort_now[ti] = false;
                        abort_txn(&mut st, sched, log, &mut aborts, t, step, AbortCause::Duel);
                        continue;
                    }
                    if st.remaining[ti] > 0 {
                        st.remaining[ti] -= 1;
                    }
                    if st.remaining[ti] == 0 && !was_lost && st.pending[ti] == 0 {
                        st.committed[ti] = true;
                        commits += 1;
                        if st.doomed_drop[ti] {
                            zombie_commits += 1;
                        }
                        let (i, j) = graph.coords(t);
                        next_j[i] += 1;
                        makespan = step + 1;
                        sum_response += (step + 1) - st.issue_step[ti];
                        sched.on_commit(t, step + 1);
                        log.push(Record::Commit { step, txn: t });
                        if setup.replicas > 1 {
                            send_acks(setup, net, log, &mut queue, &mut st, i, j, t, step, base_m);
                        }
                    }
                }
                queue.push(step + 1, CLASS_TICK, EventKind::Tick);
            }
        }
    }

    let out = SimOutcome {
        makespan,
        commits,
        aborts,
        all_committed: commits == total as u64,
        sum_response,
        zombie_commits,
    };
    log.push(Record::Outcome {
        makespan: out.makespan,
        commits: out.commits,
        aborts: out.aborts,
        zombie_commits: out.zombie_commits,
        sum_response: out.sum_response,
        all_committed: out.all_committed,
    });
    out
}

/// Broadcast a replica's commit ack to its K−1 siblings. Acks *are*
/// retransmitted on drop (a one-step resend gap per attempt, bounded), so
/// replication cannot deadlock under a lossy network.
#[allow(clippy::too_many_arguments)]
fn send_acks(
    setup: &SimSetup,
    net: &mut dyn NetworkModel,
    log: &mut EventLog,
    queue: &mut EventQueue,
    st: &mut TxnState,
    i: usize,
    j: usize,
    t: TxnId,
    step: u64,
    base_m: usize,
) {
    let r = i / base_m;
    let i_base = i % base_m;
    let src = setup.topo.node_of(i);
    for r2 in 0..setup.replicas {
        if r2 == r {
            continue;
        }
        let sib_thread = r2 * base_m + i_base;
        let sib = setup.graph.id(sib_thread, j);
        let dst = setup.topo.node_of(sib_thread);
        let d = if src == dst {
            0
        } else {
            let mut extra = 0u64;
            let mut delivered = None;
            for _ in 0..100 {
                if let Some(x) = net.delay(src, dst, step) {
                    delivered = Some(x + extra);
                    break;
                }
                extra += 1; // one-step retransmission gap
            }
            delivered.unwrap_or(100 + extra)
        };
        if d == 0 {
            st.acks[sib as usize] += 1;
        } else {
            queue.push(step + d, CLASS_DELIVERY, EventKind::Ack { txn: sib });
        }
        log.push(Record::AckSent {
            step,
            from: t,
            to: sib,
            arrives: step + d,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{FixedLatency, SeededJitter};
    use crate::sched::{FreeRandomizedScheduler, GreedyTimestampScheduler};

    #[test]
    fn empty_graph_runs_fully_parallel() {
        let g = ConflictGraph::empty(4, 3);
        let cfg = SimConfig::new(4, 3, 5);
        let mut s = FreeRandomizedScheduler::new(&cfg, 1);
        let out = simulate(&g, &cfg, &mut s);
        assert!(out.all_committed);
        assert_eq!(out.commits, 12);
        assert_eq!(out.aborts, 0);
        // No conflicts: N transactions back to back, τ steps each.
        assert_eq!(out.makespan, 3 * 5);
    }

    #[test]
    fn single_thread_is_sequential() {
        let g = ConflictGraph::empty(1, 10);
        let cfg = SimConfig::new(1, 10, 3);
        let mut s = FreeRandomizedScheduler::new(&cfg, 2);
        let out = simulate(&g, &cfg, &mut s);
        assert_eq!(out.makespan, 30);
        assert_eq!(out.avg_response(), 3.0);
    }

    #[test]
    fn clique_column_serializes() {
        let g = ConflictGraph::complete_columns(4, 1);
        let cfg = SimConfig::new(4, 1, 2);
        let mut s = FreeRandomizedScheduler::new(&cfg, 3);
        let out = simulate(&g, &cfg, &mut s);
        assert!(out.all_committed);
        // Four mutually conflicting txns of duration 2 cannot finish in
        // fewer than 8 steps.
        assert!(out.makespan >= 8, "makespan {} too small", out.makespan);
        assert!(out.aborts > 0);
    }

    #[test]
    fn phi_arithmetic() {
        let cfg = SimConfig::new(8, 50, 4);
        assert!(cfg.ln_mn() > 5.9 && cfg.ln_mn() < 6.0);
        assert_eq!(cfg.phi_slots(), 6);
        assert_eq!(cfg.phi_steps(), 24);
    }

    #[test]
    fn outcome_derived_metrics() {
        let o = SimOutcome {
            makespan: 100,
            commits: 10,
            aborts: 5,
            all_committed: true,
            sum_response: 200,
            zombie_commits: 0,
        };
        assert!((o.aborts_per_commit() - 0.5).abs() < 1e-12);
        assert!((o.avg_response() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn try_new_rejects_zero_dimensions_with_typed_errors() {
        for (m, n, tau, needle) in [
            (0usize, 5usize, 1u32, "m (threads)"),
            (5, 0, 1, "n (transactions per thread)"),
            (5, 5, 0, "tau"),
        ] {
            let e = SimConfig::try_new(m, n, tau).unwrap_err();
            assert!(matches!(e, SimError::BadConfig { .. }));
            assert!(e.to_string().contains(needle), "{e}");
        }
        assert!(SimConfig::try_new(1, 1, 1).is_ok());
    }

    #[test]
    #[should_panic(expected = "m (threads) must be >= 1")]
    fn new_panics_with_the_typed_message() {
        let _ = SimConfig::new(0, 5, 1);
    }

    #[test]
    fn zero_latency_two_nodes_matches_single_node() {
        // With zero latency the topology is unobservable (skew 0): the
        // cross-node verdict arrives in-step, same as the local path.
        let g = ConflictGraph::complete_columns(4, 3);
        let cfg = SimConfig::new(4, 3, 2);
        let single = simulate(&g, &cfg, &mut GreedyTimestampScheduler::new(&cfg));

        let topo = Topology::round_robin(4, 2, 0);
        let mut net = ZeroLatency;
        let mut log = EventLog::disabled();
        let two = run_events(
            &SimSetup::plain(&g, &cfg, &topo),
            &mut GreedyTimestampScheduler::new(&cfg),
            &mut net,
            &mut log,
        );
        assert_eq!(single, two);
    }

    #[test]
    fn fixed_latency_defers_aborts_and_inflates_work() {
        let g = ConflictGraph::complete_columns(6, 4);
        let cfg = SimConfig::new(6, 4, 2);
        let zero = simulate(&g, &cfg, &mut GreedyTimestampScheduler::new(&cfg));

        let topo = Topology::round_robin(6, 3, 0);
        let mut net = FixedLatency(4);
        let mut log = EventLog::disabled();
        let slow = run_events(
            &SimSetup::plain(&g, &cfg, &topo),
            &mut GreedyTimestampScheduler::new(&cfg),
            &mut net,
            &mut log,
        );
        assert!(slow.all_committed);
        assert_eq!(slow.zombie_commits, 0, "no drops, no zombies");
        assert!(
            slow.makespan >= zero.makespan,
            "stale losers must not speed up the schedule ({} < {})",
            slow.makespan,
            zero.makespan
        );
    }

    #[test]
    fn dropped_verdicts_produce_zombie_commits() {
        // drop=1000: every cross-node verdict is lost, so losers of
        // cross-node duels eventually commit doomed.
        let g = ConflictGraph::complete_columns(4, 3);
        let cfg = SimConfig::new(4, 3, 2);
        let topo = Topology::round_robin(4, 2, 0);
        let mut net = SeededJitter::new(1, 0, 1000, 9);
        let mut log = EventLog::disabled();
        let out = run_events(
            &SimSetup::plain(&g, &cfg, &topo),
            &mut GreedyTimestampScheduler::new(&cfg),
            &mut net,
            &mut log,
        );
        assert!(out.all_committed);
        assert!(out.zombie_commits > 0, "{out:?}");
    }

    #[test]
    fn crash_aborts_in_flight_and_recovery_completes_the_window() {
        let g = ConflictGraph::complete_columns(4, 4);
        let cfg = SimConfig::new(4, 4, 2);
        let topo = Topology::round_robin(4, 2, 0);
        let plan = [CrashEvent {
            node: 1,
            at: 3,
            down: 10,
        }];
        let mut net = ZeroLatency;
        let mut log = EventLog::recording();
        let setup = SimSetup {
            crash_plan: &plan,
            ..SimSetup::plain(&g, &cfg, &topo)
        };
        let out = run_events(
            &setup,
            &mut GreedyTimestampScheduler::new(&cfg),
            &mut net,
            &mut log,
        );
        assert!(out.all_committed, "{out:?}");
        let healthy = simulate(&g, &cfg, &mut GreedyTimestampScheduler::new(&cfg));
        assert!(
            out.makespan > healthy.makespan,
            "losing a node for 10 steps must cost wall-clock ({} <= {})",
            out.makespan,
            healthy.makespan
        );
        assert!(log.records() > 0);
    }
}
