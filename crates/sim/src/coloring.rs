//! Greedy vertex coloring.
//!
//! The Offline window algorithm commits "all transactions of the same
//! color simultaneously" (§II-A): inside a frame it colors the subgraph of
//! high-priority pending transactions and schedules one color class per
//! time slot. Greedy coloring in largest-degree-first order uses at most
//! `Δ + 1` colors, which is all the theory needs.

use crate::graph::{ConflictGraph, TxnId};

/// Color the induced subgraph on `nodes` greedily (largest degree first).
/// Returns the color classes, each an independent set; classes are
/// ordered largest-first so slot schedules drain the bulk early.
pub fn greedy_coloring(graph: &ConflictGraph, nodes: &[TxnId]) -> Vec<Vec<TxnId>> {
    if nodes.is_empty() {
        return Vec::new();
    }
    let mut order: Vec<TxnId> = nodes.to_vec();
    order.sort_unstable_by_key(|&t| std::cmp::Reverse(graph.degree(t)));

    // color[t] for t in nodes; use a map keyed by txn id.
    let mut color: std::collections::HashMap<TxnId, usize> = std::collections::HashMap::new();
    let mut classes: Vec<Vec<TxnId>> = Vec::new();
    for &t in &order {
        let mut used = vec![false; classes.len()];
        for &nb in graph.neighbors(t) {
            if let Some(&c) = color.get(&nb) {
                used[c] = true;
            }
        }
        let c = used.iter().position(|&u| !u).unwrap_or(classes.len());
        if c == classes.len() {
            classes.push(Vec::new());
        }
        classes[c].push(t);
        color.insert(t, c);
    }
    classes.sort_by_key(|c| std::cmp::Reverse(c.len()));
    classes
}

/// Check that every class is an independent set and the classes
/// partition `nodes`. Used by tests and debug assertions.
pub fn is_valid_coloring(graph: &ConflictGraph, nodes: &[TxnId], classes: &[Vec<TxnId>]) -> bool {
    let mut seen = std::collections::HashSet::new();
    for class in classes {
        for (x, &a) in class.iter().enumerate() {
            if !seen.insert(a) {
                return false;
            }
            for &b in &class[x + 1..] {
                if graph.conflicts(a, b) {
                    return false;
                }
            }
        }
    }
    nodes.len() == seen.len() && nodes.iter().all(|t| seen.contains(t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_no_classes() {
        let g = ConflictGraph::empty(2, 2);
        assert!(greedy_coloring(&g, &[]).is_empty());
    }

    #[test]
    fn independent_nodes_one_class() {
        let g = ConflictGraph::empty(3, 1);
        let nodes = [0, 1, 2];
        let classes = greedy_coloring(&g, &nodes);
        assert_eq!(classes.len(), 1);
        assert!(is_valid_coloring(&g, &nodes, &classes));
    }

    #[test]
    fn clique_needs_one_class_per_node() {
        let g = ConflictGraph::complete_columns(5, 1);
        let nodes: Vec<_> = (0..5).collect();
        let classes = greedy_coloring(&g, &nodes);
        assert_eq!(classes.len(), 5);
        assert!(is_valid_coloring(&g, &nodes, &classes));
    }

    #[test]
    fn colors_bounded_by_max_degree_plus_one() {
        for seed in 0..10 {
            let g = ConflictGraph::per_column_random(8, 4, 0.5, seed);
            let nodes: Vec<_> = (0..g.len() as u32).collect();
            let classes = greedy_coloring(&g, &nodes);
            assert!(classes.len() <= g.contention() + 1);
            assert!(is_valid_coloring(&g, &nodes, &classes));
        }
    }

    #[test]
    fn subset_coloring_only_covers_subset() {
        let g = ConflictGraph::complete_columns(4, 2);
        let subset = [g.id(0, 0), g.id(1, 0), g.id(2, 1)];
        let classes = greedy_coloring(&g, &subset);
        assert!(is_valid_coloring(&g, &subset, &classes));
        let total: usize = classes.iter().map(Vec::len).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn validity_checker_catches_conflict_in_class() {
        let g = ConflictGraph::complete_columns(2, 1);
        // Both nodes in one class conflict: invalid.
        assert!(!is_valid_coloring(&g, &[0, 1], &[vec![0, 1]]));
        // Duplicated node: invalid.
        assert!(!is_valid_coloring(&g, &[0], &[vec![0], vec![0]]));
    }
}
