//! The deterministic event core.
//!
//! A discrete-*event* simulation needs exactly three properties to stay
//! reproducible in CI (the dslab recipe):
//!
//! 1. a **virtual clock** — time is a `u64` step counter advanced only by
//!    the events themselves, never by wall time;
//! 2. a **total order on events** — the queue pops by
//!    `(time, class, tiebreak)`, where `class` puts message deliveries
//!    before the step tick at the same instant and `tiebreak` is a seeded
//!    [splitmix64] permutation of the insertion index: ties between
//!    same-class events at the same instant resolve by a seeded draw that
//!    is fixed at push time, independent of heap internals;
//! 3. an **append-only event log** — every decision the engine takes is
//!    encoded into a flat byte stream, so two runs are identical iff their
//!    logs are identical, and a recorded run can be replayed and compared
//!    byte for byte.
//!
//! The log costs nothing when disabled (one branch per push); `simulate()`
//! runs with it off.
//!
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c

use std::collections::BinaryHeap;

use crate::graph::TxnId;

/// Delivery class: network messages and fault events, processed *before*
/// the engine tick of the same virtual instant.
pub const CLASS_DELIVERY: u8 = 0;
/// The engine's per-step tick.
pub const CLASS_TICK: u8 = 1;

/// What an event does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Run one engine step (issue / select / duel / progress).
    Tick,
    /// A contention-manager verdict reaches the losing transaction's
    /// node. Stale if the transaction has restarted since (`attempt`
    /// mismatch) or already committed.
    Verdict { txn: TxnId, attempt: u32 },
    /// A replica's commit acknowledgement reaches a sibling transaction.
    Ack { txn: TxnId },
    /// A node fails; its in-flight transactions abort.
    Crash { node: u32 },
    /// A crashed node comes back and resumes issuing.
    Recover { node: u32 },
}

/// One scheduled event. Ordering is `(time, class, tiebreak, seq)`,
/// inverted so [`BinaryHeap`] pops the smallest.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub time: u64,
    pub class: u8,
    pub kind: EventKind,
    tiebreak: u64,
    seq: u64,
}

impl Event {
    fn key(&self) -> (u64, u8, u64, u64) {
        (self.time, self.class, self.tiebreak, self.seq)
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Inverted: the max-heap then pops the earliest event.
        other.key().cmp(&self.key())
    }
}

/// splitmix64: a bijection on `u64`, so distinct insertion indices map to
/// distinct tiebreak values and the event order is total.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic priority queue over [`Event`]s.
#[derive(Debug)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    seed: u64,
    next_seq: u64,
}

impl EventQueue {
    /// `seed` perturbs only the tie-break order of simultaneous
    /// same-class events, never their times.
    pub fn new(seed: u64) -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seed,
            next_seq: 0,
        }
    }

    pub fn push(&mut self, time: u64, class: u8, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            time,
            class,
            kind,
            tiebreak: splitmix64(seq ^ self.seed),
            seq,
        });
    }

    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Why a transaction aborted (encoded in the log).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortCause {
    /// Lost a duel with a same-node (or zero-latency) verdict.
    Duel,
    /// A remote verdict arrived after network delay.
    RemoteVerdict,
    /// Its node crashed mid-transaction.
    NodeCrash,
}

impl AbortCause {
    fn tag(self) -> u8 {
        match self {
            AbortCause::Duel => 0,
            AbortCause::RemoteVerdict => 1,
            AbortCause::NodeCrash => 2,
        }
    }
}

/// One logged engine decision. The encoding is a tag byte followed by the
/// fields in declaration order, integers little-endian.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Record {
    Issue {
        step: u64,
        txn: TxnId,
    },
    Duel {
        step: u64,
        winner: TxnId,
        loser: TxnId,
    },
    VerdictSent {
        step: u64,
        loser: TxnId,
        attempt: u32,
        arrives: u64,
    },
    VerdictDropped {
        step: u64,
        loser: TxnId,
        attempt: u32,
    },
    Abort {
        step: u64,
        txn: TxnId,
        cause: AbortCause,
    },
    Commit {
        step: u64,
        txn: TxnId,
    },
    AckSent {
        step: u64,
        from: TxnId,
        to: TxnId,
        arrives: u64,
    },
    Crash {
        step: u64,
        node: u32,
    },
    Recover {
        step: u64,
        node: u32,
    },
    /// Trailer: the final outcome, so a log fixes the result it claims.
    Outcome {
        makespan: u64,
        commits: u64,
        aborts: u64,
        zombie_commits: u64,
        sum_response: u64,
        all_committed: bool,
    },
}

/// Append-only byte log of [`Record`]s. Disabled logs are free: `push`
/// is a single branch and no bytes are kept.
#[derive(Debug, Clone)]
pub struct EventLog {
    enabled: bool,
    bytes: Vec<u8>,
    records: usize,
}

impl EventLog {
    /// A recording log.
    pub fn recording() -> Self {
        EventLog {
            enabled: true,
            bytes: Vec::new(),
            records: 0,
        }
    }

    /// A no-op log (what [`simulate`](crate::engine::simulate) uses).
    pub fn disabled() -> Self {
        EventLog {
            enabled: false,
            bytes: Vec::new(),
            records: 0,
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records appended so far (0 when disabled).
    pub fn records(&self) -> usize {
        self.records
    }

    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Lowercase hex of the whole log (the on-disk replay format).
    pub fn hex(&self) -> String {
        let mut s = String::with_capacity(self.bytes.len() * 2);
        for b in &self.bytes {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    fn u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    pub fn push(&mut self, r: Record) {
        if !self.enabled {
            return;
        }
        self.records += 1;
        match r {
            Record::Issue { step, txn } => {
                self.bytes.push(1);
                self.u64(step);
                self.u32(txn);
            }
            Record::Duel {
                step,
                winner,
                loser,
            } => {
                self.bytes.push(2);
                self.u64(step);
                self.u32(winner);
                self.u32(loser);
            }
            Record::VerdictSent {
                step,
                loser,
                attempt,
                arrives,
            } => {
                self.bytes.push(3);
                self.u64(step);
                self.u32(loser);
                self.u32(attempt);
                self.u64(arrives);
            }
            Record::VerdictDropped {
                step,
                loser,
                attempt,
            } => {
                self.bytes.push(4);
                self.u64(step);
                self.u32(loser);
                self.u32(attempt);
            }
            Record::Abort { step, txn, cause } => {
                self.bytes.push(5);
                self.u64(step);
                self.u32(txn);
                self.bytes.push(cause.tag());
            }
            Record::Commit { step, txn } => {
                self.bytes.push(6);
                self.u64(step);
                self.u32(txn);
            }
            Record::AckSent {
                step,
                from,
                to,
                arrives,
            } => {
                self.bytes.push(7);
                self.u64(step);
                self.u32(from);
                self.u32(to);
                self.u64(arrives);
            }
            Record::Crash { step, node } => {
                self.bytes.push(8);
                self.u64(step);
                self.u32(node);
            }
            Record::Recover { step, node } => {
                self.bytes.push(9);
                self.u64(step);
                self.u32(node);
            }
            Record::Outcome {
                makespan,
                commits,
                aborts,
                zombie_commits,
                sum_response,
                all_committed,
            } => {
                self.bytes.push(10);
                self.u64(makespan);
                self.u64(commits);
                self.u64(aborts);
                self.u64(zombie_commits);
                self.u64(sum_response);
                self.bytes.push(all_committed as u8);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_pops_in_time_then_class_order() {
        let mut q = EventQueue::new(0);
        q.push(5, CLASS_TICK, EventKind::Tick);
        q.push(3, CLASS_TICK, EventKind::Tick);
        q.push(5, CLASS_DELIVERY, EventKind::Verdict { txn: 1, attempt: 0 });
        q.push(4, CLASS_DELIVERY, EventKind::Ack { txn: 2 });
        let order: Vec<(u64, u8)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.time, e.class))
            .collect();
        assert_eq!(
            order,
            vec![
                (3, CLASS_TICK),
                (4, CLASS_DELIVERY),
                (5, CLASS_DELIVERY),
                (5, CLASS_TICK)
            ]
        );
    }

    #[test]
    fn same_seed_same_tie_order_different_seed_may_differ() {
        let run = |seed: u64| -> Vec<u32> {
            let mut q = EventQueue::new(seed);
            for t in 0..8u32 {
                q.push(1, CLASS_DELIVERY, EventKind::Ack { txn: t });
            }
            std::iter::from_fn(|| q.pop())
                .map(|e| match e.kind {
                    EventKind::Ack { txn } => txn,
                    _ => unreachable!(),
                })
                .collect()
        };
        assert_eq!(run(7), run(7), "seeded tie-break must be reproducible");
        assert_ne!(
            run(7),
            run(8),
            "distinct seeds permute simultaneous deliveries"
        );
    }

    #[test]
    fn splitmix_is_injective_on_a_small_range() {
        let mut seen: Vec<u64> = (0..1000u64).map(splitmix64).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 1000);
    }

    #[test]
    fn disabled_log_stays_empty() {
        let mut log = EventLog::disabled();
        log.push(Record::Issue { step: 0, txn: 1 });
        assert_eq!(log.records(), 0);
        assert!(log.as_bytes().is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn log_encoding_is_deterministic_and_hex_roundtrips() {
        let mut a = EventLog::recording();
        let mut b = EventLog::recording();
        for log in [&mut a, &mut b] {
            log.push(Record::Issue { step: 3, txn: 9 });
            log.push(Record::Duel {
                step: 3,
                winner: 9,
                loser: 4,
            });
            log.push(Record::Abort {
                step: 3,
                txn: 4,
                cause: AbortCause::Duel,
            });
            log.push(Record::Outcome {
                makespan: 10,
                commits: 2,
                aborts: 1,
                zombie_commits: 0,
                sum_response: 12,
                all_committed: true,
            });
        }
        assert_eq!(a.as_bytes(), b.as_bytes());
        assert_eq!(a.records(), 4);
        assert_eq!(a.hex().len(), a.as_bytes().len() * 2);
        assert!(a.hex().chars().all(|c| c.is_ascii_hexdigit()));
    }
}
